//! Versioned, checksummed binary checkpoints of per-rank trace-capture
//! state, and run entry points that resume tracing from them.
//!
//! A checkpoint freezes everything a [`Tracer`] knows: the compressed node
//! sequence (with exact timing histograms — the text rendering is lossy,
//! checkpoints are not), the communicator table, the last-exit clock, and
//! the event count. The file format is std-only binary:
//!
//! ```text
//! magic "STCP" · version u32 · payload · FNV-1a checksum u64
//! ```
//!
//! every integer little-endian, the checksum covering magic, version, and
//! payload. A truncated, bit-flipped, or wrong-version file decodes to
//! [`SnapshotError::Corrupt`], never to a silently wrong tracer.
//!
//! # Deterministic re-entry
//!
//! Restoring does **not** fast-forward the simulator — virtual time costs
//! nothing to re-run. Instead, a resumed run re-executes the application
//! from virtual t=0 under the bit-deterministic engine; the restored tracer
//! skips its first `events_seen` deliveries (they are exactly the events
//! the checkpoint already captured, reproduced with identical payloads and
//! virtual timestamps) and then continues appending where the checkpoint
//! left off. This is message-logging-style recovery with the simulator as
//! the log: the *expensive* state — compressed trace structure and
//! histograms — is never recomputed, and the result is provably
//! byte-identical to an uninterrupted run (`tests/checkpoint.rs` checks
//! this differentially across random programs and seeded fault plans).

use crate::collect::{PartialTracedRun, Tracer};
use crate::compress::{FoldStrategy, TailCompressor};
use crate::merge::merge_tracers;
use crate::params::{CommParam, RankFn, RankParam, SrcParam, ValParam};
use crate::rankset::{RankSet, Run};
use crate::timestats::TimeStats;
use crate::trace::{CommTable, OpTemplate, Prsd, Rsd, TraceNode};
use mpisim::ctx::Ctx;
use mpisim::hooks::{Event, Hook};
use mpisim::time::{SimDuration, SimTime};
use mpisim::types::{CollKind, Fnv1a, TagSel};
use mpisim::world::World;
use std::fmt;
use std::path::{Path, PathBuf};

/// File magic of a tracer checkpoint ("ScalaTrace CheckPoint").
pub const MAGIC: [u8; 4] = *b"STCP";

/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// Maximum loop-nesting depth the decoder accepts (a corruption guard, far
/// above anything tail folding produces).
const MAX_DEPTH: usize = 256;

/// Why a checkpoint could not be read, written, or decoded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The checkpoint file could not be read or written.
    Io(std::io::Error),
    /// The bytes are not a valid checkpoint: truncated, checksum mismatch,
    /// wrong magic/version, or structurally malformed.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

pub(crate) fn corrupt(why: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(why.into())
}

// ------------------------------------------------------------------ codec

#[derive(Default)]
pub(crate) struct Enc(pub(crate) Vec<u8>);

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
}

pub(crate) struct Dec<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt("truncated payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("bad bool byte {b}"))),
        }
    }
    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    pub(crate) fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| corrupt("length overflows usize"))
    }
    /// A length that is about to drive a loop of ≥1-byte items; bounding it
    /// by the remaining bytes turns "absurd length from corruption" into an
    /// immediate error instead of a giant allocation.
    pub(crate) fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(corrupt("length exceeds payload"));
        }
        Ok(n)
    }
}

fn enc_stats(e: &mut Enc, s: &TimeStats) {
    let (count, sum_ns, min_ns, max_ns, bins) = s.raw();
    e.u64(count);
    e.u128(sum_ns);
    e.u64(min_ns);
    e.u64(max_ns);
    for &b in bins {
        e.u64(b);
    }
}

fn dec_stats(d: &mut Dec) -> Result<TimeStats, SnapshotError> {
    let count = d.u64()?;
    let sum_ns = d.u128()?;
    let min_ns = d.u64()?;
    let max_ns = d.u64()?;
    let mut bins = [0u64; 64];
    for b in &mut bins {
        *b = d.u64()?;
    }
    Ok(TimeStats::from_raw(count, sum_ns, min_ns, max_ns, bins))
}

fn enc_ranks(e: &mut Enc, ranks: &RankSet) {
    e.usize(ranks.run_count());
    for run in ranks.runs() {
        e.usize(run.start);
        e.usize(run.stride);
        e.usize(run.count);
    }
}

fn dec_ranks(d: &mut Dec) -> Result<RankSet, SnapshotError> {
    let n = d.len()?;
    let mut runs = Vec::with_capacity(n);
    for _ in 0..n {
        runs.push(Run {
            start: d.usize()?,
            stride: d.usize()?,
            count: d.usize()?,
        });
    }
    Ok(RankSet::from_runs(runs))
}

fn enc_rank_param(e: &mut Enc, p: &RankParam) {
    // canonicalize so dense and symbolic representations of the same
    // pointwise map serialize byte-identically
    match &p.canonical() {
        RankParam::Const(r) => {
            e.u8(1);
            e.usize(*r);
        }
        RankParam::Offset(d) => {
            e.u8(2);
            e.i64(*d);
        }
        RankParam::OffsetMod { offset, modulus } => {
            e.u8(3);
            e.i64(*offset);
            e.usize(*modulus);
        }
        RankParam::Xor(mask) => {
            e.u8(4);
            e.usize(*mask);
        }
        RankParam::PerRank(m) => {
            e.u8(5);
            e.usize(m.len());
            for (r, v) in m {
                e.usize(*r);
                e.usize(*v);
            }
        }
        RankParam::Piecewise(ps) => {
            e.u8(6);
            e.usize(ps.len());
            for (s, f) in ps {
                enc_ranks(e, s);
                match f {
                    RankFn::Const(c) => {
                        e.u8(1);
                        e.usize(*c);
                    }
                    RankFn::Offset(d) => {
                        e.u8(2);
                        e.i64(*d);
                    }
                    RankFn::OffsetMod { offset, modulus } => {
                        e.u8(3);
                        e.i64(*offset);
                        e.usize(*modulus);
                    }
                    RankFn::Xor(mask) => {
                        e.u8(4);
                        e.usize(*mask);
                    }
                }
            }
        }
    }
}

fn dec_rank_fn(d: &mut Dec) -> Result<RankFn, SnapshotError> {
    Ok(match d.u8()? {
        1 => RankFn::Const(d.usize()?),
        2 => RankFn::Offset(d.i64()?),
        3 => RankFn::OffsetMod {
            offset: d.i64()?,
            modulus: d.usize()?,
        },
        4 => RankFn::Xor(d.usize()?),
        t => return Err(corrupt(format!("bad RankFn tag {t}"))),
    })
}

/// Decode `(RankSet, T)` pieces, enforcing non-empty disjoint domains so a
/// corrupt payload cannot smuggle in an ambiguous parameter.
fn dec_pieces<T>(
    d: &mut Dec,
    mut item: impl FnMut(&mut Dec) -> Result<T, SnapshotError>,
) -> Result<Vec<(RankSet, T)>, SnapshotError> {
    let n = d.len()?;
    if n == 0 {
        return Err(corrupt("piecewise param with no pieces"));
    }
    let mut pieces = Vec::with_capacity(n);
    for _ in 0..n {
        let s = dec_ranks(d)?;
        if s.is_empty() {
            return Err(corrupt("empty piecewise domain"));
        }
        pieces.push((s, item(d)?));
    }
    // disjointness check in one pass: the union of disjoint domains has
    // exactly the summed cardinality
    let total: usize = pieces.iter().map(|(s, _)| s.len()).sum();
    if RankSet::union_many(pieces.iter().map(|(s, _)| s)).len() != total {
        return Err(corrupt("overlapping piecewise domains"));
    }
    Ok(pieces)
}

fn dec_rank_param(d: &mut Dec) -> Result<RankParam, SnapshotError> {
    Ok(match d.u8()? {
        1 => RankParam::Const(d.usize()?),
        2 => RankParam::Offset(d.i64()?),
        3 => RankParam::OffsetMod {
            offset: d.i64()?,
            modulus: d.usize()?,
        },
        4 => RankParam::Xor(d.usize()?),
        5 => {
            let n = d.len()?;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let r = d.usize()?;
                m.insert(r, d.usize()?);
            }
            RankParam::PerRank(m)
        }
        6 => RankParam::Piecewise(dec_pieces(d, dec_rank_fn)?),
        t => return Err(corrupt(format!("bad RankParam tag {t}"))),
    })
}

fn enc_val_param(e: &mut Enc, p: &ValParam) {
    match &p.canonical() {
        ValParam::Const(v) => {
            e.u8(1);
            e.u64(*v);
        }
        ValParam::PerRank(m) => {
            e.u8(2);
            e.usize(m.len());
            for (r, v) in m {
                e.usize(*r);
                e.u64(*v);
            }
        }
        ValParam::Linear { base, slope } => {
            e.u8(3);
            e.i64(*base);
            e.i64(*slope);
        }
        ValParam::Piecewise(ps) => {
            e.u8(4);
            e.usize(ps.len());
            for (s, v) in ps {
                enc_ranks(e, s);
                e.u64(*v);
            }
        }
    }
}

fn dec_val_param(d: &mut Dec) -> Result<ValParam, SnapshotError> {
    Ok(match d.u8()? {
        1 => ValParam::Const(d.u64()?),
        2 => {
            let n = d.len()?;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let r = d.usize()?;
                m.insert(r, d.u64()?);
            }
            ValParam::PerRank(m)
        }
        3 => ValParam::Linear {
            base: d.i64()?,
            slope: d.i64()?,
        },
        4 => ValParam::Piecewise(dec_pieces(d, |d| d.u64())?),
        t => return Err(corrupt(format!("bad ValParam tag {t}"))),
    })
}

fn enc_comm_param(e: &mut Enc, p: &CommParam) {
    match &p.canonical() {
        CommParam::Const(c) => {
            e.u8(1);
            e.u32(*c);
        }
        CommParam::PerRank(m) => {
            e.u8(2);
            e.usize(m.len());
            for (r, v) in m {
                e.usize(*r);
                e.u32(*v);
            }
        }
        CommParam::Piecewise(ps) => {
            e.u8(3);
            e.usize(ps.len());
            for (s, c) in ps {
                enc_ranks(e, s);
                e.u32(*c);
            }
        }
    }
}

fn dec_comm_param(d: &mut Dec) -> Result<CommParam, SnapshotError> {
    Ok(match d.u8()? {
        1 => CommParam::Const(d.u32()?),
        2 => {
            let n = d.len()?;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let r = d.usize()?;
                m.insert(r, d.u32()?);
            }
            CommParam::PerRank(m)
        }
        3 => CommParam::Piecewise(dec_pieces(d, |d| d.u32())?),
        t => return Err(corrupt(format!("bad CommParam tag {t}"))),
    })
}

fn enc_op(e: &mut Enc, op: &OpTemplate) {
    match op {
        OpTemplate::Send {
            to,
            tag,
            bytes,
            comm,
            blocking,
        } => {
            e.u8(0);
            enc_rank_param(e, to);
            e.i64(*tag as i64);
            enc_val_param(e, bytes);
            enc_comm_param(e, comm);
            e.bool(*blocking);
        }
        OpTemplate::Recv {
            from,
            tag,
            bytes,
            comm,
            blocking,
        } => {
            e.u8(1);
            match from {
                SrcParam::Any => e.u8(0),
                SrcParam::Rank(r) => {
                    e.u8(1);
                    enc_rank_param(e, r);
                }
            }
            match tag {
                TagSel::Any => e.u8(0),
                TagSel::Is(t) => {
                    e.u8(1);
                    e.i64(*t as i64);
                }
            }
            enc_val_param(e, bytes);
            enc_comm_param(e, comm);
            e.bool(*blocking);
        }
        OpTemplate::Wait { count } => {
            e.u8(2);
            enc_val_param(e, count);
        }
        OpTemplate::Coll {
            kind,
            root,
            bytes,
            comm,
        } => {
            e.u8(3);
            let idx = CollKind::ALL.iter().position(|k| k == kind).unwrap();
            e.u8(idx as u8);
            match root {
                None => e.u8(0),
                Some(r) => {
                    e.u8(1);
                    enc_rank_param(e, r);
                }
            }
            enc_val_param(e, bytes);
            enc_comm_param(e, comm);
        }
        OpTemplate::CommSplit { parent, result } => {
            e.u8(4);
            e.u32(*parent);
            e.u32(*result);
        }
    }
}

fn dec_tag(v: i64) -> Result<i32, SnapshotError> {
    i32::try_from(v).map_err(|_| corrupt("tag out of range"))
}

fn dec_op(d: &mut Dec) -> Result<OpTemplate, SnapshotError> {
    Ok(match d.u8()? {
        0 => OpTemplate::Send {
            to: dec_rank_param(d)?,
            tag: dec_tag(d.i64()?)?,
            bytes: dec_val_param(d)?,
            comm: dec_comm_param(d)?,
            blocking: d.bool()?,
        },
        1 => {
            let from = match d.u8()? {
                0 => SrcParam::Any,
                1 => SrcParam::Rank(dec_rank_param(d)?),
                t => return Err(corrupt(format!("bad SrcParam tag {t}"))),
            };
            let tag = match d.u8()? {
                0 => TagSel::Any,
                1 => TagSel::Is(dec_tag(d.i64()?)?),
                t => return Err(corrupt(format!("bad TagSel tag {t}"))),
            };
            OpTemplate::Recv {
                from,
                tag,
                bytes: dec_val_param(d)?,
                comm: dec_comm_param(d)?,
                blocking: d.bool()?,
            }
        }
        2 => OpTemplate::Wait {
            count: dec_val_param(d)?,
        },
        3 => {
            let idx = d.u8()? as usize;
            let kind = *CollKind::ALL
                .get(idx)
                .ok_or_else(|| corrupt(format!("bad CollKind index {idx}")))?;
            let root = match d.u8()? {
                0 => None,
                1 => Some(dec_rank_param(d)?),
                t => return Err(corrupt(format!("bad root tag {t}"))),
            };
            OpTemplate::Coll {
                kind,
                root,
                bytes: dec_val_param(d)?,
                comm: dec_comm_param(d)?,
            }
        }
        4 => OpTemplate::CommSplit {
            parent: d.u32()?,
            result: d.u32()?,
        },
        t => return Err(corrupt(format!("bad OpTemplate tag {t}"))),
    })
}

pub(crate) fn enc_node(e: &mut Enc, node: &TraceNode) {
    match node {
        TraceNode::Event(r) => {
            e.u8(0);
            enc_ranks(e, &r.ranks);
            e.u64(r.sig);
            enc_op(e, &r.op);
            enc_stats(e, &r.compute);
        }
        TraceNode::Loop(p) => {
            e.u8(1);
            e.u64(p.count);
            e.usize(p.body.len());
            for n in &p.body {
                enc_node(e, n);
            }
        }
    }
}

pub(crate) fn dec_node(d: &mut Dec, depth: usize) -> Result<TraceNode, SnapshotError> {
    if depth > MAX_DEPTH {
        return Err(corrupt("loop nesting too deep"));
    }
    Ok(match d.u8()? {
        0 => TraceNode::Event(Rsd {
            ranks: dec_ranks(d)?,
            sig: d.u64()?,
            op: dec_op(d)?,
            compute: dec_stats(d)?,
        }),
        1 => {
            let count = d.u64()?;
            let n = d.len()?;
            let mut body = Vec::with_capacity(n);
            for _ in 0..n {
                body.push(dec_node(d, depth + 1)?);
            }
            TraceNode::Loop(Prsd { count, body })
        }
        t => return Err(corrupt(format!("bad TraceNode tag {t}"))),
    })
}

// ----------------------------------------------------------- tracer frame

/// Serialise a tracer's full capture state into a framed, checksummed
/// checkpoint (the exact inverse of [`tracer_from_checkpoint`]).
pub fn checkpoint_bytes(t: &Tracer) -> Vec<u8> {
    let mut e = Enc::default();
    e.0.extend_from_slice(&MAGIC);
    e.u32(VERSION);
    e.usize(t.rank());
    e.usize(t.nranks());
    e.u64(t.events_seen);
    e.u64(t.last_exit().as_nanos());
    let seq = t.compressor();
    e.usize(seq.max_window());
    e.u8(match seq.strategy() {
        FoldStrategy::Fingerprint => 0,
        FoldStrategy::Structural => 1,
    });
    let comms = t.comms_ref();
    let ids: Vec<u32> = comms.ids().collect();
    e.usize(ids.len());
    for id in ids {
        e.u32(id);
        let members = comms.members(id);
        e.usize(members.len());
        for &m in members {
            e.usize(m);
        }
    }
    e.usize(t.nodes().len());
    for n in t.nodes() {
        enc_node(&mut e, n);
    }
    let mut h = Fnv1a::new();
    h.write(&e.0);
    let sum = h.finish();
    e.u64(sum);
    e.0
}

/// Decode a checkpoint produced by [`checkpoint_bytes`], verifying frame,
/// version, and checksum. The returned tracer is in resume mode: it will
/// skip its first `events_seen` observed events (see the module docs).
pub fn tracer_from_checkpoint(bytes: &[u8]) -> Result<Tracer, SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(corrupt("file shorter than frame"));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let mut h = Fnv1a::new();
    h.write(body);
    if h.finish() != stored {
        return Err(corrupt("checksum mismatch"));
    }
    if body[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut d = Dec {
        buf: body,
        pos: MAGIC.len(),
    };
    let version = d.u32()?;
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let rank = d.usize()?;
    let nranks = d.usize()?;
    if nranks == 0 || rank >= nranks {
        return Err(corrupt(format!("rank {rank} out of range for {nranks}")));
    }
    let events_seen = d.u64()?;
    let last_exit = SimTime::ZERO + SimDuration::from_nanos(d.u64()?);
    let max_window = d.usize()?;
    if max_window == 0 {
        return Err(corrupt("zero fold window"));
    }
    let strategy = match d.u8()? {
        0 => FoldStrategy::Fingerprint,
        1 => FoldStrategy::Structural,
        t => return Err(corrupt(format!("bad strategy tag {t}"))),
    };
    let mut comms = CommTable::world(nranks);
    let ncomms = d.len()?;
    for _ in 0..ncomms {
        let id = d.u32()?;
        let n = d.len()?;
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            members.push(d.usize()?);
        }
        comms.insert(id, members);
    }
    let nnodes = d.len()?;
    let mut nodes = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        nodes.push(dec_node(&mut d, 0)?);
    }
    if d.pos != d.buf.len() {
        return Err(corrupt("trailing bytes after payload"));
    }
    let seq = TailCompressor::from_nodes(max_window, strategy, nodes);
    Ok(Tracer::restore(
        rank,
        nranks,
        seq,
        comms,
        last_exit,
        events_seen,
    ))
}

// ------------------------------------------------------------ checkpointing

/// Where and how often a run checkpoints its tracers.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    dir: PathBuf,
    every: u64,
}

impl CheckpointConfig {
    /// Checkpoint into `dir`, writing each rank's snapshot after every
    /// `every` recorded events (`every` is clamped to at least 1).
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            every: every.max(1),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoint cadence in recorded events per rank.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Path of `rank`'s checkpoint file.
    pub fn rank_path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("rank{rank}.ckpt"))
    }
}

/// Atomically write `tracer`'s checkpoint under `cfg` (tmp file + rename,
/// so a crash mid-write leaves the previous checkpoint intact, never a
/// truncated one).
pub fn write_checkpoint(cfg: &CheckpointConfig, tracer: &Tracer) -> Result<(), SnapshotError> {
    let path = cfg.rank_path(tracer.rank());
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, checkpoint_bytes(tracer))?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Load `rank`'s checkpoint under `cfg`. `Ok(None)` when no checkpoint
/// exists (a fresh rank); `Err` when one exists but cannot be decoded.
pub fn read_checkpoint(
    cfg: &CheckpointConfig,
    rank: usize,
) -> Result<Option<Tracer>, SnapshotError> {
    let path = cfg.rank_path(rank);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapshotError::Io(e)),
    };
    tracer_from_checkpoint(&bytes).map(Some)
}

/// A [`Tracer`] that checkpoints itself every [`CheckpointConfig::every`]
/// recorded events. Checkpoint writes are best-effort: a full disk must not
/// kill the traced run, it only widens the window a later resume replays.
pub struct CheckpointingTracer {
    inner: Tracer,
    cfg: CheckpointConfig,
}

impl CheckpointingTracer {
    /// Wrap `inner`, checkpointing under `cfg`.
    pub fn new(inner: Tracer, cfg: CheckpointConfig) -> CheckpointingTracer {
        CheckpointingTracer { inner, cfg }
    }

    /// Unwrap the tracer (for merging after the run).
    pub fn into_inner(self) -> Tracer {
        self.inner
    }
}

impl Hook for CheckpointingTracer {
    fn on_event(&mut self, event: &Event) {
        let before = self.inner.events_seen;
        self.inner.on_event(event);
        // `events_seen` does not advance while the tracer is skipping
        // already-checkpointed events on a resume, so no re-writes happen
        // during replay.
        if self.inner.events_seen != before && self.inner.events_seen.is_multiple_of(self.cfg.every)
        {
            let _ = write_checkpoint(&self.cfg, &self.inner);
        }
    }
}

fn run_and_salvage<F>(
    world: World,
    n: usize,
    cfg: &CheckpointConfig,
    mut restored: Vec<Option<Tracer>>,
    body: F,
) -> PartialTracedRun
where
    F: Fn(&mut Ctx) + Send + Sync + 'static,
{
    let cfg_hook = cfg.clone();
    let (result, hooks) = world.run_hooked_partial(
        move |r| {
            let t = restored
                .get_mut(r)
                .and_then(Option::take)
                .unwrap_or_else(|| Tracer::new(r, n));
            CheckpointingTracer::new(t, cfg_hook.clone())
        },
        body,
    );
    // Final salvage: whatever each rank saw last — including the tail
    // between the last cadence checkpoint and a crash — becomes the new
    // checkpoint, so a subsequent resume replays nothing twice.
    let mut tracers = Vec::with_capacity(hooks.len());
    for h in hooks {
        let _ = write_checkpoint(cfg, &h.inner);
        tracers.push(h.into_inner());
    }
    let trace = merge_tracers(tracers);
    match result {
        Ok(report) => PartialTracedRun {
            trace,
            report: Some(report),
            error: None,
        },
        Err(err) => PartialTracedRun {
            trace,
            report: None,
            error: Some(err),
        },
    }
}

/// As [`crate::trace_world_partial`], but every rank checkpoints its capture
/// state under `cfg` (every N events, plus a final salvage write when the
/// run ends — normally or by a fault). A failed run therefore leaves on disk
/// exactly the state [`trace_world_resumed`] needs.
pub fn trace_world_checkpointed<F>(
    world: World,
    n: usize,
    cfg: &CheckpointConfig,
    body: F,
) -> Result<PartialTracedRun, SnapshotError>
where
    F: Fn(&mut Ctx) + Send + Sync + 'static,
{
    std::fs::create_dir_all(cfg.dir())?;
    Ok(run_and_salvage(world, n, cfg, Vec::new(), body))
}

/// Resume a (crashed or interrupted) traced run from the checkpoints under
/// `cfg`: each rank with a checkpoint is restored and replays through the
/// already-captured prefix without re-recording it; ranks without one start
/// fresh. The world must re-run the same application deterministically —
/// same ranks, same body, same network/match policy, and a fault plan
/// without the crash being recovered from (see
/// [`mpisim::faults::FaultPlan::without_crashes`]).
///
/// Corrupt checkpoints are an error (the caller decides whether to delete
/// and restart); missing ones are not.
pub fn trace_world_resumed<F>(
    world: World,
    n: usize,
    cfg: &CheckpointConfig,
    body: F,
) -> Result<PartialTracedRun, SnapshotError>
where
    F: Fn(&mut Ctx) + Send + Sync + 'static,
{
    std::fs::create_dir_all(cfg.dir())?;
    let mut restored = Vec::with_capacity(n);
    for r in 0..n {
        let t = read_checkpoint(cfg, r)?;
        if let Some(t) = &t {
            if t.rank() != r || t.nranks() != n {
                return Err(corrupt(format!(
                    "checkpoint for rank {r} of {n} actually holds rank {} of {}",
                    t.rank(),
                    t.nranks()
                )));
            }
        }
        restored.push(t);
    }
    Ok(run_and_salvage(world, n, cfg, restored, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer() -> Tracer {
        // Drive nodes through the real compressor so loops, histograms, and
        // fingerprint state all exist in the checkpointed sequence.
        let mut c = TailCompressor::new(crate::compress::DEFAULT_MAX_WINDOW);
        for i in 0..40u64 {
            c.push(TraceNode::Event(Rsd {
                ranks: RankSet::single(1),
                sig: 10 + (i % 3),
                op: OpTemplate::Send {
                    to: RankParam::Offset(1),
                    tag: 7,
                    bytes: ValParam::Const(64),
                    comm: CommParam::Const(0),
                    blocking: i % 2 == 0,
                },
                compute: TimeStats::of(SimDuration::from_usecs(i)),
            }));
        }
        let mut comms = CommTable::world(4);
        comms.insert(1, vec![0, 2]);
        let last_exit = SimTime::ZERO + SimDuration::from_usecs(123);
        Tracer::restore(1, 4, c, comms, last_exit, 40)
    }

    #[test]
    fn round_trip_is_exact() {
        let t = sample_tracer();
        let bytes = checkpoint_bytes(&t);
        let back = tracer_from_checkpoint(&bytes).expect("decodes");
        assert_eq!(back.rank(), t.rank());
        assert_eq!(back.nranks(), t.nranks());
        assert_eq!(back.events_seen, t.events_seen);
        assert_eq!(back.last_exit(), t.last_exit());
        assert_eq!(back.nodes(), t.nodes());
        // re-encoding the decoded tracer is byte-identical
        assert_eq!(checkpoint_bytes(&back), bytes);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = checkpoint_bytes(&sample_tracer());
        for cut in 0..bytes.len() {
            assert!(
                tracer_from_checkpoint(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn every_single_bitflip_is_detected() {
        let bytes = checkpoint_bytes(&sample_tracer());
        // Flip one bit per byte position; the checksum (or a structural
        // check) must catch every one of them.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                tracer_from_checkpoint(&bad).is_err(),
                "bit flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let t = sample_tracer();
        let mut bytes = checkpoint_bytes(&t);
        bytes[4] = 99; // version lives right after the 4-byte magic
                       // fix up the checksum so only the version is wrong
        let body_len = bytes.len() - 8;
        let mut h = Fnv1a::new();
        h.write(&bytes[..body_len]);
        let sum = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        let err = match tracer_from_checkpoint(&bytes) {
            Err(e) => e,
            Ok(_) => panic!("wrong version must not decode"),
        };
        assert!(err.to_string().contains("version"), "{err}");
    }
}
