//! Partial tracing under injected rank crashes: the acceptance-criterion
//! test that a crash plan produces a partial trace plus structured
//! `SimError::RankFailed` diagnostics instead of a hang.

use mpisim::error::SimError;
use mpisim::faults::FaultPlan;
use mpisim::network;
use mpisim::time::SimDuration;
use mpisim::types::{Src, TagSel};
use mpisim::world::World;
use scalatrace::{trace_app, trace_world_partial};

fn ring(iters: usize) -> impl Fn(&mut mpisim::Ctx) + Send + Sync + 'static {
    move |ctx| {
        let w = ctx.world();
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        for _ in 0..iters {
            let r = ctx.irecv(Src::Rank(left), TagSel::Is(0), 256, &w);
            let s = ctx.isend(right, 0, 256, &w);
            ctx.compute(SimDuration::from_usecs(5));
            ctx.waitall(&[r, s]);
        }
    }
}

#[test]
fn crash_plan_yields_partial_trace_with_rank_failed() {
    const N: usize = 4;
    let full = trace_app(N, network::ideal(), ring(10)).unwrap();
    let full_events = full.trace.concrete_event_count();

    let partial = trace_world_partial(
        World::new(N).faults(FaultPlan::seeded(1).crash_rank(1, 6)),
        N,
        ring(10),
    );
    assert!(!partial.completed());
    assert!(partial.report.is_none());
    match partial.error {
        Some(SimError::RankFailed {
            rank, after_ops, ..
        }) => {
            assert_eq!(rank, 1);
            assert_eq!(after_ops, 6);
        }
        ref other => panic!("expected RankFailed, got {other:?}"),
    }
    // The trace is partial, not empty: the ranks got some iterations in
    // before the crash starved the ring.
    let got = partial.trace.concrete_event_count();
    assert!(got > 0, "crash must not wipe the trace");
    assert!(
        got < full_events,
        "partial trace ({got} events) should be smaller than the full run ({full_events})"
    );
}

#[test]
fn completed_partial_run_equals_the_normal_path() {
    const N: usize = 3;
    let a = trace_app(N, network::ideal(), ring(4)).unwrap();
    let b = trace_world_partial(World::new(N), N, ring(4));
    assert!(b.completed());
    assert!(b.error.is_none());
    let report = b.report.expect("completed run has a report");
    assert_eq!(report.ranks, N);
    assert_eq!(
        a.trace.concrete_event_count(),
        b.trace.concrete_event_count()
    );
}
