//! Property-based tests for the trace layer's core invariants:
//! compression losslessness, rank-set algebra, parameter-table
//! reconstruction, serialisation round trips, and merge projection order.

use mpisim::time::SimDuration;
use proptest::prelude::*;
use scalatrace::compress::{append_compressed, compress_tail};
use scalatrace::cursor::Cursor;
use scalatrace::merge::{
    merge_pair, merge_sequences, merge_sequences_degraded, merge_sequences_stats,
    merge_sequences_strategy, MergeStrategy,
};
use scalatrace::params::{compress_rank_table, CommParam, RankParam, ValParam};
use scalatrace::rankset::RankSet;
use scalatrace::text::to_text;
use scalatrace::timestats::TimeStats;
use scalatrace::trace::{CommTable, OpTemplate, Rsd, Trace, TraceNode};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// RankSet
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn rankset_roundtrip(mut ranks in proptest::collection::vec(0usize..512, 0..64)) {
        let set = RankSet::from_ranks(ranks.iter().copied());
        ranks.sort_unstable();
        ranks.dedup();
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), ranks.clone());
        prop_assert_eq!(set.len(), ranks.len());
        for &r in &ranks {
            prop_assert!(set.contains(r));
        }
    }

    #[test]
    fn rankset_union_is_set_union(
        a in proptest::collection::btree_set(0usize..256, 0..40),
        b in proptest::collection::btree_set(0usize..256, 0..40),
    ) {
        let sa = RankSet::from_ranks(a.iter().copied());
        let sb = RankSet::from_ranks(b.iter().copied());
        let expected: BTreeSet<usize> = a.union(&b).copied().collect();
        let got: BTreeSet<usize> = sa.union(&sb).iter().collect();
        prop_assert_eq!(got, expected.clone());
        prop_assert_eq!(sa.intersects(&sb), a.intersection(&b).next().is_some());
    }

    #[test]
    fn rankset_compression_never_loses_strides(stride in 1usize..16, count in 1usize..64, start in 0usize..32) {
        let ranks: Vec<usize> = (0..count).map(|i| start + i * stride).collect();
        let set = RankSet::from_ranks(ranks.clone());
        prop_assert_eq!(set.run_count(), 1, "an arithmetic progression is one run");
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), ranks);
    }

    /// `intersect` against the `BTreeSet` model, including structural
    /// canonicality: the run-wise result must be byte-equal to building the
    /// same membership from scratch.
    #[test]
    fn rankset_intersect_is_set_intersection(
        a in proptest::collection::btree_set(0usize..256, 0..40),
        b in proptest::collection::btree_set(0usize..256, 0..40),
    ) {
        let sa = RankSet::from_ranks(a.iter().copied());
        let sb = RankSet::from_ranks(b.iter().copied());
        let expected: BTreeSet<usize> = a.intersection(&b).copied().collect();
        let got = sa.intersect(&sb);
        prop_assert_eq!(got.iter().collect::<BTreeSet<_>>(), expected.clone());
        prop_assert_eq!(got, RankSet::from_ranks(expected));
    }

    /// As above but on strided runs, where the run-wise CRT path (rather
    /// than the elementwise fallback) does the work.
    #[test]
    fn rankset_intersect_on_strided_runs(
        s1 in 0usize..8, t1 in 1usize..12, c1 in 1usize..40,
        s2 in 0usize..8, t2 in 1usize..12, c2 in 1usize..40,
    ) {
        let a: BTreeSet<usize> = (0..c1).map(|i| s1 + i * t1).collect();
        let b: BTreeSet<usize> = (0..c2).map(|i| s2 + i * t2).collect();
        let sa = RankSet::from_ranks(a.iter().copied());
        let sb = RankSet::from_ranks(b.iter().copied());
        let expected: BTreeSet<usize> = a.intersection(&b).copied().collect();
        let got = sa.intersect(&sb);
        prop_assert_eq!(got.iter().collect::<BTreeSet<_>>(), expected.clone());
        prop_assert_eq!(got, RankSet::from_ranks(expected));
    }

    /// `minus` against the `BTreeSet` model, with structural canonicality.
    #[test]
    fn rankset_minus_is_set_difference(
        a in proptest::collection::btree_set(0usize..256, 0..40),
        b in proptest::collection::btree_set(0usize..256, 0..40),
    ) {
        let sa = RankSet::from_ranks(a.iter().copied());
        let sb = RankSet::from_ranks(b.iter().copied());
        let expected: BTreeSet<usize> = a.difference(&b).copied().collect();
        let got = sa.minus(&sb);
        prop_assert_eq!(got.iter().collect::<BTreeSet<_>>(), expected.clone());
        prop_assert_eq!(got, RankSet::from_ranks(expected));
        // identities over the algebra
        prop_assert_eq!(sa.minus(&sa), RankSet::from_ranks([]));
        prop_assert_eq!(got.union(&sa.intersect(&sb)), sa);
    }

    /// `union_many` (the collapse-time rank union) against the model.
    #[test]
    fn rankset_union_many_is_set_union(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0usize..128, 0..24),
            0..8
        ),
    ) {
        let rs: Vec<RankSet> = sets
            .iter()
            .map(|s| RankSet::from_ranks(s.iter().copied()))
            .collect();
        let expected: BTreeSet<usize> = sets.iter().flatten().copied().collect();
        let got = RankSet::union_many(rs.iter());
        prop_assert_eq!(got.iter().collect::<BTreeSet<_>>(), expected.clone());
        prop_assert_eq!(got, RankSet::from_ranks(expected));
    }
}

// ---------------------------------------------------------------------------
// Parameter table compression
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum RankFn {
    Const(usize),
    Offset(i64),
    OffsetMod(i64),
    Xor(usize),
}

impl RankFn {
    fn eval(&self, r: usize, n: usize) -> usize {
        match *self {
            RankFn::Const(c) => c,
            RankFn::Offset(d) => (r as i64 + d).max(0) as usize,
            RankFn::OffsetMod(d) => ((r as i64 + d).rem_euclid(n as i64)) as usize,
            RankFn::Xor(m) => r ^ m,
        }
    }
}

fn arb_rank_fn() -> impl Strategy<Value = RankFn> {
    prop_oneof![
        (0usize..64).prop_map(RankFn::Const),
        (-8i64..8).prop_map(RankFn::Offset),
        (1i64..8).prop_map(RankFn::OffsetMod),
        (1usize..16).prop_map(RankFn::Xor),
    ]
}

proptest! {
    /// Whatever compressed form `compress_rank_table` chooses, evaluating it
    /// must reproduce the original table exactly.
    #[test]
    fn rank_param_compression_is_exact(
        f in arb_rank_fn(),
        n in 2usize..64,
    ) {
        let table: BTreeMap<usize, usize> = (0..n).map(|r| (r, f.eval(r, n))).collect();
        let param = compress_rank_table(table.clone(), n);
        for (&r, &v) in &table {
            prop_assert_eq!(param.eval(r), v, "form {:?} at rank {}", param, r);
        }
    }

    /// Unify over two disjoint partitions must agree with compressing the
    /// whole table at once, value-wise.
    #[test]
    fn rank_param_unify_agrees_with_whole_table(
        f in arb_rank_fn(),
        n in 4usize..64,
        split in 1usize..63,
    ) {
        let split = split.min(n - 1);
        let lo = RankSet::from_ranks(0..split);
        let hi = RankSet::from_ranks(split..n);
        let plo = compress_rank_table((0..split).map(|r| (r, f.eval(r, n))).collect(), n);
        let phi = compress_rank_table((split..n).map(|r| (r, f.eval(r, n))).collect(), n);
        let unified = RankParam::unify(&plo, &lo, &phi, &hi, n);
        for r in 0..n {
            prop_assert_eq!(unified.eval(r), f.eval(r, n));
        }
    }

    /// Dense and symbolic unification must agree pointwise on arbitrary
    /// irregular rank tables, however the table is cut into parts, and
    /// their canonical forms must coincide (the byte-identity the encoders
    /// rely on).
    #[test]
    fn symbolic_unify_matches_dense_on_arbitrary_tables(
        vals in proptest::collection::vec(0usize..48, 2..48),
        cuts in proptest::collection::vec(0usize..48, 0..6),
        world in 0usize..2,
    ) {
        use scalatrace::params::{with_param_repr, ParamRepr};
        let n = vals.len();
        let world = world * n; // 0 (no modulus) or the world size
        let table: BTreeMap<usize, usize> = vals.iter().copied().enumerate().collect();
        // cut the rank range into contiguous parts at the given points
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % n).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();
        let parts: Vec<(RankParam, RankSet)> = bounds
            .windows(2)
            .map(|w| {
                let sub: BTreeMap<usize, usize> =
                    (w[0]..w[1]).map(|r| (r, table[&r])).collect();
                let set = RankSet::from_ranks(w[0]..w[1]);
                (compress_rank_table(sub, world), set)
            })
            .collect();
        let sym = RankParam::unify_many(parts.iter().map(|(p, s)| (p, s)), world);
        let dense = with_param_repr(ParamRepr::Dense, || {
            RankParam::unify_many(parts.iter().map(|(p, s)| (p, s)), world)
        });
        for (&r, &v) in &table {
            prop_assert_eq!(sym.eval(r), v, "symbolic wrong at rank {}", r);
            prop_assert_eq!(dense.eval(r), v, "dense wrong at rank {}", r);
        }
        prop_assert_eq!(sym.canonical(), dense.canonical());
        prop_assert_eq!(&sym, &dense, "Eq must reconcile the representations");
    }

    /// Same differential for value parameters (sizes), including the
    /// closed-form mean used by v-variant collectives.
    #[test]
    fn symbolic_val_unify_matches_dense(
        vals in proptest::collection::vec(0u64..64, 1..40),
    ) {
        use scalatrace::params::{with_param_repr, ParamRepr};
        let parts: Vec<(ValParam, RankSet)> = vals
            .iter()
            .enumerate()
            .map(|(r, &v)| (ValParam::Const(v), RankSet::single(r)))
            .collect();
        let sym = ValParam::unify_many(parts.iter().map(|(p, s)| (p, s)));
        let dense = with_param_repr(ParamRepr::Dense, || {
            ValParam::unify_many(parts.iter().map(|(p, s)| (p, s)))
        });
        let dom = RankSet::from_ranks(0..vals.len());
        for (r, &v) in vals.iter().enumerate() {
            prop_assert_eq!(sym.eval(r), v);
            prop_assert_eq!(dense.eval(r), v);
        }
        prop_assert_eq!(sym.canonical(), dense.canonical());
        prop_assert_eq!(sym.mean_over(&dom), dense.mean_over(&dom));
        prop_assert_eq!(sym.sum_over(&dom), dense.sum_over(&dom));
    }
}

// ---------------------------------------------------------------------------
// Compression losslessness
// ---------------------------------------------------------------------------

/// A small synthetic event: signature selects identity; everything else
/// fixed so folding depends only on the signature sequence.
fn ev(sig: u64) -> TraceNode {
    TraceNode::Event(Rsd {
        ranks: RankSet::single(0),
        sig,
        op: OpTemplate::Wait {
            count: ValParam::Const(sig + 1),
        },
        compute: TimeStats::of(SimDuration::from_usecs(sig + 1)),
    })
}

proptest! {
    /// Tail compression must be lossless: the per-rank expansion of the
    /// compressed sequence equals the input event sequence.
    #[test]
    fn compression_is_lossless(
        sigs in proptest::collection::vec(0u64..4, 0..300),
        window in 1usize..16,
    ) {
        let mut seq = Vec::new();
        for &s in &sigs {
            append_compressed(&mut seq, ev(s), window);
        }
        let total: u64 = seq.iter().map(TraceNode::concrete_event_count).sum();
        prop_assert_eq!(total, sigs.len() as u64);
        // expand back via a cursor and compare the signature stream
        let expanded: Vec<u64> = Cursor::over(&seq, 0)
            .collect_all()
            .into_iter()
            .map(|e| e.sig)
            .collect();
        prop_assert_eq!(expanded, sigs);
    }

    /// compress_tail is idempotent.
    #[test]
    fn compression_is_idempotent(sigs in proptest::collection::vec(0u64..4, 0..200)) {
        let mut seq = Vec::new();
        for &s in &sigs {
            append_compressed(&mut seq, ev(s), 32);
        }
        let before = seq.clone();
        compress_tail(&mut seq, 32);
        prop_assert_eq!(seq, before);
    }

    /// Periodic inputs compress to O(period) nodes regardless of length.
    #[test]
    fn periodic_inputs_compress(period in 1usize..6, reps in 2usize..60) {
        let mut seq = Vec::new();
        for i in 0..period * reps {
            append_compressed(&mut seq, ev((i % period) as u64), 16);
        }
        let nodes: usize = seq.iter().map(TraceNode::node_count).sum();
        prop_assert!(
            nodes <= 2 * period + 2,
            "period {period} x {reps} gave {nodes} nodes"
        );
    }
}

// ---------------------------------------------------------------------------
// Differential folding: fingerprint index vs seed structural scan
// ---------------------------------------------------------------------------

/// An event over a small structural alphabet: signature and payload both
/// vary, so sequences contain near-miss windows (equal signatures,
/// different volumes) as well as true repeats.
fn alpha_ev(sig: u64, bytes: u64) -> TraceNode {
    TraceNode::Event(Rsd {
        ranks: RankSet::single(0),
        sig,
        op: OpTemplate::Send {
            to: RankParam::Const(1),
            tag: 0,
            bytes: ValParam::Const(bytes * 64),
            comm: CommParam::Const(0),
            blocking: sig.is_multiple_of(2),
        },
        compute: TimeStats::of(SimDuration::from_usecs(sig + bytes)),
    })
}

fn fold_with(
    stream: &[TraceNode],
    window: usize,
    strategy: scalatrace::FoldStrategy,
) -> Vec<TraceNode> {
    let mut c = scalatrace::TailCompressor::with_strategy(window, strategy);
    for n in stream {
        c.push(n.clone());
    }
    c.into_nodes()
}

proptest! {
    /// The fingerprint-indexed fast path must produce byte-identical traces
    /// to the seed structural scan on arbitrary event sequences, and stay
    /// lossless.
    #[test]
    fn fingerprint_folding_matches_structural(
        stream in proptest::collection::vec((0u64..4, 1u64..4), 0..250),
        window in 1usize..33,
    ) {
        let nodes: Vec<TraceNode> =
            stream.iter().map(|&(s, b)| alpha_ev(s, b)).collect();
        let fp = fold_with(&nodes, window, scalatrace::FoldStrategy::Fingerprint);
        let st = fold_with(&nodes, window, scalatrace::FoldStrategy::Structural);
        prop_assert_eq!(&fp, &st);
        let expanded: Vec<u64> = Cursor::over(&fp, 0)
            .collect_all()
            .into_iter()
            .map(|e| e.sig)
            .collect();
        let expect: Vec<u64> = stream.iter().map(|&(s, _)| s).collect();
        prop_assert_eq!(expanded, expect);
    }

    /// Quasi-periodic drift streams — long repeated prefixes with one
    /// drifting parameter — are the structural scan's worst case and the
    /// fingerprint index's motivating pattern; both must still agree.
    #[test]
    fn fingerprint_folding_matches_structural_under_drift(
        period in 2usize..12,
        reps in 2usize..20,
        drift_every in 1usize..5,
    ) {
        let mut nodes = Vec::new();
        for p in 0..reps {
            for s in 0..period as u64 {
                nodes.push(alpha_ev(s, 1));
            }
            let bytes = if p % drift_every == 0 { 1_000 + p as u64 } else { 2 };
            nodes.push(alpha_ev(period as u64, bytes));
        }
        let fp = fold_with(&nodes, 32, scalatrace::FoldStrategy::Fingerprint);
        let st = fold_with(&nodes, 32, scalatrace::FoldStrategy::Structural);
        prop_assert_eq!(fp, st);
    }

    /// With every fingerprint forced to collide (the degraded all-zero
    /// mode), each window check becomes a hash hit — yet the structural
    /// confirmation must reject every unequal fold, so the output is still
    /// byte-identical to the structural scan. Collisions cost time, never
    /// correctness.
    #[test]
    fn forced_collisions_never_fold_unequal_nodes(
        stream in proptest::collection::vec((0u64..3, 1u64..3), 0..150),
        window in 1usize..17,
    ) {
        let nodes: Vec<TraceNode> =
            stream.iter().map(|&(s, b)| alpha_ev(s, b)).collect();
        let mut degraded = scalatrace::TailCompressor::degraded(window);
        for n in &nodes {
            degraded.push(n.clone());
        }
        let st = fold_with(&nodes, window, scalatrace::FoldStrategy::Structural);
        prop_assert_eq!(degraded.into_nodes(), st);
    }
}

// ---------------------------------------------------------------------------
// Inter-rank merge: per-rank projections are preserved
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn merge_preserves_per_rank_projections(
        // per-rank signature streams; same alphabet so merging happens
        streams in proptest::collection::vec(
            proptest::collection::vec(0u64..3, 0..40),
            1..6
        ),
    ) {
        let nranks = streams.len();
        let seqs: Vec<Vec<TraceNode>> = streams
            .iter()
            .enumerate()
            .map(|(rank, sigs)| {
                let mut seq = Vec::new();
                for &s in sigs {
                    let node = TraceNode::Event(Rsd {
                        ranks: RankSet::single(rank),
                        sig: s,
                        op: OpTemplate::Wait { count: ValParam::Const(s + 1) },
                        compute: TimeStats::new(),
                    });
                    append_compressed(&mut seq, node, 16);
                }
                seq
            })
            .collect();
        let merged = merge_sequences(seqs, nranks);
        let trace = Trace { nranks, nodes: merged, comms: CommTable::world(nranks) };
        for (rank, sigs) in streams.iter().enumerate() {
            let got: Vec<u64> = Cursor::new(&trace, rank)
                .collect_all()
                .into_iter()
                .map(|e| e.sig)
                .collect();
            prop_assert_eq!(&got, sigs, "rank {} projection changed", rank);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential merge: parallel tree reduce vs seed sequential pairing
// ---------------------------------------------------------------------------

/// The seed merge: level-by-level pair merges, strictly sequential and in
/// index order. The pool's tree reduce pairs levels identically, so every
/// width must reproduce this byte for byte.
fn seed_merge(mut level: Vec<Vec<TraceNode>>, world: usize) -> Vec<TraceNode> {
    while level.len() > 1 {
        let mut next = Vec::new();
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_pair(a, b, world)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.pop().unwrap_or_default()
}

/// A per-rank send whose volume depends on the rank, so cross-rank merging
/// exercises real parameter unification rather than trivial set unions.
fn rank_node(rank: usize, sig: u64, bytes: u64, world: usize) -> TraceNode {
    TraceNode::Event(Rsd {
        ranks: RankSet::single(rank),
        sig,
        op: OpTemplate::Send {
            to: RankParam::Const((rank + 1) % world),
            tag: 0,
            bytes: ValParam::Const(64 * bytes + rank as u64),
            comm: CommParam::Const(0),
            blocking: false,
        },
        compute: TimeStats::of(SimDuration::from_usecs(sig + 1)),
    })
}

/// Build ragged per-rank folded sequences from per-rank `(sig, bytes)`
/// streams.
fn ragged_seqs(streams: &[Vec<(u64, u64)>]) -> Vec<Vec<TraceNode>> {
    let world = streams.len();
    streams
        .iter()
        .enumerate()
        .map(|(rank, evs)| {
            let mut seq = Vec::new();
            for &(s, b) in evs {
                append_compressed(&mut seq, rank_node(rank, s, b, world), 16);
            }
            seq
        })
        .collect()
}

proptest! {
    /// The seed pairwise strategy must be byte-identical across pool widths
    /// and to the seed sequential pairing, on ragged per-rank streams.
    #[test]
    fn pairwise_merge_is_pool_width_invariant(
        streams in proptest::collection::vec(
            proptest::collection::vec((0u64..4, 1u64..4), 0..32),
            1..10
        ),
    ) {
        let world = streams.len();
        let seqs = ragged_seqs(&streams);
        let seed = seed_merge(seqs.clone(), world);
        for threads in [1usize, 2, 8] {
            let got =
                merge_sequences_strategy(seqs.clone(), world, threads, MergeStrategy::Pairwise);
            prop_assert_eq!(&got, &seed, "pool width {} diverged from the seed merge", threads);
        }
    }

    /// The default class-collapsed strategy must be byte-identical across
    /// pool widths on arbitrary ragged streams, with identical phase
    /// counters (bucketing and reduction shape are width-invariant).
    #[test]
    fn class_collapse_is_pool_width_invariant(
        streams in proptest::collection::vec(
            proptest::collection::vec((0u64..4, 1u64..4), 0..32),
            1..10
        ),
    ) {
        let world = streams.len();
        let seqs = ragged_seqs(&streams);
        let (base, base_stats) =
            merge_sequences_stats(seqs.clone(), world, 1, MergeStrategy::ClassCollapsed);
        for threads in [2usize, 8] {
            let (got, stats) =
                merge_sequences_stats(seqs.clone(), world, threads, MergeStrategy::ClassCollapsed);
            prop_assert_eq!(&got, &base, "pool width {} diverged", threads);
            prop_assert_eq!(stats, base_stats, "stats diverged at width {}", threads);
        }
    }

    /// With exactly two ranks, the collapsed strategy is either one flat
    /// collapse (same shape class) or one anchored pair merge — and both
    /// must equal the seed `merge_pair` unconditionally, on arbitrary
    /// ragged streams. This pins the anchor-trimming rewrite against the
    /// seed DP including its tie-breaking.
    #[test]
    fn two_rank_collapse_matches_seed_pair(
        sa in proptest::collection::vec((0u64..4, 1u64..4), 0..32),
        sb in proptest::collection::vec((0u64..4, 1u64..4), 0..32),
    ) {
        let streams = vec![sa, sb];
        let seqs = ragged_seqs(&streams);
        let seed = merge_pair(seqs[0].clone(), seqs[1].clone(), 2);
        let got = merge_sequences_strategy(seqs, 2, 1, MergeStrategy::ClassCollapsed);
        prop_assert_eq!(got, seed);
    }

    /// SPMD single-class streams: collapse is byte-identical to the seed
    /// pairwise merge under any permutation of the input rank order, and
    /// finds exactly one class.
    #[test]
    fn spmd_collapse_matches_seed_under_permutation(
        program in proptest::collection::vec((0u64..4, 1u64..4), 0..32),
        world in 2usize..12,
        perm_seed in 0u64..1024,
    ) {
        let streams: Vec<Vec<(u64, u64)>> = vec![program; world];
        let seqs = ragged_seqs(&streams);
        let seed = seed_merge(seqs.clone(), world);
        // Fisher–Yates with a xorshift generator: any fixed permutation of
        // the per-rank sequences must not change the merged bytes.
        let mut perm: Vec<usize> = (0..world).collect();
        let mut x = perm_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        for i in (1..world).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            perm.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let permuted: Vec<Vec<TraceNode>> = perm.iter().map(|&i| seqs[i].clone()).collect();
        let (got, stats) =
            merge_sequences_stats(permuted, world, 1, MergeStrategy::ClassCollapsed);
        prop_assert_eq!(&got, &seed);
        prop_assert_eq!(stats.classes, 1, "SPMD streams are one shape class");
        prop_assert_eq!(stats.rep_merges, 0);
    }

    /// Forced digest collisions (every sequence hashes alike) must leave
    /// the merged bytes and the class structure unchanged — collisions cost
    /// confirms, never correctness.
    #[test]
    fn degraded_collapse_matches_normal(
        streams in proptest::collection::vec(
            proptest::collection::vec((0u64..4, 1u64..4), 0..32),
            1..10
        ),
    ) {
        let world = streams.len();
        let seqs = ragged_seqs(&streams);
        let (normal, nstats) =
            merge_sequences_stats(seqs.clone(), world, 1, MergeStrategy::ClassCollapsed);
        let (degraded, dstats) = merge_sequences_degraded(seqs, world, 1);
        prop_assert_eq!(&degraded, &normal);
        prop_assert_eq!(dstats.classes, nstats.classes);
        prop_assert_eq!(dstats.members, nstats.members);
    }

    /// Crash-truncated SPMD streams — the shape a seeded `FaultPlan` crash
    /// leaves behind, every rank holding a prefix of the same program —
    /// must collapse byte-identically to the seed pairwise merge, down to
    /// the rendered trace text.
    #[test]
    fn truncated_spmd_collapse_matches_seed(
        program in proptest::collection::vec((0u64..4, 1u64..4), 1..32),
        cuts in proptest::collection::vec(0usize..100, 2..10),
    ) {
        let world = cuts.len();
        let streams: Vec<Vec<(u64, u64)>> = vec![program; world];
        let seqs: Vec<Vec<TraceNode>> = ragged_seqs(&streams)
            .into_iter()
            .zip(&cuts)
            .map(|(seq, &c)| {
                let keep = c % (seq.len() + 1);
                seq.into_iter().take(keep).collect()
            })
            .collect();
        let seed = seed_merge(seqs.clone(), world);
        let got = merge_sequences_strategy(seqs, world, 1, MergeStrategy::ClassCollapsed);
        prop_assert_eq!(&got, &seed);
        let t_got = Trace { nranks: world, nodes: got, comms: CommTable::world(world) };
        let t_seed = Trace { nranks: world, nodes: seed, comms: CommTable::world(world) };
        prop_assert_eq!(to_text(&t_got), to_text(&t_seed));
    }
}

// ---------------------------------------------------------------------------
// Text serialisation round trip
// ---------------------------------------------------------------------------

fn arb_op() -> impl Strategy<Value = OpTemplate> {
    prop_oneof![
        ((0usize..8), (0i32..4), (1u64..10_000)).prop_map(|(to, tag, bytes)| OpTemplate::Send {
            to: RankParam::Const(to),
            tag,
            bytes: ValParam::Const(bytes),
            comm: CommParam::Const(0),
            blocking: to % 2 == 0,
        }),
        (1u64..5).prop_map(|c| OpTemplate::Wait {
            count: ValParam::Const(c)
        }),
        (-4i64..4).prop_map(|d| OpTemplate::Send {
            to: RankParam::Offset(d),
            tag: 0,
            bytes: ValParam::Const(64),
            comm: CommParam::Const(0),
            blocking: false,
        }),
    ]
}

proptest! {
    #[test]
    fn text_round_trip(ops in proptest::collection::vec((arb_op(), 0u64..1000), 1..30)) {
        let mut trace = Trace::new(8);
        for (op, sig) in ops {
            trace.nodes.push(TraceNode::Event(Rsd {
                ranks: RankSet::all(8),
                sig,
                op,
                compute: TimeStats::of(SimDuration::from_nanos(sig)),
            }));
        }
        let text = scalatrace::text::to_text(&trace);
        let back = scalatrace::text::from_text(&text).expect("parses");
        prop_assert_eq!(back.nranks, trace.nranks);
        prop_assert_eq!(back.concrete_event_count(), trace.concrete_event_count());
        scalatrace::semantically_equal(&trace, &back).expect("semantic equality");
    }
}

// ---------------------------------------------------------------------------
// Parser robustness: from_text must never panic, whatever the input
// ---------------------------------------------------------------------------

/// A trace exercising every line shape the text format has — comm lines,
/// nested loops, every op tag, wildcards, per-rank tables — so mutations of
/// its rendering reach every branch of the parser.
fn fuzz_base_text() -> String {
    use mpisim::types::CollKind;
    let mut trace = Trace::new(4);
    trace.comms.insert(7, vec![0, 2]);
    let ev = |sig: u64, op: OpTemplate| {
        TraceNode::Event(Rsd {
            ranks: RankSet::from_ranks(0..4),
            sig,
            op,
            compute: TimeStats::of(SimDuration::from_nanos(sig * 3 + 1)),
        })
    };
    let body = vec![
        ev(
            1,
            OpTemplate::Send {
                to: RankParam::OffsetMod {
                    offset: 1,
                    modulus: 4,
                },
                tag: 3,
                bytes: ValParam::PerRank((0..4).map(|r| (r, 64 * r as u64)).collect()),
                comm: CommParam::Const(0),
                blocking: false,
            },
        ),
        ev(
            2,
            OpTemplate::Recv {
                from: scalatrace::params::SrcParam::Any,
                tag: mpisim::types::TagSel::Any,
                bytes: ValParam::Const(256),
                comm: CommParam::PerRank((0..4).map(|r| (r, (r % 2) as u32 * 7)).collect()),
                blocking: true,
            },
        ),
        ev(
            3,
            OpTemplate::Wait {
                count: ValParam::Const(2),
            },
        ),
    ];
    trace
        .nodes
        .push(TraceNode::Loop(scalatrace::trace::Prsd { count: 10, body }));
    trace.nodes.push(ev(
        4,
        OpTemplate::Coll {
            kind: CollKind::Allreduce,
            root: Some(RankParam::Xor(1)),
            bytes: ValParam::Const(64),
            comm: CommParam::Const(7),
        },
    ));
    trace.nodes.push(ev(
        5,
        OpTemplate::CommSplit {
            parent: 0,
            result: 7,
        },
    ));
    to_text(&trace)
}

proptest! {
    /// Fuzz: arbitrary byte flips plus a truncation applied to a valid
    /// trace rendering. The parser must always return (Ok or Err) — a panic
    /// fails the property — and must do so fast even when the mutation
    /// fabricates absurd counts.
    #[test]
    fn from_text_survives_mutated_trace_text(
        flips in proptest::collection::vec((0usize..100_000, 0u8..=255), 0..8),
        cut in 0usize..100_000,
    ) {
        let mut bytes = fuzz_base_text().into_bytes();
        for &(pos, val) in &flips {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        let keep = cut % (bytes.len() + 1);
        bytes.truncate(keep);
        let s = String::from_utf8_lossy(&bytes);
        let _ = scalatrace::text::from_text(&s);
    }

    /// Fuzz: completely arbitrary unicode input.
    #[test]
    fn from_text_survives_arbitrary_input(s in "\\PC*") {
        let _ = scalatrace::text::from_text(&s);
    }

    /// Valid renderings of synthetic traces keep parsing after the
    /// hardening (no behavioural regression from the unwrap sweep).
    #[test]
    fn hardened_parser_still_accepts_valid_traces(
        sigs in proptest::collection::vec(0u64..6, 1..40),
    ) {
        let mut trace = Trace::new(4);
        for &s in &sigs {
            trace.nodes.push(TraceNode::Event(Rsd {
                ranks: RankSet::from_ranks(0..4),
                sig: s,
                op: OpTemplate::Wait { count: ValParam::Const(s + 1) },
                compute: TimeStats::of(SimDuration::from_nanos(s)),
            }));
        }
        let text = to_text(&trace);
        let back = scalatrace::text::from_text(&text).expect("valid text parses");
        prop_assert_eq!(to_text(&back), text);
    }
}

/// Directed adversarial inputs aimed at the previously panicking or
/// unbounded sites: empty/multibyte tag fields, overflowing rank runs,
/// materialisation bombs, and absurd histogram counts. All must return
/// promptly — `Err` for the malformed ones, `Ok` in O(1) for the absurd
/// count, never a panic or an eternity.
#[test]
fn adversarial_trace_text_is_rejected_structurally() {
    let must_err = [
        // empty field where a tagged value is expected (split_at(1) panic)
        "trace nranks=2\nev sig=1 ranks=0:1:1 op=wait count= t=1x1\n",
        // multibyte first char in a tag position (split_at(1) UTF-8 panic)
        "trace nranks=2\nev sig=1 ranks=0:1:1 op=send to=\u{e9}3 tag=0 bytes=c1 comm=c0 t=1x1\n",
        "trace nranks=2\nev sig=1 ranks=0:1:1 op=wait count=\u{1F600} t=1x1\n",
        // rank run arithmetic overflow
        "trace nranks=2\nev sig=1 ranks=18446744073709551615:2:3 op=wait count=c1 t=1x1\n",
        "trace nranks=2\nev sig=1 ranks=2:18446744073709551615:3 op=wait count=c1 t=1x1\n",
        // rank materialisation bomb
        "trace nranks=2\nev sig=1 ranks=0:1:18446744073709551615 op=wait count=c1 t=1x1\n",
        // implausible world size (allocation bomb in Trace::new)
        "trace nranks=18446744073709551615\n",
        "trace nranks=999999999999\n",
        // malformed comm lines
        "trace nranks=2\ncomm 5\n",
        "trace nranks=2\ncomm x 0,1\n",
        // structural garbage that previously hit unwraps
        "trace nranks=2\n}\n",
        "trace nranks=2\nloop 3 {\n",
    ];
    for s in must_err {
        assert!(
            scalatrace::text::from_text(s).is_err(),
            "must reject: {s:?}"
        );
    }
    // An absurd histogram count is *valid* data — but must decode in O(1),
    // not by recording 2^64 samples one at a time.
    let t0 = std::time::Instant::now();
    let huge = scalatrace::text::from_text(
        "trace nranks=2\nev sig=1 ranks=0:1:2 op=wait count=c1 t=18446744073709551615x5\n",
    )
    .expect("huge count is well-formed");
    assert_eq!(huge.nodes.len(), 1);
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "histogram decode must not loop over the count"
    );
}

// ---------------------------------------------------------------------------
// TimeStats
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn timestats_merge_matches_pooled(
        a in proptest::collection::vec(0u64..1_000_000, 1..50),
        b in proptest::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let mut sa = TimeStats::new();
        for &x in &a { sa.record(SimDuration::from_nanos(x)); }
        let mut sb = TimeStats::new();
        for &x in &b { sb.record(SimDuration::from_nanos(x)); }
        let mut pooled = TimeStats::new();
        for &x in a.iter().chain(&b) { pooled.record(SimDuration::from_nanos(x)); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), pooled.count());
        prop_assert_eq!(sa.mean(), pooled.mean());
        prop_assert_eq!(sa.min(), pooled.min());
        prop_assert_eq!(sa.max(), pooled.max());
        prop_assert_eq!(sa.bins(), pooled.bins());
    }
}
