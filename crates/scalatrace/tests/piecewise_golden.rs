//! Golden fixtures for the piecewise-symbolic parameter encodings.
//!
//! The fixtures under `tests/fixtures/` pin the on-disk contract:
//!
//! * `piecewise_v1.txt` / `piecewise_v1.stbs` — text and binary encodings
//!   of a trace exercising every symbolic form (piecewise peers, linear
//!   and piecewise sizes, piecewise communicators, plus the dense
//!   per-rank escape hatch). Both must round-trip byte-identically.
//! * `dense_legacy_v1.txt` — a pre-piecewise trace using only the legacy
//!   tags (`c`/`o`/`m`/`x`/`p`). Old traces must keep parsing forever.
//!
//! Regenerate after an intentional format change with:
//!
//! ```text
//! PIECEWISE_GOLDEN_REGEN=1 cargo test -p scalatrace --test piecewise_golden
//! ```

use mpisim::time::SimDuration;
use mpisim::types::{CollKind, TagSel};
use scalatrace::params::{CommParam, RankFn, RankParam, SrcParam, ValParam};
use scalatrace::rankset::RankSet;
use scalatrace::stream::{trace_from_bytes, trace_to_bytes};
use scalatrace::text::{from_text, to_text};
use scalatrace::timestats::TimeStats;
use scalatrace::trace::{OpTemplate, Prsd, Rsd, Trace, TraceNode};
use std::collections::BTreeMap;

fn ev(sig: u64, ranks: RankSet, op: OpTemplate) -> TraceNode {
    TraceNode::Event(Rsd {
        ranks,
        sig,
        op,
        compute: TimeStats::of(SimDuration::from_usecs(10)),
    })
}

/// A hand-built trace covering every parameter encoding the piecewise
/// representation added: piecewise peers (contiguous and singleton
/// pieces), linear sizes, piecewise sizes, piecewise communicators — and
/// the dense per-rank escape hatch that irregular tables still take.
fn piecewise_trace() -> Trace {
    let mut t = Trace::new(8);
    t.comms.insert(1, (0..4).collect());

    // a broken ring: interior ranks shift right, the last rank targets a
    // fixed root — the canonical two-piece peer
    t.nodes.push(ev(
        0x11,
        RankSet::all(8),
        OpTemplate::Send {
            to: RankParam::Piecewise(vec![
                (RankSet::from_ranks(0..7), RankFn::Offset(1)),
                (RankSet::single(7), RankFn::Const(3)),
            ]),
            tag: 0,
            bytes: ValParam::Linear { base: 64, slope: 8 },
            comm: CommParam::Const(0),
            blocking: false,
        },
    ));

    // piecewise sizes and communicators on the matching receive
    t.nodes.push(ev(
        0x12,
        RankSet::all(8),
        OpTemplate::Recv {
            from: SrcParam::Rank(RankParam::OffsetMod {
                offset: 7,
                modulus: 8,
            }),
            tag: TagSel::Is(0),
            bytes: ValParam::Piecewise(vec![
                (RankSet::from_ranks(0..4), 256),
                (RankSet::from_ranks(4..8), 512),
            ]),
            comm: CommParam::Piecewise(vec![
                (RankSet::from_ranks(0..4), 1),
                (RankSet::from_ranks(4..8), 0),
            ]),
            blocking: false,
        },
    ));

    t.nodes.push(ev(
        0x13,
        RankSet::all(8),
        OpTemplate::Wait {
            count: ValParam::Const(2),
        },
    ));

    // a loop whose collective carries a genuinely irregular size table —
    // the dense escape hatch must coexist with the symbolic forms
    let scattered: BTreeMap<usize, u64> = [
        (0, 96),
        (1, 32),
        (2, 640),
        (3, 8),
        (4, 416),
        (5, 80),
        (6, 1),
        (7, 7),
    ]
    .into();
    t.nodes.push(TraceNode::Loop(Prsd {
        count: 5,
        body: vec![ev(
            0x14,
            RankSet::all(8),
            OpTemplate::Coll {
                kind: CollKind::Allreduce,
                root: None,
                bytes: ValParam::PerRank(scattered),
                comm: CommParam::Const(0),
            },
        )],
    }));

    t
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compare (or with `PIECEWISE_GOLDEN_REGEN=1`, rewrite) one golden file.
fn check_golden(name: &str, body: &[u8]) {
    let path = fixture_path(name);
    if std::env::var_os("PIECEWISE_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, body).unwrap();
        return;
    }
    let pinned = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with PIECEWISE_GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        body,
        pinned.as_slice(),
        "{name}: encoding changed — piecewise formats are pinned; \
         regenerate only for an intentional, documented format change"
    );
}

#[test]
fn piecewise_text_encoding_is_pinned_and_roundtrips() {
    let t = piecewise_trace();
    let text = to_text(&t);
    // the fixture must actually exercise the new tags
    assert!(text.contains("w"), "no piecewise tag in the fixture trace");
    assert!(text.contains("l64,8"), "no linear tag in the fixture trace");
    assert!(
        text.contains("p0>96"),
        "no dense escape in the fixture trace"
    );
    check_golden("piecewise_v1.txt", text.as_bytes());

    let back = from_text(&text).expect("pinned text parses");
    assert_eq!(
        to_text(&back),
        text,
        "text round-trip is not byte-identical"
    );
    scalatrace::semantically_equal(&t, &back).expect("decoded trace is semantically identical");
}

#[test]
fn piecewise_binary_encoding_is_pinned_and_roundtrips() {
    let t = piecewise_trace();
    let bytes = trace_to_bytes(&t);
    check_golden("piecewise_v1.stbs", &bytes);

    let back = trace_from_bytes(&bytes).expect("pinned STBS parses");
    assert_eq!(
        trace_to_bytes(&back),
        bytes,
        "binary round-trip is not byte-identical"
    );
    scalatrace::semantically_equal(&t, &back).expect("decoded trace is semantically identical");
}

#[test]
fn pre_piecewise_traces_still_parse() {
    let pinned = std::fs::read_to_string(fixture_path("dense_legacy_v1.txt"))
        .expect("legacy fixture is checked in");
    let t = from_text(&pinned).expect("legacy dense-tag trace parses");
    assert_eq!(t.nranks, 8);
    // re-encoding is a fixed point from the second generation on, even
    // though the first re-encode may canonicalize legacy dense tables
    // into their symbolic forms
    let second = to_text(&from_text(&to_text(&t)).expect("re-encoded trace parses"));
    assert_eq!(second, to_text(&t), "re-encoding must reach a fixed point");
}
