//! Streaming-capture differential tests: bounded-memory capture through
//! `scalatrace::stream` must be *byte-identical* to the unbounded
//! in-memory path — same trace text, same binary encoding (timing
//! histograms included), same virtual times, same engine profile — under
//! any window budget, any fold window, seeded fault plans, and runs cut
//! short by an injected rank crash.

use mpisim::error::SimError;
use mpisim::faults::FaultPlan;
use mpisim::network;
use mpisim::time::SimDuration;
use mpisim::types::{Src, TagSel};
use mpisim::world::World;
use proptest::prelude::*;
use scalatrace::stream::trace_to_bytes;
use scalatrace::{
    text, trace_world_streamed, FoldStrategy, StreamConfig, TailCompressor, Trace, Tracer,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "scalatrace-stream-diff-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Ring exchange + periodic sub-communicator allreduce + closing barrier
/// (the same shape the checkpoint differentials use): point-to-point,
/// collectives, and CommSplit all flow through the streaming hook.
fn app(iters: usize, bytes: u64) -> impl Fn(&mut mpisim::Ctx) + Send + Sync + 'static {
    move |ctx| {
        let w = ctx.world();
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        let half = ctx.comm_split(&w, (ctx.rank() % 2) as i64, ctx.rank() as i64);
        for i in 0..iters {
            let r = ctx.irecv(Src::Rank(left), TagSel::Is(0), bytes, &w);
            let s = ctx.isend(right, 0, bytes, &w);
            ctx.compute(SimDuration::from_usecs(3));
            ctx.waitall(&[r, s]);
            if i % 3 == 0 {
                ctx.allreduce(64, &half);
            }
        }
        ctx.barrier(&w);
    }
}

/// The unbounded in-memory reference at an explicit fold window (the
/// streamed capture under test must use the same window, or the two
/// legitimately fold differently).
fn unbounded_reference(
    world: World,
    n: usize,
    window: usize,
    body: impl Fn(&mut mpisim::Ctx) + Send + Sync + 'static,
) -> (Result<mpisim::world::RunReport, SimError>, Trace) {
    let (result, tracers) = world.run_hooked_partial(
        move |r| {
            Tracer::with_compressor(
                r,
                n,
                TailCompressor::with_strategy(window, FoldStrategy::default()),
            )
        },
        body,
    );
    (result, scalatrace::merge::merge_tracers(tracers))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streamed capture == unbounded capture, for arbitrary budgets (0
    /// clamps to the smallest exact budget) and fold windows, under a
    /// seeded timing-perturbation plan.
    #[test]
    fn streamed_capture_is_differentially_identical(
        n in 2usize..5,
        iters in 1usize..8,
        bytes in 1u64..10_000,
        budget in 0usize..200,
        window in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let timing = FaultPlan::differential(seed, n);
        let (result, reference) = unbounded_reference(
            World::new(n).network(network::ethernet_cluster()).faults(timing.clone()),
            n,
            window,
            app(iters, bytes),
        );
        let report = result.expect("reference run completes");

        let dir = temp_dir("prop");
        let cfg = StreamConfig::new(&dir, budget).with_max_window(window);
        let streamed = trace_world_streamed(
            World::new(n).network(network::ethernet_cluster()).faults(timing),
            n,
            &cfg,
            app(iters, bytes),
        ).unwrap();

        // Byte-identical trace: the binary encoding compares the timing
        // histograms verbatim, the text comparison gives a readable diff
        // when something is off.
        prop_assert_eq!(text::to_text(&streamed.run.trace), text::to_text(&reference));
        prop_assert_eq!(trace_to_bytes(&streamed.run.trace), trace_to_bytes(&reference));

        // Identical virtual times and engine (mpiP-style) profile.
        let streamed_report = streamed.run.report.as_ref().expect("streamed run completes");
        prop_assert_eq!(streamed_report.total_time, report.total_time);
        prop_assert_eq!(&streamed_report.per_rank_time, &report.per_rank_time);
        prop_assert_eq!(&streamed_report.stats, &report.stats);

        // The capture held to its budget and lost nothing.
        prop_assert!(streamed.salvage.complete());
        for c in &streamed.counters {
            prop_assert_eq!(c.seal_errors, 0);
            prop_assert!(c.peak_resident <= cfg.budget(),
                "peak {} > budget {}", c.peak_resident, cfg.budget());
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A run cut short by a seeded rank crash streams the same partial
    /// trace the unbounded path collects: crash-time capture is not
    /// allowed to drop or duplicate the tail the dying rank produced.
    #[test]
    fn crashed_run_streams_the_same_partial_trace(
        n in 2usize..5,
        iters in 2usize..8,
        bytes in 1u64..10_000,
        budget in 0usize..120,
        window in 1usize..8,
        seed in 0u64..1_000,
        victim in 0usize..5,
        after in 0u64..30,
    ) {
        let victim = victim % n;
        let timing = FaultPlan::differential(seed, n);
        let (result, reference) = unbounded_reference(
            World::new(n)
                .network(network::ethernet_cluster())
                .faults(timing.clone().crash_rank(victim, after)),
            n,
            window,
            app(iters, bytes),
        );
        if let Err(err) = &result {
            prop_assert!(matches!(err, SimError::RankFailed { .. }), "{}", err);
        }

        let dir = temp_dir("crash");
        let cfg = StreamConfig::new(&dir, budget).with_max_window(window);
        let streamed = trace_world_streamed(
            World::new(n)
                .network(network::ethernet_cluster())
                .faults(timing.crash_rank(victim, after)),
            n,
            &cfg,
            app(iters, bytes),
        ).unwrap();

        prop_assert_eq!(streamed.run.error.is_some(), result.is_err());
        prop_assert_eq!(text::to_text(&streamed.run.trace), text::to_text(&reference));
        prop_assert_eq!(trace_to_bytes(&streamed.run.trace), trace_to_bytes(&reference));
        prop_assert!(streamed.salvage.complete(),
            "every rank flushed its tail at crash teardown");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
