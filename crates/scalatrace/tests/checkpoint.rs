//! Checkpoint/restart differential tests: a run that crashes and resumes
//! from its checkpoints must produce the *same bytes* — trace text and
//! virtual times — as the run that never crashed.

use mpisim::error::SimError;
use mpisim::faults::FaultPlan;
use mpisim::network;
use mpisim::time::SimDuration;
use mpisim::types::{Src, TagSel};
use mpisim::world::World;
use proptest::prelude::*;
use scalatrace::{
    text, trace_world, trace_world_checkpointed, trace_world_resumed, CheckpointConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "scalatrace-ckpt-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Ring exchange + periodic sub-communicator allreduce + closing barrier:
/// exercises point-to-point, collectives, and CommSplit in the checkpointed
/// stream.
fn app(iters: usize, bytes: u64) -> impl Fn(&mut mpisim::Ctx) + Send + Sync + 'static {
    move |ctx| {
        let w = ctx.world();
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        let half = ctx.comm_split(&w, (ctx.rank() % 2) as i64, ctx.rank() as i64);
        for i in 0..iters {
            let r = ctx.irecv(Src::Rank(left), TagSel::Is(0), bytes, &w);
            let s = ctx.isend(right, 0, bytes, &w);
            ctx.compute(SimDuration::from_usecs(3));
            ctx.waitall(&[r, s]);
            if i % 3 == 0 {
                ctx.allreduce(64, &half);
            }
        }
        ctx.barrier(&w);
    }
}

proptest! {
    // The acceptance bar: differential identity across >= 100 cases.
    #![proptest_config(ProptestConfig::with_cases(110))]

    /// checkpoint -> crash -> restore -> continue == uninterrupted run:
    /// byte-identical trace text and identical virtual times, under a
    /// seeded perturbation plan (jitter, skew, stragglers) the resumed run
    /// re-executes deterministically.
    #[test]
    fn resume_after_crash_is_differentially_identical(
        n in 2usize..5,
        iters in 1usize..8,
        bytes in 1u64..10_000,
        every in 1u64..13,
        seed in 0u64..1_000,
        victim in 0usize..5,
        after in 0u64..25,
    ) {
        let victim = victim % n;
        let timing = FaultPlan::differential(seed, n)
            .with_coll_straggle(SimDuration::from_usecs(seed % 50));

        // Reference: the run that never crashes.
        let full = trace_world(
            World::new(n).network(network::ethernet_cluster()).faults(timing.clone()),
            n,
            app(iters, bytes),
        ).unwrap();

        // Crashing run, checkpointing every `every` events. The crash may or
        // may not fire (short apps can finish first) — both paths must
        // resume to the same place.
        let dir = temp_dir("prop");
        let cfg = CheckpointConfig::new(&dir, every);
        let crashed = trace_world_checkpointed(
            World::new(n)
                .network(network::ethernet_cluster())
                .faults(timing.clone().crash_rank(victim, after)),
            n,
            &cfg,
            app(iters, bytes),
        ).unwrap();
        if let Some(err) = &crashed.error {
            prop_assert!(matches!(err, SimError::RankFailed { .. }), "{}", err);
        }

        // Resume under the same plan stripped of its crash triggers.
        let resumed = trace_world_resumed(
            World::new(n)
                .network(network::ethernet_cluster())
                .faults(timing.without_crashes()),
            n,
            &cfg,
            app(iters, bytes),
        ).unwrap();
        prop_assert!(resumed.completed(), "resume must complete: {:?}", resumed.error);

        prop_assert_eq!(text::to_text(&resumed.trace), text::to_text(&full.trace));
        let report = resumed.report.unwrap();
        prop_assert_eq!(report.total_time, full.report.total_time);
        prop_assert_eq!(report.per_rank_time, full.report.per_rank_time);
        prop_assert_eq!(report.stats, full.report.stats);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_during_collective_leaves_resumable_partial_trace_with_named_edges() {
    const N: usize = 4;
    let full = trace_world(World::new(N), N, app(6, 512)).unwrap();

    // Rank 3 dies entering its second collective (the iteration-3 allreduce
    // or the closing barrier, depending on schedule).
    let dir = temp_dir("coll-crash");
    let cfg = CheckpointConfig::new(&dir, 4);
    let crashed = trace_world_checkpointed(
        World::new(N).faults(FaultPlan::seeded(5).crash_in_collective(3, 1)),
        N,
        &cfg,
        app(6, 512),
    )
    .unwrap();
    match &crashed.error {
        Some(SimError::RankFailed { rank, blocked, .. }) => {
            assert_eq!(*rank, 3);
            // Every survivor's wait-for edge leads (directly or through the
            // ring) back to the dead rank ...
            assert!(!blocked.is_empty(), "survivors should be blocked");
            for b in blocked {
                assert!(b.rank != 3, "the dead rank is not a survivor");
                assert!(!b.waiting_on.is_empty(), "{b}");
            }
            // ... and the dead rank's collective peers block *at the
            // collective*, with an edge naming the rendezvous and its
            // arrival count.
            assert!(
                blocked.iter().any(|b| {
                    b.what.contains("MPI_") && b.what.contains("arrived") && b.waiting_on == vec![3]
                }),
                "some survivor should be blocked inside the collective: {blocked:?}"
            );
        }
        other => panic!("expected RankFailed, got {other:?}"),
    }
    let partial_events = crashed.trace.concrete_event_count();
    assert!(partial_events > 0, "crash must not wipe the trace");
    assert!(partial_events < full.trace.concrete_event_count());

    // And the wreckage is resumable to the exact reference trace.
    let resumed = trace_world_resumed(World::new(N), N, &cfg, app(6, 512)).unwrap();
    assert!(resumed.completed());
    assert_eq!(text::to_text(&resumed.trace), text::to_text(&full.trace));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_cutoff_is_resumable_like_a_crash() {
    const N: usize = 3;
    let full = trace_world(World::new(N), N, app(10, 128)).unwrap();

    let dir = temp_dir("budget");
    let cfg = CheckpointConfig::new(&dir, 2);
    let cut = trace_world_checkpointed(World::new(N).op_budget(20), N, &cfg, app(10, 128)).unwrap();
    assert!(
        matches!(cut.error, Some(SimError::BudgetExceeded { .. })),
        "{:?}",
        cut.error
    );

    let resumed = trace_world_resumed(World::new(N), N, &cfg, app(10, 128)).unwrap();
    assert!(resumed.completed());
    assert_eq!(text::to_text(&resumed.trace), text::to_text(&full.trace));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_rank_checkpoint_restarts_that_rank_fresh() {
    const N: usize = 4;
    let full = trace_world(World::new(N), N, app(5, 256)).unwrap();

    let dir = temp_dir("missing");
    let cfg = CheckpointConfig::new(&dir, 3);
    let crashed = trace_world_checkpointed(
        World::new(N).faults(FaultPlan::seeded(2).crash_rank(1, 8)),
        N,
        &cfg,
        app(5, 256),
    )
    .unwrap();
    assert!(!crashed.completed());

    // Lose one rank's checkpoint entirely: that rank replays from scratch
    // and re-records everything, the others skip their prefixes — the merge
    // converges to the same trace either way.
    std::fs::remove_file(cfg.rank_path(2)).unwrap();
    let resumed = trace_world_resumed(World::new(N), N, &cfg, app(5, 256)).unwrap();
    assert!(resumed.completed());
    assert_eq!(text::to_text(&resumed.trace), text::to_text(&full.trace));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_is_refused_not_trusted() {
    const N: usize = 2;
    let dir = temp_dir("corrupt");
    let cfg = CheckpointConfig::new(&dir, 1);
    trace_world_checkpointed(World::new(N), N, &cfg, app(3, 64)).unwrap();

    // Flip one byte in the middle of rank 0's checkpoint.
    let path = cfg.rank_path(0);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let err = trace_world_resumed(World::new(N), N, &cfg, app(3, 64))
        .expect_err("corrupt checkpoint must be rejected");
    assert!(err.to_string().contains("checksum"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_are_written_atomically_no_tmp_left_behind() {
    const N: usize = 3;
    let dir = temp_dir("atomic");
    let cfg = CheckpointConfig::new(&dir, 1);
    trace_world_checkpointed(World::new(N), N, &cfg, app(4, 64)).unwrap();

    let mut saw_ckpt = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert!(
            !name.ends_with(".tmp"),
            "temporary file leaked into the checkpoint dir: {name}"
        );
        if name.ends_with(".ckpt") {
            saw_ckpt += 1;
        }
    }
    assert_eq!(saw_ckpt, N, "one final salvage checkpoint per rank");

    let _ = std::fs::remove_dir_all(&dir);
}
