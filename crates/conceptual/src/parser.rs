//! Parser for the printed form of [`crate::ast::Program`].
//!
//! The grammar is exactly what [`crate::printer::print`] emits (an
//! English-like coNCePTuaL subset), so `parse(print(p)) == p` for programs
//! the generator produces. Having a real parser keeps the generated
//! artifact *editable*: the what-if workflow of the paper's §5.4 edits the
//! text and re-runs it.

use crate::ast::*;

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Word(String),
    Num(i64),
    Str(String),
    Comment(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Colon,
    Ellipsis,
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

const KEYWORDS: &[&str] = &[
    "ALL",
    "TASKS",
    "TASK",
    "GROUP",
    "IS",
    "IN",
    "SUCH",
    "THAT",
    "FOR",
    "EACH",
    "REPETITIONS",
    "IF",
    "THEN",
    "OTHERWISE",
    "COMPUTE",
    "COMPUTES",
    "SEND",
    "SENDS",
    "RECEIVE",
    "RECEIVES",
    "AWAIT",
    "AWAITS",
    "COMPLETION",
    "SYNCHRONIZE",
    "SYNCHRONIZES",
    "REDUCE",
    "REDUCES",
    "MULTICAST",
    "MULTICASTS",
    "RESET",
    "THEIR",
    "COUNTERS",
    "LOG",
    "ASYNCHRONOUSLY",
    "A",
    "BYTE",
    "MESSAGE",
    "WITH",
    "TAG",
    "TO",
    "FROM",
    "ANY",
    "OTHER",
    "MOD",
    "DIVIDES",
    "AND",
    "OR",
    "NOT",
    "XOR",
    "NUM_TASKS",
    "NANOSECONDS",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
    "PARTITION",
    "INTO",
];

fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
}

fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                let start = i + 1;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok::Comment(src[start..i].trim().to_string()));
            }
            '"' => {
                let start = i + 1;
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err("unterminated string".into());
                }
                toks.push(Tok::Str(src[start..i].to_string()));
                i += 1;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '.' => {
                if src[i..].starts_with("...") {
                    toks.push(Tok::Ellipsis);
                    i += 3;
                } else {
                    return Err(format!("stray '.' at byte {i}"));
                }
            }
            '<' => {
                if src[i..].starts_with("<=") {
                    toks.push(Tok::Le);
                    i += 2;
                } else if src[i..].starts_with("<>") {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if src[i..].starts_with(">=") {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                toks.push(Tok::Num(
                    src[start..i]
                        .parse()
                        .map_err(|e| format!("bad number: {e}"))?,
                ));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok::Word(src[start..i].to_string()));
            }
            other => return Err(format!("unexpected character {other:?} at byte {i}")),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), String> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            got => Err(format!("expected {t:?}, got {got:?}")),
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<(), String> {
        match self.next() {
            Some(Tok::Word(ref got)) if got == w => Ok(()),
            got => Err(format!("expected {w}, got {got:?}")),
        }
    }

    fn peek_word(&self, w: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(x)) if x == w)
    }

    fn peek_word_at(&self, off: usize, w: &str) -> bool {
        matches!(self.peek_at(off), Some(Tok::Word(x)) if x == w)
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // -- program -------------------------------------------------------------

    fn program(&mut self) -> Result<Program, String> {
        let mut header = Vec::new();
        // leading comments become the header block
        while let Some(Tok::Comment(_)) = self.peek() {
            if let Some(Tok::Comment(c)) = self.next() {
                header.push(c);
            }
        }
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            stmts.push(self.stmt()?);
        }
        Ok(Program { header, stmts })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, String> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Some(Tok::RBrace)) {
            if self.peek().is_none() {
                return Err("unterminated block".into());
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, String> {
        if let Some(Tok::Comment(_)) = self.peek() {
            if let Some(Tok::Comment(c)) = self.next() {
                return Ok(Stmt::Comment(c));
            }
        }
        if self.peek_word("FOR") {
            return self.for_stmt();
        }
        if self.peek_word("IF") {
            return self.if_stmt();
        }
        // GROUP <name> IS … is a declaration; GROUP <name> <verb> is a subject.
        if self.peek_word("GROUP") && self.peek_word_at(2, "IS") {
            self.next();
            let name = self.ident()?;
            self.expect_word("IS")?;
            let tasks = self.task_set()?;
            return Ok(Stmt::DeclareGroup { name, tasks });
        }
        if self.peek_word("PARTITION") {
            return self.partition_stmt();
        }
        let subject = self.task_set()?;
        // ALL TASKS RESET THEIR COUNTERS / LOG "…"
        if self.eat_word("RESET") {
            self.expect_word("THEIR")?;
            self.expect_word("COUNTERS")?;
            return Ok(Stmt::ResetCounters);
        }
        if self.eat_word("LOG") || self.eat_word("LOGS") {
            match self.next() {
                Some(Tok::Str(label)) => return Ok(Stmt::Log { label }),
                got => return Err(format!("expected string after LOG, got {got:?}")),
            }
        }
        let is_async = self.eat_word("ASYNCHRONOUSLY");
        let verb = match self.next() {
            Some(Tok::Word(w)) => w,
            got => return Err(format!("expected a verb, got {got:?}")),
        };
        match verb.as_str() {
            "COMPUTE" | "COMPUTES" => {
                self.expect_word("FOR")?;
                let amount = self.expr()?;
                let unit = self.time_unit()?;
                Ok(Stmt::Compute {
                    tasks: subject,
                    amount,
                    unit,
                })
            }
            "SEND" | "SENDS" => {
                let (bytes, tag) = self.message()?;
                self.expect_word("TO")?;
                self.expect_word("TASK")?;
                let dst = self.expr()?;
                Ok(Stmt::Send {
                    src: subject,
                    dst,
                    bytes,
                    tag,
                    is_async,
                })
            }
            "RECEIVE" | "RECEIVES" => {
                let (bytes, tag) = self.message()?;
                self.expect_word("FROM")?;
                let src = if self.eat_word("ANY") {
                    self.expect_word("TASK")?;
                    None
                } else {
                    self.expect_word("TASK")?;
                    Some(self.expr()?)
                };
                Ok(Stmt::Receive {
                    dst: subject,
                    src,
                    bytes,
                    tag,
                    is_async,
                })
            }
            "AWAIT" | "AWAITS" => {
                self.expect_word("COMPLETION")?;
                Ok(Stmt::Await { tasks: subject })
            }
            "SYNCHRONIZE" | "SYNCHRONIZES" => Ok(Stmt::Sync { tasks: subject }),
            "REDUCE" | "REDUCES" => {
                let (bytes, _tag) = self.message()?;
                self.expect_word("TO")?;
                let to = if self.eat_word("ALL") {
                    self.expect_word("TASKS")?;
                    ReduceTo::All
                } else {
                    self.expect_word("TASK")?;
                    ReduceTo::Task(self.expr()?)
                };
                Ok(Stmt::Reduce {
                    tasks: subject,
                    to,
                    bytes,
                })
            }
            "MULTICAST" | "MULTICASTS" => {
                let (bytes, _tag) = self.message()?;
                self.expect_word("TO")?;
                if self.eat_word("EACH") {
                    self.expect_word("OTHER")?;
                    Ok(Stmt::Multicast {
                        root: None,
                        tasks: subject,
                        bytes,
                    })
                } else {
                    // "TASK <e> MULTICASTS … TO <taskset>"
                    let root = match subject.sel {
                        TaskSel::Single(e) => e,
                        other => {
                            return Err(format!(
                            "MULTICAST TO <task set> requires a single-task subject, got {other:?}"
                        ))
                        }
                    };
                    let tasks = self.task_set()?;
                    Ok(Stmt::Multicast {
                        root: Some(root),
                        tasks,
                        bytes,
                    })
                }
            }
            other => Err(format!("unknown verb {other}")),
        }
    }

    /// `PARTITION (ALL TASKS | GROUP <g>) INTO GROUP a = {…}, GROUP b = {…}`
    fn partition_stmt(&mut self) -> Result<Stmt, String> {
        self.expect_word("PARTITION")?;
        let parent = if self.eat_word("ALL") {
            self.expect_word("TASKS")?;
            None
        } else {
            self.expect_word("GROUP")?;
            Some(self.ident()?)
        };
        self.expect_word("INTO")?;
        let mut groups = Vec::new();
        loop {
            self.expect_word("GROUP")?;
            let name = self.ident()?;
            self.expect(&Tok::Eq)?;
            let runs = self.runs()?;
            groups.push((name, runs));
            if !matches!(self.peek(), Some(Tok::Comma)) {
                break;
            }
            self.next();
        }
        Ok(Stmt::Partition { parent, groups })
    }

    /// `A <expr> BYTE MESSAGE [WITH TAG <n>]`
    fn message(&mut self) -> Result<(Expr, i32), String> {
        self.expect_word("A")?;
        let bytes = self.expr()?;
        self.expect_word("BYTE")?;
        self.expect_word("MESSAGE")?;
        let mut tag = 0;
        if self.eat_word("WITH") {
            self.expect_word("TAG")?;
            match self.next() {
                Some(Tok::Num(n)) => tag = n as i32,
                got => return Err(format!("expected tag number, got {got:?}")),
            }
        }
        Ok((bytes, tag))
    }

    fn time_unit(&mut self) -> Result<TimeUnit, String> {
        match self.next() {
            Some(Tok::Word(w)) => match w.as_str() {
                "NANOSECONDS" => Ok(TimeUnit::Nanoseconds),
                "MICROSECONDS" => Ok(TimeUnit::Microseconds),
                "MILLISECONDS" => Ok(TimeUnit::Milliseconds),
                "SECONDS" => Ok(TimeUnit::Seconds),
                other => Err(format!("unknown time unit {other}")),
            },
            got => Err(format!("expected time unit, got {got:?}")),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, String> {
        self.expect_word("FOR")?;
        if self.eat_word("EACH") {
            let var = self.ident()?;
            self.expect_word("IN")?;
            self.expect(&Tok::LBrace)?;
            let from = self.expr()?;
            self.expect(&Tok::Comma)?;
            self.expect(&Tok::Ellipsis)?;
            self.expect(&Tok::Comma)?;
            let to = self.expr()?;
            self.expect(&Tok::RBrace)?;
            let body = self.block()?;
            return Ok(Stmt::ForEach {
                var,
                from,
                to,
                body,
            });
        }
        let count = self.expr()?;
        self.expect_word("REPETITIONS")?;
        let body = self.block()?;
        Ok(Stmt::For { count, body })
    }

    fn if_stmt(&mut self) -> Result<Stmt, String> {
        self.expect_word("IF")?;
        let cond = self.cond()?;
        self.expect_word("THEN")?;
        let then_ = self.block()?;
        let else_ = if self.eat_word("OTHERWISE") {
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_, else_ })
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Tok::Word(w)) if !is_keyword(&w) => Ok(w),
            got => Err(format!("expected identifier, got {got:?}")),
        }
    }

    // -- task sets -----------------------------------------------------------

    fn task_set(&mut self) -> Result<TaskSet, String> {
        if self.eat_word("ALL") {
            self.expect_word("TASKS")?;
            let var = match self.peek() {
                Some(Tok::Word(w)) if !is_keyword(w) => {
                    let v = w.clone();
                    self.pos += 1;
                    Some(v)
                }
                _ => None,
            };
            return Ok(TaskSet {
                var,
                sel: TaskSel::All,
            });
        }
        if self.eat_word("GROUP") {
            let name = self.ident()?;
            return Ok(TaskSet {
                var: None,
                sel: TaskSel::Group(name),
            });
        }
        if self.eat_word("TASKS") {
            let var = self.ident()?;
            self.expect_word("SUCH")?;
            self.expect_word("THAT")?;
            self.expect_word(&var.clone())?;
            self.expect_word("IS")?;
            self.expect_word("IN")?;
            let runs = self.runs()?;
            return Ok(TaskSet {
                var: Some(var),
                sel: TaskSel::Runs(runs),
            });
        }
        if self.eat_word("TASK") {
            let e = self.expr()?;
            return Ok(TaskSet {
                var: None,
                sel: TaskSel::Single(e),
            });
        }
        Err(format!("expected a task set, got {:?}", self.peek()))
    }

    fn runs(&mut self) -> Result<Vec<TaskRun>, String> {
        self.expect(&Tok::LBrace)?;
        let mut runs = Vec::new();
        loop {
            let start = match self.next() {
                Some(Tok::Num(n)) if n >= 0 => n as usize,
                got => return Err(format!("expected run start, got {got:?}")),
            };
            let mut run = TaskRun {
                start,
                stride: 1,
                count: 1,
            };
            if matches!(self.peek(), Some(Tok::Minus)) {
                self.next();
                let end = match self.next() {
                    Some(Tok::Num(n)) if n >= 0 => n as usize,
                    got => return Err(format!("expected run end, got {got:?}")),
                };
                let stride = if matches!(self.peek(), Some(Tok::Colon)) {
                    self.next();
                    match self.next() {
                        Some(Tok::Num(n)) if n > 0 => n as usize,
                        got => return Err(format!("expected stride, got {got:?}")),
                    }
                } else {
                    1
                };
                if end < start {
                    return Err(format!("run end {end} before start {start}"));
                }
                run.stride = stride;
                run.count = (end - start) / stride + 1;
            }
            runs.push(run);
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RBrace) => break,
                got => return Err(format!("expected , or }} in run set, got {got:?}")),
            }
        }
        Ok(runs)
    }

    // -- expressions ----------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, String> {
        self.additive()
    }

    fn additive(&mut self) -> Result<Expr, String> {
        let mut lhs = self.multiplicative()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.next();
                    lhs = Expr::add(lhs, self.multiplicative()?);
                }
                Some(Tok::Minus) => {
                    self.next();
                    lhs = Expr::sub(lhs, self.multiplicative()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, String> {
        let mut lhs = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.next();
                    lhs = Expr::mul(lhs, self.primary()?);
                }
                Some(Tok::Slash) => {
                    self.next();
                    lhs = Expr::div(lhs, self.primary()?);
                }
                Some(Tok::Word(w)) if w == "MOD" => {
                    self.next();
                    lhs = Expr::modulo(lhs, self.primary()?);
                }
                Some(Tok::Word(w)) if w == "XOR" => {
                    self.next();
                    lhs = Expr::xor(lhs, self.primary()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, String> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Minus) => Ok(Expr::sub(Expr::num(0), self.primary()?)),
            Some(Tok::Word(w)) if w == "NUM_TASKS" => Ok(Expr::NumTasks),
            Some(Tok::Word(w)) if !is_keyword(&w) => Ok(Expr::Var(w)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            got => Err(format!("expected expression, got {got:?}")),
        }
    }

    // -- conditions -----------------------------------------------------------

    fn cond(&mut self) -> Result<Cond, String> {
        let mut lhs = self.cond_and()?;
        while self.eat_word("OR") {
            lhs = Cond::Or(Box::new(lhs), Box::new(self.cond_and()?));
        }
        Ok(lhs)
    }

    fn cond_and(&mut self) -> Result<Cond, String> {
        let mut lhs = self.cond_not()?;
        while self.eat_word("AND") {
            lhs = Cond::And(Box::new(lhs), Box::new(self.cond_not()?));
        }
        Ok(lhs)
    }

    fn cond_not(&mut self) -> Result<Cond, String> {
        if self.eat_word("NOT") {
            return Ok(Cond::Not(Box::new(self.cond_not()?)));
        }
        self.cond_primary()
    }

    fn cond_primary(&mut self) -> Result<Cond, String> {
        // Try a parenthesised condition with backtracking.
        if matches!(self.peek(), Some(Tok::LParen)) {
            let save = self.pos;
            self.next();
            if let Ok(c) = self.cond() {
                if matches!(self.peek(), Some(Tok::RParen)) {
                    self.next();
                    return Ok(c);
                }
            }
            self.pos = save; // fall back to expression comparison
        }
        let lhs = self.expr()?;
        if self.eat_word("DIVIDES") {
            let rhs = self.expr()?;
            return Ok(Cond::Divides(lhs, rhs));
        }
        let op = match self.next() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            got => return Err(format!("expected comparison operator, got {got:?}")),
        };
        let rhs = self.expr()?;
        Ok(Cond::Cmp(lhs, op, rhs))
    }
}

/// Parse a program from text.
pub fn parse(src: &str) -> Result<Program, String> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print;

    fn round_trip(p: &Program) {
        let text = print(p);
        let back = parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(&back, p, "round trip mismatch for:\n{text}");
    }

    #[test]
    fn round_trip_paper_example() {
        let p = Program::new(vec![Stmt::For {
            count: Expr::num(1000),
            body: vec![
                Stmt::ResetCounters,
                Stmt::Send {
                    src: TaskSet::all_bound("t"),
                    dst: Expr::add(Expr::var("t"), Expr::num(1)),
                    bytes: Expr::num(1024),
                    tag: 0,
                    is_async: true,
                },
                Stmt::Await {
                    tasks: TaskSet::all(),
                },
                Stmt::Log {
                    label: "Time (us)".into(),
                },
            ],
        }]);
        round_trip(&p);
    }

    #[test]
    fn round_trip_all_statement_kinds() {
        let p = Program {
            header: vec!["generated".into(), "two lines".into()],
            stmts: vec![
                Stmt::DeclareGroup {
                    name: "row0".into(),
                    tasks: TaskSet::runs(
                        vec![TaskRun {
                            start: 0,
                            stride: 1,
                            count: 4,
                        }],
                        Some("t"),
                    ),
                },
                Stmt::Compute {
                    tasks: TaskSet::all(),
                    amount: Expr::num(12345),
                    unit: TimeUnit::Nanoseconds,
                },
                Stmt::Send {
                    src: TaskSet::all_bound("t"),
                    dst: Expr::modulo(Expr::add(Expr::var("t"), Expr::num(1)), Expr::NumTasks),
                    bytes: Expr::num(2048),
                    tag: 7,
                    is_async: true,
                },
                Stmt::Receive {
                    dst: TaskSet::all_bound("t"),
                    src: Some(Expr::sub(Expr::var("t"), Expr::num(1))),
                    bytes: Expr::num(2048),
                    tag: 7,
                    is_async: true,
                },
                Stmt::Receive {
                    dst: TaskSet::single(Expr::num(0)),
                    src: None,
                    bytes: Expr::num(64),
                    tag: 0,
                    is_async: false,
                },
                Stmt::Await {
                    tasks: TaskSet::all(),
                },
                Stmt::Sync {
                    tasks: TaskSet::group("row0"),
                },
                Stmt::Multicast {
                    root: Some(Expr::num(2)),
                    tasks: TaskSet::all(),
                    bytes: Expr::num(4096),
                },
                Stmt::Multicast {
                    root: None,
                    tasks: TaskSet::group("row0"),
                    bytes: Expr::num(512),
                },
                Stmt::Reduce {
                    tasks: TaskSet::all(),
                    to: ReduceTo::All,
                    bytes: Expr::num(8),
                },
                Stmt::Reduce {
                    tasks: TaskSet::group("row0"),
                    to: ReduceTo::Task(Expr::num(0)),
                    bytes: Expr::num(8),
                },
                Stmt::If {
                    cond: Cond::And(
                        Box::new(Cond::Cmp(Expr::var("t"), CmpOp::Lt, Expr::num(4))),
                        Box::new(Cond::Not(Box::new(Cond::Divides(
                            Expr::num(3),
                            Expr::var("t"),
                        )))),
                    ),
                    then_: vec![Stmt::Sync {
                        tasks: TaskSet::all(),
                    }],
                    else_: vec![Stmt::ResetCounters],
                },
                Stmt::ForEach {
                    var: "i".into(),
                    from: Expr::num(0),
                    to: Expr::num(9),
                    body: vec![Stmt::Compute {
                        tasks: TaskSet::single(Expr::var("i")),
                        amount: Expr::num(5),
                        unit: TimeUnit::Microseconds,
                    }],
                },
                Stmt::Comment("trailing note".into()),
            ],
        };
        round_trip(&p);
    }

    #[test]
    fn round_trip_nested_loops() {
        let p = Program::new(vec![Stmt::For {
            count: Expr::num(5),
            body: vec![Stmt::For {
                count: Expr::num(10),
                body: vec![Stmt::Sync {
                    tasks: TaskSet::all(),
                }],
            }],
        }]);
        round_trip(&p);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("FOR 10 REPETITIONS {").is_err());
        assert!(parse("ALL TASKS FROB").is_err());
        assert!(parse("TASK 0 SENDS A BYTE MESSAGE TO TASK 1").is_err());
        assert!(parse("GROUP g IS").is_err());
        assert!(parse("\"dangling").is_err());
    }

    #[test]
    fn strided_set_round_trip() {
        let p = Program::new(vec![Stmt::Reduce {
            tasks: TaskSet::runs(
                vec![
                    TaskRun {
                        start: 0,
                        stride: 3,
                        count: 4,
                    },
                    TaskRun {
                        start: 20,
                        stride: 1,
                        count: 1,
                    },
                ],
                Some("xyz"),
            ),
            to: ReduceTo::Task(Expr::num(0)),
            bytes: Expr::num(8),
        }]);
        round_trip(&p);
    }

    #[test]
    fn round_trip_partition() {
        let p = Program::new(vec![
            Stmt::Partition {
                parent: None,
                groups: vec![
                    (
                        "row0".into(),
                        vec![TaskRun {
                            start: 0,
                            stride: 1,
                            count: 4,
                        }],
                    ),
                    (
                        "row1".into(),
                        vec![TaskRun {
                            start: 4,
                            stride: 1,
                            count: 4,
                        }],
                    ),
                ],
            },
            Stmt::Partition {
                parent: Some("row0".into()),
                groups: vec![
                    (
                        "evens".into(),
                        vec![TaskRun {
                            start: 0,
                            stride: 2,
                            count: 2,
                        }],
                    ),
                    (
                        "odds".into(),
                        vec![TaskRun {
                            start: 1,
                            stride: 2,
                            count: 2,
                        }],
                    ),
                ],
            },
        ]);
        round_trip(&p);
    }

    #[test]
    fn group_subject_vs_declaration() {
        let src = "GROUP g IS ALL TASKS\nGROUP g SYNCHRONIZE\n";
        let p = parse(src).unwrap();
        assert!(matches!(p.stmts[0], Stmt::DeclareGroup { .. }));
        assert!(matches!(p.stmts[1], Stmt::Sync { .. }));
    }

    #[test]
    fn negative_literal_via_unary_minus() {
        let p = parse("ALL TASKS COMPUTE FOR -5 NANOSECONDS").unwrap();
        let Stmt::Compute { amount, .. } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(*amount, Expr::sub(Expr::num(0), Expr::num(5)));
    }
}
