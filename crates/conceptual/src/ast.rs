//! Abstract syntax of the coNCePTuaL-style specification language.
//!
//! The subset implemented here is the subset the benchmark generator emits
//! plus the constructs the paper's examples use: counted and indexed loops,
//! task-set selectors with a bound task variable, point-to-point SEND /
//! RECEIVE (blocking or ASYNCHRONOUSLY) with AWAIT COMPLETION, SYNCHRONIZE,
//! MULTICAST and REDUCE collectives, COMPUTE delays, IF/OTHERWISE, GROUP
//! declarations (the absolute-rank image of MPI communicators), counter
//! reset and logging. Programs are plain data: the printer renders them as
//! readable English-like text, the parser round-trips that text, and the
//! interpreter executes them against `mpisim` (standing in for the
//! coNCePTuaL compiler's C+MPI backend).

use std::fmt;

/// Integer expressions over the bound task variable, loop variables, and
/// `NUM_TASKS`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// A variable: the task binder (`t`) or a `FOR EACH` loop variable.
    Var(String),
    /// The number of tasks in the job (`NUM_TASKS`).
    NumTasks,
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Truncating division.
    Div(Box<Expr>, Box<Expr>),
    /// Euclidean modulo (`MOD`).
    Mod(Box<Expr>, Box<Expr>),
    /// Bitwise XOR — hypercube/butterfly peers (`t XOR 4`).
    Xor(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // AST constructors, not arithmetic
impl Expr {
    /// Integer literal.
    pub fn num(v: i64) -> Expr {
        Expr::Num(v)
    }

    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b` (truncating).
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// `a MOD b` (Euclidean).
    pub fn modulo(a: Expr, b: Expr) -> Expr {
        Expr::Mod(Box::new(a), Box::new(b))
    }

    /// `a XOR b` (bitwise).
    pub fn xor(a: Expr, b: Expr) -> Expr {
        Expr::Xor(Box::new(a), Box::new(b))
    }

    /// Is this a literal (no variables)?
    pub fn is_const(&self) -> bool {
        match self {
            Expr::Num(_) => true,
            Expr::Var(_) | Expr::NumTasks => false,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Xor(a, b) => a.is_const() && b.is_const(),
        }
    }
}

/// Comparison operators in conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Boolean conditions for `IF`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// A comparison between two expressions.
    Cmp(Expr, CmpOp, Expr),
    /// `<a> DIVIDES <b>` — the paper's §4.1 example predicate.
    Divides(Expr, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

/// One arithmetic run of task ids (mirrors a `RankSet` run).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskRun {
    /// First task id.
    pub start: usize,
    /// Distance between consecutive ids.
    pub stride: usize,
    /// Number of tasks in the run.
    pub count: usize,
}

impl TaskRun {
    /// Largest task id in the run.
    pub fn last(&self) -> usize {
        self.start + self.stride * (self.count - 1)
    }

    /// Is task `t` in the run?
    pub fn contains(&self, t: usize) -> bool {
        t >= self.start
            && t <= self.last()
            && (self.stride == 0 || (t - self.start).is_multiple_of(self.stride))
    }
}

/// Which tasks execute a statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TaskSel {
    /// `ALL TASKS`
    All,
    /// `TASK <expr>` — a single task.
    Single(Expr),
    /// `TASKS t SUCH THAT t IS IN {…}` — an explicit (strided) set.
    Runs(Vec<TaskRun>),
    /// `GROUP <name>` — a previously declared group.
    Group(String),
}

/// A task set with an optionally bound task variable (`ALL TASKS t …`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskSet {
    /// The bound task variable, if any (`ALL TASKS t …`).
    pub var: Option<String>,
    /// Which tasks the set selects.
    pub sel: TaskSel,
}

impl TaskSet {
    /// `ALL TASKS` without a binder.
    pub fn all() -> TaskSet {
        TaskSet {
            var: None,
            sel: TaskSel::All,
        }
    }

    /// `ALL TASKS <var>` with a bound task variable.
    pub fn all_bound(var: &str) -> TaskSet {
        TaskSet {
            var: Some(var.to_string()),
            sel: TaskSel::All,
        }
    }

    /// `TASK <expr>`.
    pub fn single(e: Expr) -> TaskSet {
        TaskSet {
            var: None,
            sel: TaskSel::Single(e),
        }
    }

    /// `TASKS v SUCH THAT v IS IN {…}`.
    pub fn runs(runs: Vec<TaskRun>, var: Option<&str>) -> TaskSet {
        TaskSet {
            var: var.map(str::to_string),
            sel: TaskSel::Runs(runs),
        }
    }

    /// `GROUP <name>`.
    pub fn group(name: &str) -> TaskSet {
        TaskSet {
            var: None,
            sel: TaskSel::Group(name.to_string()),
        }
    }
}

/// Time units for `COMPUTE FOR`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimeUnit {
    /// `NANOSECONDS`
    Nanoseconds,
    /// `MICROSECONDS`
    Microseconds,
    /// `MILLISECONDS`
    Milliseconds,
    /// `SECONDS`
    Seconds,
}

impl TimeUnit {
    /// `amount` of this unit, in nanoseconds (negatives clamp to zero).
    pub fn nanos(self, amount: i64) -> u64 {
        let amount = amount.max(0) as u64;
        match self {
            TimeUnit::Nanoseconds => amount,
            TimeUnit::Microseconds => amount * 1_000,
            TimeUnit::Milliseconds => amount * 1_000_000,
            TimeUnit::Seconds => amount * 1_000_000_000,
        }
    }

    /// The printed keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            TimeUnit::Nanoseconds => "NANOSECONDS",
            TimeUnit::Microseconds => "MICROSECONDS",
            TimeUnit::Milliseconds => "MILLISECONDS",
            TimeUnit::Seconds => "SECONDS",
        }
    }
}

/// Target of a REDUCE.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReduceTo {
    /// `TO TASK <expr>` → `MPI_Reduce`
    Task(Expr),
    /// `TO ALL TASKS` → `MPI_Allreduce`
    All,
}

/// Statements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `GROUP <name> IS <tasks>` — names a static task set (a pure alias;
    /// no communication).
    DeclareGroup {
        /// The group's name.
        name: String,
        /// The tasks it aliases.
        tasks: TaskSet,
    },
    /// `PARTITION ALL TASKS INTO GROUP a = {…}, GROUP b = {…}` (or
    /// `PARTITION GROUP <parent> INTO …`) — the image of one
    /// `MPI_Comm_split` in the original application: every parent task joins
    /// exactly one group, and each group gets a dedicated communicator for
    /// subsequent collectives. Task ids are absolute.
    Partition {
        /// `None` = all tasks.
        parent: Option<String>,
        /// `(group name, members)` pairs; members are absolute task ids.
        groups: Vec<(String, Vec<TaskRun>)>,
    },
    /// `FOR <count> REPETITIONS { … }`
    For {
        /// Iteration count.
        count: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `FOR EACH <var> IN {<from>, …, <to>} { … }`
    ForEach {
        /// The loop variable.
        var: String,
        /// First value (inclusive).
        from: Expr,
        /// Last value (inclusive).
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `IF <cond> THEN { … } OTHERWISE { … }` — evaluated per task.
    If {
        /// The condition, evaluated per task (with `t` bound).
        cond: Cond,
        /// Statements when true.
        then_: Vec<Stmt>,
        /// Statements when false (`OTHERWISE`).
        else_: Vec<Stmt>,
    },
    /// `<tasks> COMPUTE FOR <amount> <unit>`
    Compute {
        /// The computing tasks.
        tasks: TaskSet,
        /// How long, in `unit`s.
        amount: Expr,
        /// Time unit of `amount`.
        unit: TimeUnit,
    },
    /// `<tasks> [ASYNCHRONOUSLY] SEND A <bytes> BYTE MESSAGE [WITH TAG <tag>]
    /// TO TASK <dst>`
    Send {
        /// The sending tasks (binder available in `dst`/`bytes`).
        src: TaskSet,
        /// Destination task id.
        dst: Expr,
        /// Message size.
        bytes: Expr,
        /// Message tag (0 is omitted when printing).
        tag: i32,
        /// `ASYNCHRONOUSLY` → `MPI_Isend`.
        is_async: bool,
    },
    /// `<tasks> [ASYNCHRONOUSLY] RECEIVE A <bytes> BYTE MESSAGE [WITH TAG
    /// <tag>] FROM TASK <src> | FROM ANY TASK`
    Receive {
        /// The receiving tasks.
        dst: TaskSet,
        /// `None` = `FROM ANY TASK` (`MPI_ANY_SOURCE`).
        src: Option<Expr>,
        /// Expected message size.
        bytes: Expr,
        /// Message tag.
        tag: i32,
        /// `ASYNCHRONOUSLY` → `MPI_Irecv`.
        is_async: bool,
    },
    /// `<tasks> AWAIT COMPLETION` — completes all outstanding asynchronous
    /// operations of the executing tasks.
    Await {
        /// The tasks completing their outstanding operations.
        tasks: TaskSet,
    },
    /// `<tasks> SYNCHRONIZE` → `MPI_Barrier`
    Sync {
        /// The synchronising tasks.
        tasks: TaskSet,
    },
    /// `TASK <root> MULTICASTS …` or `<tasks> MULTICAST …` (all-sources) —
    /// one-to-many → `MPI_Bcast`; all-to-all → `MPI_Alltoall`.
    Multicast {
        /// `None` = every participant is a source (many-to-many).
        root: Option<Expr>,
        /// The destination task set.
        tasks: TaskSet,
        /// Message size (per-task total for many-to-many).
        bytes: Expr,
    },
    /// `<tasks> REDUCE A <bytes> BYTE MESSAGE TO <target>`
    Reduce {
        /// The participating tasks.
        tasks: TaskSet,
        /// Where the result goes.
        to: ReduceTo,
        /// Per-task contribution size.
        bytes: Expr,
    },
    /// `ALL TASKS RESET THEIR COUNTERS`
    ResetCounters,
    /// `ALL TASKS LOG "<label>"` — records elapsed virtual time since the
    /// last counter reset.
    Log {
        /// The metric label.
        label: String,
    },
    /// `# <text>` — retained comment.
    Comment(String),
}

/// A complete program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Leading `#` comment block (provenance, generator metadata).
    pub header: Vec<String>,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// A program with the given statements and no header.
    pub fn new(stmts: Vec<Stmt>) -> Program {
        Program {
            header: Vec::new(),
            stmts,
        }
    }

    /// Total statement count, descending into blocks (a readability /
    /// scalability metric: the paper's generated-code size).
    pub fn stmt_count(&self) -> usize {
        fn walk(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::For { body, .. } | Stmt::ForEach { body, .. } => 1 + walk(body),
                    Stmt::If { then_, else_, .. } => 1 + walk(then_) + walk(else_),
                    _ => 1,
                })
                .sum()
        }
        walk(&self.stmts)
    }

    /// Non-comment statement count (the "code" part of readability metrics).
    pub fn code_stmt_count(&self) -> usize {
        fn walk(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Comment(_) => 0,
                    Stmt::For { body, .. } | Stmt::ForEach { body, .. } => 1 + walk(body),
                    Stmt::If { then_, else_, .. } => 1 + walk(then_) + walk(else_),
                    _ => 1,
                })
                .sum()
        }
        walk(&self.stmts)
    }

    /// Does the program contain explicit RECEIVE statements? If so, SEND
    /// statements do *not* auto-post matching receives (the generator always
    /// emits explicit receives for precise posting-order control; see the
    /// paper's §3.2 remark).
    pub fn has_explicit_receives(&self) -> bool {
        fn walk(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Receive { .. } => true,
                Stmt::For { body, .. } | Stmt::ForEach { body, .. } => walk(body),
                Stmt::If { then_, else_, .. } => walk(then_) || walk(else_),
                _ => false,
            })
        }
        walk(&self.stmts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_constness() {
        assert!(Expr::num(5).is_const());
        assert!(Expr::add(Expr::num(1), Expr::num(2)).is_const());
        assert!(!Expr::var("t").is_const());
        assert!(!Expr::add(Expr::num(1), Expr::NumTasks).is_const());
    }

    #[test]
    fn task_run_membership() {
        let r = TaskRun {
            start: 2,
            stride: 3,
            count: 4,
        }; // 2,5,8,11
        assert!(r.contains(2) && r.contains(11));
        assert!(!r.contains(3) && !r.contains(14));
        assert_eq!(r.last(), 11);
    }

    #[test]
    fn stmt_count_descends() {
        let p = Program::new(vec![Stmt::For {
            count: Expr::num(10),
            body: vec![
                Stmt::Sync {
                    tasks: TaskSet::all(),
                },
                Stmt::If {
                    cond: Cond::Cmp(Expr::var("t"), CmpOp::Lt, Expr::num(2)),
                    then_: vec![Stmt::ResetCounters],
                    else_: vec![],
                },
            ],
        }]);
        assert_eq!(p.stmt_count(), 4);
    }

    #[test]
    fn explicit_receive_detection() {
        let send_only = Program::new(vec![Stmt::Send {
            src: TaskSet::all_bound("t"),
            dst: Expr::add(Expr::var("t"), Expr::num(1)),
            bytes: Expr::num(1024),
            tag: 0,
            is_async: false,
        }]);
        assert!(!send_only.has_explicit_receives());
        let with_recv = Program::new(vec![Stmt::For {
            count: Expr::num(2),
            body: vec![Stmt::Receive {
                dst: TaskSet::all(),
                src: None,
                bytes: Expr::num(8),
                tag: 0,
                is_async: false,
            }],
        }]);
        assert!(with_recv.has_explicit_receives());
    }

    #[test]
    fn time_units() {
        assert_eq!(TimeUnit::Nanoseconds.nanos(5), 5);
        assert_eq!(TimeUnit::Microseconds.nanos(5), 5_000);
        assert_eq!(TimeUnit::Milliseconds.nanos(5), 5_000_000);
        assert_eq!(TimeUnit::Seconds.nanos(5), 5_000_000_000);
        assert_eq!(TimeUnit::Seconds.nanos(-1), 0);
    }
}
