//! Programmatic program edits — the API face of the paper's "easy to
//! modify" claim (§5.4: "we then modified the coNCePTuaL code to vary the
//! time spent in all computation phases").
//!
//! These transforms operate on literal amounts (which is all the benchmark
//! generator emits); symbolic expressions are left untouched.

use crate::ast::{Expr, Program, Stmt};

fn walk_stmts(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::For { body, .. } | Stmt::ForEach { body, .. } => walk_stmts(body, f),
            Stmt::If { then_, else_, .. } => {
                walk_stmts(then_, f);
                walk_stmts(else_, f);
            }
            _ => {}
        }
    }
}

fn scale_literal(e: &mut Expr, factor: f64) {
    if let Expr::Num(v) = e {
        *e = Expr::Num(((*v as f64) * factor).round().max(0.0) as i64);
    }
}

/// Scale every `COMPUTE FOR` amount by `factor` (the paper's Figure 7
/// experiment; 0.0 models infinitely fast processors).
pub fn scale_compute(program: &Program, factor: f64) -> Program {
    let mut p = program.clone();
    walk_stmts(&mut p.stmts, &mut |s| {
        if let Stmt::Compute { amount, .. } = s {
            scale_literal(amount, factor);
        }
    });
    p
}

/// Scale only the `COMPUTE FOR` statements whose literal duration lies in
/// `[min_ns, max_ns]` — the paper's §5.4 refinement: "our BT experiment can
/// easily be refined to utilize different speedup factors for different
/// computational phases". Phases are distinguishable by magnitude (solver
/// blocks vs. bookkeeping).
pub fn scale_compute_in_band(program: &Program, min_ns: i64, max_ns: i64, factor: f64) -> Program {
    let mut p = program.clone();
    walk_stmts(&mut p.stmts, &mut |s| {
        if let Stmt::Compute { amount, .. } = s {
            if let Expr::Num(v) = amount {
                if (min_ns..=max_ns).contains(v) {
                    scale_literal(amount, factor);
                }
            }
        }
    });
    p
}

/// Scale every message/collective size by `factor` — what-if analysis for
/// precision changes (e.g. double → single: 0.5) or decomposition changes.
pub fn scale_message_sizes(program: &Program, factor: f64) -> Program {
    let mut p = program.clone();
    walk_stmts(&mut p.stmts, &mut |s| match s {
        Stmt::Send { bytes, .. }
        | Stmt::Receive { bytes, .. }
        | Stmt::Multicast { bytes, .. }
        | Stmt::Reduce { bytes, .. } => scale_literal(bytes, factor),
        _ => {}
    });
    p
}

/// Scale every literal `FOR n REPETITIONS` count (shorten or lengthen the
/// run without touching per-iteration structure).
pub fn scale_repetitions(program: &Program, factor: f64) -> Program {
    let mut p = program.clone();
    walk_stmts(&mut p.stmts, &mut |s| {
        if let Stmt::For { count, .. } = s {
            scale_literal(count, factor);
        }
    });
    p
}

/// Statement-count census used by what-if tooling and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Census {
    /// COMPUTE statements.
    pub computes: u64,
    /// SEND statements.
    pub sends: u64,
    /// RECEIVE statements.
    pub receives: u64,
    /// SYNCHRONIZE/MULTICAST/REDUCE statements.
    pub collectives: u64,
    /// FOR / FOR EACH loops.
    pub loops: u64,
}

/// Count the communication-relevant statements of a program.
pub fn census(program: &Program) -> Census {
    let mut c = Census::default();
    let mut p = program.clone();
    walk_stmts(&mut p.stmts, &mut |s| match s {
        Stmt::Compute { .. } => c.computes += 1,
        Stmt::Send { .. } => c.sends += 1,
        Stmt::Receive { .. } => c.receives += 1,
        Stmt::Sync { .. } | Stmt::Multicast { .. } | Stmt::Reduce { .. } => c.collectives += 1,
        Stmt::For { .. } | Stmt::ForEach { .. } => c.loops += 1,
        _ => {}
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{TaskSet, TimeUnit};

    fn sample() -> Program {
        Program::new(vec![Stmt::For {
            count: Expr::num(100),
            body: vec![
                Stmt::Compute {
                    tasks: TaskSet::all(),
                    amount: Expr::num(1000),
                    unit: TimeUnit::Nanoseconds,
                },
                Stmt::Send {
                    src: TaskSet::all_bound("t"),
                    dst: Expr::add(Expr::var("t"), Expr::num(1)),
                    bytes: Expr::num(4096),
                    tag: 0,
                    is_async: true,
                },
                Stmt::Await {
                    tasks: TaskSet::all(),
                },
            ],
        }])
    }

    #[test]
    fn compute_scaling_scales_only_compute() {
        let p = scale_compute(&sample(), 0.25);
        let Stmt::For { body, count } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(*count, Expr::num(100), "loop counts untouched");
        let Stmt::Compute { amount, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(*amount, Expr::num(250));
        let Stmt::Send { bytes, .. } = &body[1] else {
            panic!()
        };
        assert_eq!(*bytes, Expr::num(4096), "message sizes untouched");
    }

    #[test]
    fn band_scaling_hits_only_the_band() {
        let mut prog = sample();
        prog.stmts.push(Stmt::Compute {
            tasks: TaskSet::all(),
            amount: Expr::num(50),
            unit: TimeUnit::Nanoseconds,
        });
        // scale only the big phase (1000ns), leave the 50ns bookkeeping
        let p = scale_compute_in_band(&prog, 500, 2000, 0.1);
        let Stmt::For { body, .. } = &p.stmts[0] else {
            panic!()
        };
        let Stmt::Compute { amount, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(*amount, Expr::num(100));
        let Stmt::Compute { amount, .. } = &p.stmts[1] else {
            panic!()
        };
        assert_eq!(*amount, Expr::num(50));
    }

    #[test]
    fn zero_scaling_floors_at_zero() {
        let p = scale_compute(&sample(), 0.0);
        let Stmt::For { body, .. } = &p.stmts[0] else {
            panic!()
        };
        let Stmt::Compute { amount, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(*amount, Expr::num(0));
    }

    #[test]
    fn message_scaling_scales_only_bytes() {
        let p = scale_message_sizes(&sample(), 2.0);
        let Stmt::For { body, .. } = &p.stmts[0] else {
            panic!()
        };
        let Stmt::Send { bytes, .. } = &body[1] else {
            panic!()
        };
        assert_eq!(*bytes, Expr::num(8192));
        let Stmt::Compute { amount, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(*amount, Expr::num(1000));
    }

    #[test]
    fn repetition_scaling() {
        let p = scale_repetitions(&sample(), 0.1);
        let Stmt::For { count, .. } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(*count, Expr::num(10));
    }

    #[test]
    fn symbolic_expressions_are_preserved() {
        let mut prog = sample();
        prog.stmts.push(Stmt::Compute {
            tasks: TaskSet::all(),
            amount: Expr::mul(Expr::var("t"), Expr::num(5)),
            unit: TimeUnit::Nanoseconds,
        });
        let p = scale_compute(&prog, 0.5);
        let Stmt::Compute { amount, .. } = &p.stmts[1] else {
            panic!()
        };
        assert_eq!(*amount, Expr::mul(Expr::var("t"), Expr::num(5)));
    }

    #[test]
    fn census_counts() {
        let c = census(&sample());
        assert_eq!(
            c,
            Census {
                computes: 1,
                sends: 1,
                receives: 0,
                collectives: 0,
                loops: 1
            }
        );
    }
}
