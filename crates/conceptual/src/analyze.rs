//! Static validation of programs before execution: group declarations,
//! partition coverage, variable scoping, and collective-subject rules.

use crate::ast::*;
use std::collections::{BTreeMap, BTreeSet};

/// Validate `program` for a world of `n` tasks; returns all diagnostics
/// (empty = valid).
pub fn validate(program: &Program, n: usize) -> Vec<String> {
    let mut v = Validator {
        n,
        groups: BTreeMap::new(),
        errors: Vec::new(),
    };
    let mut vars = BTreeSet::new();
    // `t` is predefined as the executing task id (shadowable by binders).
    vars.insert("t".to_string());
    v.block(&program.stmts, &vars);
    v.errors
}

struct Validator {
    n: usize,
    /// Known group name → members (absolute task ids).
    groups: BTreeMap<String, Vec<usize>>,
    errors: Vec<String>,
}

impl Validator {
    fn block(&mut self, stmts: &[Stmt], vars: &BTreeSet<String>) {
        for s in stmts {
            self.stmt(s, vars);
        }
    }

    fn stmt(&mut self, s: &Stmt, vars: &BTreeSet<String>) {
        match s {
            Stmt::Comment(_) | Stmt::ResetCounters | Stmt::Log { .. } => {}
            Stmt::DeclareGroup { name, tasks } => {
                let members = self.static_members(tasks, &format!("GROUP {name}"));
                self.task_set(tasks, vars);
                self.groups.insert(name.clone(), members);
            }
            Stmt::Partition { parent, groups } => {
                let parent_members: Vec<usize> = match parent {
                    None => (0..self.n).collect(),
                    Some(g) => match self.groups.get(g) {
                        Some(m) => m.clone(),
                        None => {
                            self.errors
                                .push(format!("PARTITION references undeclared group {g}"));
                            return;
                        }
                    },
                };
                let mut seen: BTreeSet<usize> = BTreeSet::new();
                for (name, runs) in groups {
                    let members = expand_runs(runs);
                    for &m in &members {
                        if !parent_members.contains(&m) {
                            self.errors
                                .push(format!("group {name}: task {m} is not in the parent set"));
                        }
                        if !seen.insert(m) {
                            self.errors
                                .push(format!("group {name}: task {m} appears in two groups"));
                        }
                    }
                    self.groups.insert(name.clone(), members);
                }
                // Note: a PARTITION need not cover its whole parent —
                // sibling PARTITION statements may realise the remaining
                // groups of the same original MPI_Comm_split (the benchmark
                // generator emits one statement per adjacency run of split
                // RSDs in the trace).
                let _ = seen;
            }
            Stmt::For { count, body } => {
                self.expr(count, vars);
                self.block(body, vars);
            }
            Stmt::ForEach {
                var,
                from,
                to,
                body,
            } => {
                self.expr(from, vars);
                self.expr(to, vars);
                let mut inner = vars.clone();
                inner.insert(var.clone());
                self.block(body, &inner);
            }
            Stmt::If { cond, then_, else_ } => {
                self.cond(cond, vars);
                self.block(then_, vars);
                self.block(else_, vars);
            }
            Stmt::Compute { tasks, amount, .. } => {
                let inner = self.task_set(tasks, vars);
                self.expr(amount, &inner);
            }
            Stmt::Send {
                src, dst, bytes, ..
            } => {
                let inner = self.task_set(src, vars);
                self.expr(dst, &inner);
                self.expr(bytes, &inner);
            }
            Stmt::Receive {
                dst, src, bytes, ..
            } => {
                let inner = self.task_set(dst, vars);
                if let Some(src) = src {
                    self.expr(src, &inner);
                }
                self.expr(bytes, &inner);
            }
            Stmt::Await { tasks } => {
                self.task_set(tasks, vars);
            }
            Stmt::Sync { tasks } => {
                self.collective_subject(tasks, vars, "SYNCHRONIZE");
            }
            Stmt::Multicast { root, tasks, bytes } => {
                let inner = self.collective_subject(tasks, vars, "MULTICAST");
                if let Some(root) = root {
                    self.expr(root, &inner);
                }
                self.expr(bytes, &inner);
            }
            Stmt::Reduce { tasks, to, bytes } => {
                let inner = self.collective_subject(tasks, vars, "REDUCE");
                if let ReduceTo::Task(e) = to {
                    self.expr(e, &inner);
                }
                self.expr(bytes, &inner);
            }
        }
    }

    /// Check a task set and return the variable scope inside it (binder
    /// added).
    fn task_set(&mut self, ts: &TaskSet, vars: &BTreeSet<String>) -> BTreeSet<String> {
        let mut inner = vars.clone();
        if let Some(v) = &ts.var {
            inner.insert(v.clone());
        }
        match &ts.sel {
            TaskSel::All => {}
            TaskSel::Single(e) => self.expr(e, vars),
            TaskSel::Runs(runs) => {
                for r in runs {
                    if r.count > 0 && r.last() >= self.n {
                        self.errors.push(format!(
                            "task set references task {} but NUM_TASKS is {}",
                            r.last(),
                            self.n
                        ));
                    }
                }
            }
            TaskSel::Group(g) => {
                if !self.groups.contains_key(g) {
                    self.errors.push(format!("undeclared group {g}"));
                }
            }
        }
        inner
    }

    /// Collectives need a statically resolvable participant set.
    fn collective_subject(
        &mut self,
        ts: &TaskSet,
        vars: &BTreeSet<String>,
        what: &str,
    ) -> BTreeSet<String> {
        if let TaskSel::Single(_) = ts.sel {
            self.errors
                .push(format!("{what} requires a multi-task subject"));
        }
        self.task_set(ts, vars)
    }

    fn static_members(&mut self, ts: &TaskSet, what: &str) -> Vec<usize> {
        match &ts.sel {
            TaskSel::All => (0..self.n).collect(),
            TaskSel::Runs(runs) => expand_runs(runs),
            TaskSel::Group(g) => self.groups.get(g).cloned().unwrap_or_default(),
            TaskSel::Single(e) if e.is_const() => {
                vec![crate::interp::eval_const(e).max(0) as usize]
            }
            _ => {
                self.errors
                    .push(format!("{what} must be a static task set"));
                Vec::new()
            }
        }
    }

    fn expr(&mut self, e: &Expr, vars: &BTreeSet<String>) {
        match e {
            Expr::Num(_) | Expr::NumTasks => {}
            Expr::Var(v) => {
                if !vars.contains(v) {
                    self.errors.push(format!("unbound variable {v}"));
                }
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Xor(a, b) => {
                self.expr(a, vars);
                self.expr(b, vars);
            }
        }
    }

    fn cond(&mut self, c: &Cond, vars: &BTreeSet<String>) {
        match c {
            Cond::Cmp(a, _, b) | Cond::Divides(a, b) => {
                self.expr(a, vars);
                self.expr(b, vars);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                self.cond(a, vars);
                self.cond(b, vars);
            }
            Cond::Not(a) => self.cond(a, vars),
        }
    }
}

/// Expand run specs to a sorted member list.
pub fn expand_runs(runs: &[TaskRun]) -> Vec<usize> {
    let mut v: Vec<usize> = runs
        .iter()
        .flat_map(|r| (0..r.count).map(move |i| r.start + i * r.stride))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(v: &[(usize, usize, usize)]) -> Vec<TaskRun> {
        v.iter()
            .map(|&(start, stride, count)| TaskRun {
                start,
                stride,
                count,
            })
            .collect()
    }

    #[test]
    fn valid_program_passes() {
        let p = Program::new(vec![
            Stmt::Partition {
                parent: None,
                groups: vec![
                    ("a".into(), runs(&[(0, 1, 2)])),
                    ("b".into(), runs(&[(2, 1, 2)])),
                ],
            },
            Stmt::Sync {
                tasks: TaskSet::group("a"),
            },
            Stmt::ForEach {
                var: "i".into(),
                from: Expr::num(0),
                to: Expr::num(3),
                body: vec![Stmt::Compute {
                    tasks: TaskSet::all(),
                    amount: Expr::var("i"),
                    unit: TimeUnit::Microseconds,
                }],
            },
        ]);
        assert_eq!(validate(&p, 4), Vec::<String>::new());
    }

    #[test]
    fn undeclared_group_is_an_error() {
        let p = Program::new(vec![Stmt::Sync {
            tasks: TaskSet::group("nope"),
        }]);
        let errs = validate(&p, 4);
        assert!(errs.iter().any(|e| e.contains("undeclared group")));
    }

    #[test]
    fn partial_partitions_are_allowed() {
        // sibling partitions of one original split, emitted separately
        let p = Program::new(vec![
            Stmt::Partition {
                parent: None,
                groups: vec![("a".into(), runs(&[(0, 1, 2)]))],
            },
            Stmt::Partition {
                parent: None,
                groups: vec![("b".into(), runs(&[(2, 1, 2)]))],
            },
        ]);
        assert_eq!(validate(&p, 4), Vec::<String>::new());
    }

    #[test]
    fn partition_groups_must_be_disjoint() {
        let p = Program::new(vec![Stmt::Partition {
            parent: None,
            groups: vec![
                ("a".into(), runs(&[(0, 1, 3)])),
                ("b".into(), runs(&[(2, 1, 2)])),
            ],
        }]);
        let errs = validate(&p, 4);
        assert!(errs.iter().any(|e| e.contains("two groups")));
    }

    #[test]
    fn unbound_variable_detected() {
        let p = Program::new(vec![Stmt::Compute {
            tasks: TaskSet::all(),
            amount: Expr::var("k"),
            unit: TimeUnit::Microseconds,
        }]);
        let errs = validate(&p, 4);
        assert!(errs.iter().any(|e| e.contains("unbound variable k")));
    }

    #[test]
    fn predefined_t_is_in_scope() {
        let p = Program::new(vec![Stmt::If {
            cond: Cond::Cmp(Expr::var("t"), CmpOp::Lt, Expr::num(2)),
            then_: vec![Stmt::ResetCounters],
            else_: vec![],
        }]);
        assert!(validate(&p, 4).is_empty());
    }

    #[test]
    fn task_set_beyond_world_detected() {
        let p = Program::new(vec![Stmt::Sync {
            tasks: TaskSet::runs(runs(&[(0, 1, 9)]), Some("t")),
        }]);
        let errs = validate(&p, 4);
        assert!(errs.iter().any(|e| e.contains("NUM_TASKS")));
    }

    #[test]
    fn singular_collective_subject_rejected() {
        let p = Program::new(vec![Stmt::Reduce {
            tasks: TaskSet::single(Expr::num(0)),
            to: ReduceTo::All,
            bytes: Expr::num(8),
        }]);
        let errs = validate(&p, 4);
        assert!(errs.iter().any(|e| e.contains("multi-task")));
    }
}
