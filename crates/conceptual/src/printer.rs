//! Pretty-printer: renders a [`Program`] as readable, English-like
//! coNCePTuaL text. The output is the artifact the paper cares about —
//! "highly readable … almost exclusively communication specifications" —
//! and is exactly re-parseable by [`crate::parser`].

use crate::ast::*;
use std::fmt::Write as _;

/// Render a program to text.
pub fn print(p: &Program) -> String {
    let mut out = String::new();
    for line in &p.header {
        writeln!(out, "# {line}").unwrap();
    }
    if !p.header.is_empty() {
        out.push('\n');
    }
    for s in &p.stmts {
        print_stmt(&mut out, s, 0);
    }
    out
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_block(out: &mut String, body: &[Stmt], depth: usize) {
    for s in body {
        print_stmt(out, s, depth);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    pad(out, depth);
    match s {
        Stmt::Comment(text) => {
            writeln!(out, "# {text}").unwrap();
        }
        Stmt::DeclareGroup { name, tasks } => {
            writeln!(out, "GROUP {name} IS {}", task_set(tasks)).unwrap();
        }
        Stmt::Partition { parent, groups } => {
            let subject = match parent {
                Some(g) => format!("GROUP {g}"),
                None => "ALL TASKS".to_string(),
            };
            let parts: Vec<String> = groups
                .iter()
                .map(|(name, runs)| format!("GROUP {name} = {}", runs_str(runs)))
                .collect();
            writeln!(out, "PARTITION {subject} INTO {}", parts.join(", ")).unwrap();
        }
        Stmt::For { count, body } => {
            writeln!(out, "FOR {} REPETITIONS {{", expr(count)).unwrap();
            print_block(out, body, depth + 1);
            pad(out, depth);
            writeln!(out, "}}").unwrap();
        }
        Stmt::ForEach {
            var,
            from,
            to,
            body,
        } => {
            writeln!(
                out,
                "FOR EACH {var} IN {{{}, ..., {}}} {{",
                expr(from),
                expr(to)
            )
            .unwrap();
            print_block(out, body, depth + 1);
            pad(out, depth);
            writeln!(out, "}}").unwrap();
        }
        Stmt::If { cond, then_, else_ } => {
            writeln!(out, "IF {} THEN {{", cond_str(cond)).unwrap();
            print_block(out, then_, depth + 1);
            pad(out, depth);
            if else_.is_empty() {
                writeln!(out, "}}").unwrap();
            } else {
                writeln!(out, "}} OTHERWISE {{").unwrap();
                print_block(out, else_, depth + 1);
                pad(out, depth);
                writeln!(out, "}}").unwrap();
            }
        }
        Stmt::Compute {
            tasks,
            amount,
            unit,
        } => {
            writeln!(
                out,
                "{} {} FOR {} {}",
                task_set(tasks),
                verb(tasks, "COMPUTE"),
                expr(amount),
                unit.keyword()
            )
            .unwrap();
        }
        Stmt::Send {
            src,
            dst,
            bytes,
            tag,
            is_async,
        } => {
            writeln!(
                out,
                "{}{} {} A {} BYTE MESSAGE{} TO TASK {}",
                task_set(src),
                if *is_async { " ASYNCHRONOUSLY" } else { "" },
                verb(src, "SEND"),
                expr(bytes),
                tag_str(*tag),
                expr(dst)
            )
            .unwrap();
        }
        Stmt::Receive {
            dst,
            src,
            bytes,
            tag,
            is_async,
        } => {
            let from = match src {
                Some(e) => format!("TASK {}", expr(e)),
                None => "ANY TASK".to_string(),
            };
            writeln!(
                out,
                "{}{} {} A {} BYTE MESSAGE{} FROM {}",
                task_set(dst),
                if *is_async { " ASYNCHRONOUSLY" } else { "" },
                verb(dst, "RECEIVE"),
                expr(bytes),
                tag_str(*tag),
                from
            )
            .unwrap();
        }
        Stmt::Await { tasks } => {
            writeln!(
                out,
                "{} {} COMPLETION",
                task_set(tasks),
                verb(tasks, "AWAIT")
            )
            .unwrap();
        }
        Stmt::Sync { tasks } => {
            writeln!(out, "{} {}", task_set(tasks), verb(tasks, "SYNCHRONIZE")).unwrap();
        }
        Stmt::Multicast { root, tasks, bytes } => match root {
            Some(r) => {
                writeln!(
                    out,
                    "TASK {} MULTICASTS A {} BYTE MESSAGE TO {}",
                    expr(r),
                    expr(bytes),
                    task_set(tasks)
                )
                .unwrap();
            }
            None => {
                writeln!(
                    out,
                    "{} MULTICAST A {} BYTE MESSAGE TO EACH OTHER",
                    task_set(tasks),
                    expr(bytes)
                )
                .unwrap();
            }
        },
        Stmt::Reduce { tasks, to, bytes } => {
            let target = match to {
                ReduceTo::Task(e) => format!("TASK {}", expr(e)),
                ReduceTo::All => "ALL TASKS".to_string(),
            };
            writeln!(
                out,
                "{} {} A {} BYTE MESSAGE TO {}",
                task_set(tasks),
                verb(tasks, "REDUCE"),
                expr(bytes),
                target
            )
            .unwrap();
        }
        Stmt::ResetCounters => {
            writeln!(out, "ALL TASKS RESET THEIR COUNTERS").unwrap();
        }
        Stmt::Log { label } => {
            writeln!(out, "ALL TASKS LOG \"{label}\"").unwrap();
        }
    }
}

/// Singular subjects conjugate the verb ("TASK 0 COMPUTES …").
fn verb(tasks: &TaskSet, base: &str) -> String {
    match &tasks.sel {
        TaskSel::Single(_) => {
            if base == "SYNCHRONIZE" {
                "SYNCHRONIZES".to_string()
            } else {
                format!("{base}S")
            }
        }
        _ => base.to_string(),
    }
}

fn tag_str(tag: i32) -> String {
    if tag == 0 {
        String::new()
    } else {
        format!(" WITH TAG {tag}")
    }
}

/// Render a task set.
pub fn task_set(ts: &TaskSet) -> String {
    let var = ts.var.as_deref();
    match &ts.sel {
        TaskSel::All => match var {
            Some(v) => format!("ALL TASKS {v}"),
            None => "ALL TASKS".to_string(),
        },
        TaskSel::Single(e) => format!("TASK {}", expr(e)),
        TaskSel::Runs(runs) => {
            let v = var.unwrap_or("t");
            format!("TASKS {v} SUCH THAT {v} IS IN {}", runs_str(runs))
        }
        TaskSel::Group(name) => format!("GROUP {name}"),
    }
}

fn runs_str(runs: &[TaskRun]) -> String {
    let mut s = String::from("{");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        if r.count == 1 {
            write!(s, "{}", r.start).unwrap();
        } else if r.stride == 1 {
            write!(s, "{}-{}", r.start, r.last()).unwrap();
        } else {
            write!(s, "{}-{}:{}", r.start, r.last(), r.stride).unwrap();
        }
    }
    s.push('}');
    s
}

/// Render an expression with minimal parentheses.
pub fn expr(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn expr_prec(e: &Expr, min_prec: u8) -> String {
    let (s, prec) = match e {
        Expr::Num(v) => (v.to_string(), 3),
        Expr::Var(v) => (v.clone(), 3),
        Expr::NumTasks => ("NUM_TASKS".to_string(), 3),
        Expr::Add(a, b) => (format!("{} + {}", expr_prec(a, 1), expr_prec(b, 2)), 1),
        Expr::Sub(a, b) => (format!("{} - {}", expr_prec(a, 1), expr_prec(b, 2)), 1),
        Expr::Mul(a, b) => (format!("{} * {}", expr_prec(a, 2), expr_prec(b, 3)), 2),
        Expr::Div(a, b) => (format!("{} / {}", expr_prec(a, 2), expr_prec(b, 3)), 2),
        Expr::Mod(a, b) => (format!("{} MOD {}", expr_prec(a, 2), expr_prec(b, 3)), 2),
        Expr::Xor(a, b) => (format!("{} XOR {}", expr_prec(a, 2), expr_prec(b, 3)), 2),
    };
    if prec < min_prec {
        format!("({s})")
    } else {
        s
    }
}

fn cond_str(c: &Cond) -> String {
    cond_prec(c, 0)
}

fn cond_prec(c: &Cond, min_prec: u8) -> String {
    let (s, prec) = match c {
        Cond::Cmp(a, op, b) => (format!("{} {op} {}", expr(a), expr(b)), 3),
        Cond::Divides(a, b) => (format!("{} DIVIDES {}", expr(a), expr(b)), 3),
        Cond::Not(x) => (format!("NOT {}", cond_prec(x, 3)), 2),
        Cond::And(a, b) => (format!("{} AND {}", cond_prec(a, 2), cond_prec(b, 3)), 1),
        Cond::Or(a, b) => (format!("{} OR {}", cond_prec(a, 1), cond_prec(b, 2)), 0),
    };
    if prec < min_prec {
        format!("({s})")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_style_program_prints() {
        // the paper's §3.2 example, modulo our explicit units
        let p = Program::new(vec![Stmt::For {
            count: Expr::num(1000),
            body: vec![
                Stmt::ResetCounters,
                Stmt::Send {
                    src: TaskSet::all_bound("t"),
                    dst: Expr::add(Expr::var("t"), Expr::num(1)),
                    bytes: Expr::num(1024),
                    tag: 0,
                    is_async: true,
                },
                Stmt::Await {
                    tasks: TaskSet::all(),
                },
                Stmt::Log {
                    label: "Time (us)".into(),
                },
            ],
        }]);
        let text = print(&p);
        assert!(text.contains("FOR 1000 REPETITIONS {"));
        assert!(text.contains("ALL TASKS RESET THEIR COUNTERS"));
        assert!(text.contains("ALL TASKS t ASYNCHRONOUSLY SEND A 1024 BYTE MESSAGE TO TASK t + 1"));
        assert!(text.contains("ALL TASKS AWAIT COMPLETION"));
        assert!(text.contains("ALL TASKS LOG \"Time (us)\""));
    }

    #[test]
    fn such_that_example() {
        // the paper's §4.1 example: "TASKS xyz SUCH THAT 3 DIVIDES xyz
        // REDUCE A DOUBLEWORD TO TASK 0" — expressed with our run syntax
        let s = Stmt::Reduce {
            tasks: TaskSet::runs(
                vec![TaskRun {
                    start: 0,
                    stride: 3,
                    count: 4,
                }],
                Some("xyz"),
            ),
            to: ReduceTo::Task(Expr::num(0)),
            bytes: Expr::num(8),
        };
        let text = print(&Program::new(vec![s]));
        assert_eq!(
            text.trim(),
            "TASKS xyz SUCH THAT xyz IS IN {0-9:3} REDUCE A 8 BYTE MESSAGE TO TASK 0"
        );
    }

    #[test]
    fn singular_verbs() {
        let s = Stmt::Compute {
            tasks: TaskSet::single(Expr::num(0)),
            amount: Expr::num(100),
            unit: TimeUnit::Microseconds,
        };
        let text = print(&Program::new(vec![s]));
        assert_eq!(text.trim(), "TASK 0 COMPUTES FOR 100 MICROSECONDS");
    }

    #[test]
    fn expr_parenthesisation() {
        let e = Expr::mul(Expr::add(Expr::var("t"), Expr::num(1)), Expr::num(2));
        assert_eq!(expr(&e), "(t + 1) * 2");
        let e2 = Expr::add(Expr::mul(Expr::var("t"), Expr::num(2)), Expr::num(1));
        assert_eq!(expr(&e2), "t * 2 + 1");
        let e3 = Expr::modulo(Expr::add(Expr::var("t"), Expr::num(1)), Expr::NumTasks);
        assert_eq!(expr(&e3), "(t + 1) MOD NUM_TASKS");
        let e4 = Expr::sub(Expr::num(10), Expr::sub(Expr::num(3), Expr::num(2)));
        assert_eq!(expr(&e4), "10 - (3 - 2)");
    }

    #[test]
    fn header_comments() {
        let mut p = Program::new(vec![Stmt::ResetCounters]);
        p.header.push("generated by benchgen".into());
        let text = print(&p);
        assert!(text.starts_with("# generated by benchgen\n"));
    }

    #[test]
    fn wildcard_receive_prints_any_task() {
        let s = Stmt::Receive {
            dst: TaskSet::single(Expr::num(0)),
            src: None,
            bytes: Expr::num(64),
            tag: 0,
            is_async: false,
        };
        let text = print(&Program::new(vec![s]));
        assert_eq!(
            text.trim(),
            "TASK 0 RECEIVES A 64 BYTE MESSAGE FROM ANY TASK"
        );
    }

    #[test]
    fn multicast_forms() {
        let one = Stmt::Multicast {
            root: Some(Expr::num(2)),
            tasks: TaskSet::all(),
            bytes: Expr::num(4096),
        };
        let many = Stmt::Multicast {
            root: None,
            tasks: TaskSet::all(),
            bytes: Expr::num(512),
        };
        let text = print(&Program::new(vec![one, many]));
        assert!(text.contains("TASK 2 MULTICASTS A 4096 BYTE MESSAGE TO ALL TASKS"));
        assert!(text.contains("ALL TASKS MULTICAST A 512 BYTE MESSAGE TO EACH OTHER"));
    }
}
