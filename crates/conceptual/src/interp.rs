//! The interpreter: executes a [`Program`] on the simulated MPI runtime.
//!
//! This component stands in for the coNCePTuaL compiler's C+MPI backend:
//! every statement maps onto the same MPI calls the compiled benchmark
//! would issue, so profiles of the interpreted program are comparable to
//! profiles of the original application (experiment E1):
//!
//! | statement                   | MPI mapping                                |
//! |-----------------------------|--------------------------------------------|
//! | SEND / ASYNCHRONOUSLY SEND  | `MPI_Send` / `MPI_Isend`                   |
//! | RECEIVE / ASYNC RECEIVE     | `MPI_Recv` / `MPI_Irecv` (FROM ANY TASK → `MPI_ANY_SOURCE`) |
//! | AWAIT COMPLETION            | `MPI_Waitall` over outstanding requests    |
//! | SYNCHRONIZE                 | `MPI_Barrier`                              |
//! | TASK r MULTICASTS … TO S    | `MPI_Bcast(root=r)` over S ∪ {r}           |
//! | S MULTICAST … TO EACH OTHER | `MPI_Alltoall` over S                      |
//! | REDUCE … TO TASK r          | `MPI_Reduce(root=r)`                       |
//! | REDUCE … TO ALL TASKS       | `MPI_Allreduce`                            |
//! | PARTITION … INTO …          | `MPI_Comm_split`                           |
//! | COMPUTE FOR                 | spin loop (virtual-time advance)           |
//!
//! If the program contains no explicit `RECEIVE` statements, `SEND`
//! statements auto-post the matching receives on the destination tasks
//! (the convenient coNCePTuaL default, §3.2); generated benchmarks always
//! carry explicit receives for precise posting-order control.

use crate::analyze::{expand_runs, validate};
use crate::ast::*;
use mpisim::comm::Comm;
use mpisim::ctx::Ctx;
use mpisim::error::SimError;
use mpisim::network::NetworkModel;
use mpisim::time::{SimDuration, SimTime};
use mpisim::types::{ReqHandle, Src, TagSel};
use mpisim::world::{RunReport, World};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::sync::Mutex;

/// Execution failure: static validation errors or a simulation error.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The program failed static validation ([`crate::analyze::validate`]).
    Validation(Vec<String>),
    /// The simulated execution failed (deadlock, panic, …).
    Sim(SimError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Validation(errs) => {
                writeln!(f, "program validation failed:")?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            RunError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// One `LOG` record: `(task, label, virtual time since last counter reset)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The logging task.
    pub task: usize,
    /// The metric label.
    pub label: String,
    /// Virtual time since the task's last counter reset.
    pub elapsed: SimDuration,
}

/// Result of executing a program.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The simulated run report.
    pub report: RunReport,
    /// All LOG records, sorted by `(task, label)`.
    pub logs: Vec<LogEntry>,
    /// The run's simulated wall-clock time (alias of `report.total_time`).
    pub total_time: SimTime,
}

/// Execute `program` with `n` tasks over `model`.
pub fn run_program(
    program: &Program,
    n: usize,
    model: Arc<dyn NetworkModel>,
) -> Result<RunOutcome, RunError> {
    run_program_on(program, World::new(n).network(model), n)
}

/// Execute on a fully configured [`World`] (custom match policy etc.).
pub fn run_program_on(program: &Program, world: World, n: usize) -> Result<RunOutcome, RunError> {
    let errors = validate(program, n);
    if !errors.is_empty() {
        return Err(RunError::Validation(errors));
    }
    let program = Arc::new(program.clone());
    let logs: Arc<Mutex<Vec<LogEntry>>> = Arc::new(Mutex::new(Vec::new()));
    let logs_in = Arc::clone(&logs);
    let report = world
        .run(move |ctx| {
            let mut exec = Exec::new(ctx, &program, logs_in.clone());
            exec.run();
        })
        .map_err(RunError::Sim)?;
    let mut logs = Arc::try_unwrap(logs)
        .map(|m| m.into_inner().expect("log mutex poisoned"))
        .unwrap_or_else(|arc| arc.lock().expect("log mutex poisoned").clone());
    logs.sort_by(|a, b| (a.task, &a.label).cmp(&(b.task, &b.label)));
    Ok(RunOutcome {
        total_time: report.total_time,
        report,
        logs,
    })
}

/// Evaluate a constant expression (validation guarantees constness where
/// this is used).
pub fn eval_const(e: &Expr) -> i64 {
    eval(e, &Env::default())
}

/// Execute a program within an existing rank context (no validation, logs
/// discarded). This is the building block for callers that manage their own
/// [`World`] — e.g. tracing or profiling the generated benchmark by running
/// it under interposition hooks.
pub fn run_rank(ctx: &mut Ctx, program: &Program) {
    let logs = Arc::new(Mutex::new(Vec::new()));
    let mut exec = Exec::new(ctx, program, logs);
    exec.run();
}

/// Variable bindings during execution. Binding pushes a borrowed stack
/// frame instead of cloning a map, so loop bodies bind their iteration
/// variable without allocating; lookup walks the (shallow) frame chain.
#[derive(Clone, Copy, Default)]
pub struct Env<'a> {
    parent: Option<&'a Env<'a>>,
    binding: Option<(&'a str, i64)>,
    num_tasks: i64,
}

impl<'a> Env<'a> {
    fn bind<'b>(&'b self, name: &'b str, value: i64) -> Env<'b> {
        Env {
            parent: Some(self),
            binding: Some((name, value)),
            num_tasks: self.num_tasks,
        }
    }

    fn get(&self, name: &str) -> Option<i64> {
        let mut cur = Some(self);
        while let Some(e) = cur {
            if let Some((n, v)) = e.binding {
                if n == name {
                    return Some(v);
                }
            }
            cur = e.parent;
        }
        None
    }
}

fn eval(e: &Expr, env: &Env) -> i64 {
    match e {
        Expr::Num(v) => *v,
        Expr::NumTasks => env.num_tasks,
        Expr::Var(v) => env
            .get(v)
            .unwrap_or_else(|| panic!("unbound variable {v} (validation gap)")),
        Expr::Add(a, b) => eval(a, env) + eval(b, env),
        Expr::Sub(a, b) => eval(a, env) - eval(b, env),
        Expr::Mul(a, b) => eval(a, env) * eval(b, env),
        Expr::Div(a, b) => {
            let d = eval(b, env);
            assert!(d != 0, "division by zero");
            eval(a, env) / d
        }
        Expr::Mod(a, b) => {
            let d = eval(b, env);
            assert!(d != 0, "MOD by zero");
            eval(a, env).rem_euclid(d)
        }
        Expr::Xor(a, b) => eval(a, env) ^ eval(b, env),
    }
}

fn eval_cond(c: &Cond, env: &Env) -> bool {
    match c {
        Cond::Cmp(a, op, b) => {
            let (x, y) = (eval(a, env), eval(b, env));
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Cond::Divides(a, b) => {
            let d = eval(a, env);
            d != 0 && eval(b, env).rem_euclid(d) == 0
        }
        Cond::And(a, b) => eval_cond(a, env) && eval_cond(b, env),
        Cond::Or(a, b) => eval_cond(a, env) || eval_cond(b, env),
        Cond::Not(a) => !eval_cond(a, env),
    }
}

struct Exec<'c, 'p> {
    ctx: &'c mut Ctx,
    program: &'p Program,
    /// Cached world communicator (avoids a clone per statement).
    world: Comm,
    explicit_receives: bool,
    /// group name → members (absolute task ids)
    groups: HashMap<String, Vec<usize>>,
    /// group name → live communicator (only for partition-created groups
    /// this rank belongs to)
    group_comms: HashMap<String, Comm>,
    /// member set → communicator, for ad-hoc collective subjects
    adhoc_comms: HashMap<Vec<usize>, Comm>,
    outstanding: Vec<ReqHandle>,
    t0: SimTime,
    logs: Arc<Mutex<Vec<LogEntry>>>,
    n: usize,
}

impl<'c, 'p> Exec<'c, 'p> {
    fn new(ctx: &'c mut Ctx, program: &'p Program, logs: Arc<Mutex<Vec<LogEntry>>>) -> Self {
        let n = ctx.size();
        let world = ctx.world();
        Exec {
            ctx,
            program,
            world,
            explicit_receives: program.has_explicit_receives(),
            groups: HashMap::new(),
            group_comms: HashMap::new(),
            adhoc_comms: HashMap::new(),
            outstanding: Vec::new(),
            t0: SimTime::ZERO,
            logs,
            n,
        }
    }

    fn run(&mut self) {
        let env = Env {
            parent: None,
            binding: Some(("t", self.ctx.rank() as i64)),
            num_tasks: self.n as i64,
        };
        self.prepass();
        let stmts = &self.program.stmts;
        self.block(stmts, &env);
    }

    /// Create communicators for every ad-hoc collective subject up front.
    /// `MPI_Comm_split` is collective over the parent, so *all* tasks must
    /// participate — including those outside the subset. Generated
    /// benchmarks carry explicit PARTITION statements instead and never
    /// reach this path.
    fn prepass(&mut self) {
        let me = self.ctx.rank();
        for members in collect_adhoc_sets(self.program, self.n) {
            let (color, key) = match members.iter().position(|&m| m == me) {
                Some(idx) => (1, idx as i64),
                None => (0, me as i64),
            };
            let comm = self.ctx.comm_split(&self.world, color, key);
            if color == 1 {
                self.adhoc_comms.insert(members, comm);
            }
        }
    }

    fn block(&mut self, stmts: &'p [Stmt], env: &Env) {
        for s in stmts {
            self.stmt(s, env);
        }
    }

    /// Members of a task set (absolute ids, sorted). Callers that only need
    /// a membership test should use [`Exec::is_member`], which does not
    /// allocate.
    fn members(&self, ts: &TaskSet, env: &Env) -> Vec<usize> {
        match &ts.sel {
            TaskSel::All => (0..self.n).collect(),
            TaskSel::Single(e) => vec![eval(e, env).rem_euclid(self.n as i64) as usize],
            TaskSel::Runs(runs) => expand_runs(runs),
            TaskSel::Group(g) => self.groups.get(g).cloned().unwrap_or_default(),
        }
    }

    /// Is `task` a member of `ts`? Allocation-free equivalent of
    /// `self.members(ts, env).contains(&task)`.
    fn is_member(&self, ts: &TaskSet, env: &Env, task: usize) -> bool {
        match &ts.sel {
            TaskSel::All => task < self.n,
            TaskSel::Single(e) => eval(e, env).rem_euclid(self.n as i64) as usize == task,
            TaskSel::Runs(runs) => expand_runs(runs).contains(&task),
            TaskSel::Group(g) => self.groups.get(g).is_some_and(|m| m.contains(&task)),
        }
    }

    /// Communicator for a member set. Ad-hoc subsets were pre-created in
    /// [`Exec::prepass`]; PARTITION groups get theirs when the partition
    /// executes.
    fn comm_for(&mut self, ts: &TaskSet, env: &Env) -> Comm {
        if let TaskSel::Group(g) = &ts.sel {
            if let Some(c) = self.group_comms.get(g) {
                return c.clone();
            }
        }
        let members = self.members(ts, env);
        self.comm_for_members(&members)
    }

    fn comm_for_members(&mut self, members: &[usize]) -> Comm {
        if members.len() == self.n {
            return self.world.clone();
        }
        self.adhoc_comms.get(members).cloned().unwrap_or_else(|| {
            panic!(
                "no communicator for task set {members:?} (collective over an undeclared subset?)"
            )
        })
    }

    fn stmt(&mut self, s: &'p Stmt, env: &Env) {
        let me = self.ctx.rank();
        match s {
            Stmt::Comment(_) => {}
            Stmt::DeclareGroup { name, tasks } => {
                let members = self.members(tasks, env);
                self.groups.insert(name.clone(), members);
            }
            Stmt::Partition { parent, groups } => {
                let me_in_parent = match parent {
                    None => true,
                    Some(g) => self.groups.get(g).is_some_and(|m| m.contains(&me)),
                };
                let parent_comm = match parent {
                    None => self.world.clone(),
                    Some(g) => match self.group_comms.get(g) {
                        Some(c) => c.clone(),
                        None => {
                            // this rank is outside the parent: record the
                            // groups and skip the collective
                            for (name, runs) in groups {
                                self.groups.insert(name.clone(), expand_runs(runs));
                            }
                            return;
                        }
                    },
                };
                for (name, runs) in groups {
                    self.groups.insert(name.clone(), expand_runs(runs));
                }
                if !me_in_parent {
                    return;
                }
                // The color is the group's smallest task id: globally unique
                // across disjoint groups, so sibling PARTITION statements
                // that realise different groups of the *same* original
                // `MPI_Comm_split` cooperate in one collective split.
                let found = groups.iter().find_map(|(name, runs)| {
                    let members = expand_runs(runs);
                    members
                        .iter()
                        .position(|&m| m == me)
                        .map(|idx| (members[0] as i64, idx as i64, name.clone()))
                });
                let Some((color, key, my_group)) = found else {
                    return; // this parent rank joins a sibling PARTITION
                };
                let comm = self.ctx.comm_split(&parent_comm, color, key);
                self.group_comms.insert(my_group, comm);
            }
            Stmt::For { count, body } => {
                let count = eval(count, env).max(0);
                for _ in 0..count {
                    self.block(body, env);
                }
            }
            Stmt::ForEach {
                var,
                from,
                to,
                body,
            } => {
                let (from, to) = (eval(from, env), eval(to, env));
                for i in from..=to {
                    let env = env.bind(var, i);
                    self.block(body, &env);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                if eval_cond(cond, env) {
                    self.block(then_, env);
                } else {
                    self.block(else_, env);
                }
            }
            Stmt::Compute {
                tasks,
                amount,
                unit,
            } => {
                if self.is_member(tasks, env, me) {
                    let env = bind_task_var(tasks, env, me);
                    let ns = unit.nanos(eval(amount, &env));
                    self.ctx.compute(SimDuration::from_nanos(ns));
                }
            }
            Stmt::Send {
                src,
                dst,
                bytes,
                tag,
                is_async,
            } => {
                if self.is_member(src, env, me) {
                    let env = bind_task_var(src, env, me);
                    let to = eval(dst, &env).rem_euclid(self.n as i64) as usize;
                    let nbytes = eval(bytes, &env).max(0) as u64;
                    if *is_async {
                        let h = self.ctx.isend(to, *tag, nbytes, &self.world);
                        self.outstanding.push(h);
                    } else {
                        self.ctx.send(to, *tag, nbytes, &self.world);
                    }
                }
                if !self.explicit_receives {
                    // auto-post matching receives on destinations
                    let senders = self.members(src, env);
                    for &s in &senders {
                        let env = bind_task_var(src, env, s);
                        let to = eval(dst, &env).rem_euclid(self.n as i64) as usize;
                        if to == me {
                            let nbytes = eval(bytes, &env).max(0) as u64;
                            if *is_async {
                                let h = self.ctx.irecv(
                                    Src::Rank(s),
                                    TagSel::Is(*tag),
                                    nbytes,
                                    &self.world,
                                );
                                self.outstanding.push(h);
                            } else {
                                let _ = self.ctx.recv(
                                    Src::Rank(s),
                                    TagSel::Is(*tag),
                                    nbytes,
                                    &self.world,
                                );
                            }
                        }
                    }
                }
            }
            Stmt::Receive {
                dst,
                src,
                bytes,
                tag,
                is_async,
            } => {
                if self.is_member(dst, env, me) {
                    let env = bind_task_var(dst, env, me);
                    let from = match src {
                        None => Src::Any,
                        Some(e) => Src::Rank(eval(e, &env).rem_euclid(self.n as i64) as usize),
                    };
                    let nbytes = eval(bytes, &env).max(0) as u64;
                    if *is_async {
                        let h = self.ctx.irecv(from, TagSel::Is(*tag), nbytes, &self.world);
                        self.outstanding.push(h);
                    } else {
                        let _ = self.ctx.recv(from, TagSel::Is(*tag), nbytes, &self.world);
                    }
                }
            }
            Stmt::Await { tasks } => {
                if !self.outstanding.is_empty() && self.is_member(tasks, env, me) {
                    let hs = std::mem::take(&mut self.outstanding);
                    self.ctx.waitall(&hs);
                }
            }
            Stmt::Sync { tasks } => {
                if self.is_member(tasks, env, me) {
                    let comm = self.comm_for(tasks, env);
                    self.ctx.barrier(&comm);
                }
            }
            Stmt::Multicast { root, tasks, bytes } => {
                match root {
                    Some(root_expr) => {
                        let root = eval(root_expr, env).rem_euclid(self.n as i64) as usize;
                        let members = self.members(tasks, env);
                        let participates = members.contains(&me) || root == me;
                        if participates {
                            // participants = tasks ∪ {root}
                            let env = bind_task_var(tasks, env, me);
                            let nbytes = eval(bytes, &env).max(0) as u64;
                            let comm = if members.contains(&root) {
                                self.comm_for(tasks, &env)
                            } else {
                                let mut all = members;
                                all.push(root);
                                all.sort_unstable();
                                self.comm_for_members(&all)
                            };
                            let root_rel =
                                comm.relative_of(root).expect("root in participant comm");
                            self.ctx.bcast(root_rel, nbytes, &comm);
                        }
                    }
                    None => {
                        if self.is_member(tasks, env, me) {
                            let env = bind_task_var(tasks, env, me);
                            let nbytes = eval(bytes, &env).max(0) as u64;
                            let comm = self.comm_for(tasks, &env);
                            self.ctx.alltoall(nbytes, &comm);
                        }
                    }
                }
            }
            Stmt::Reduce { tasks, to, bytes } => {
                if self.is_member(tasks, env, me) {
                    let env = bind_task_var(tasks, env, me);
                    let nbytes = eval(bytes, &env).max(0) as u64;
                    let comm = self.comm_for(tasks, &env);
                    match to {
                        ReduceTo::All => self.ctx.allreduce(nbytes, &comm),
                        ReduceTo::Task(root_expr) => {
                            let root = eval(root_expr, &env).rem_euclid(self.n as i64) as usize;
                            let root_rel = comm
                                .relative_of(root)
                                .expect("REDUCE target inside participant set");
                            self.ctx.reduce(root_rel, nbytes, &comm);
                        }
                    }
                }
            }
            Stmt::ResetCounters => {
                self.t0 = self.ctx.now();
            }
            Stmt::Log { label } => {
                let elapsed = self.ctx.now().since(self.t0);
                self.logs
                    .lock()
                    .expect("log mutex poisoned")
                    .push(LogEntry {
                        task: me,
                        label: label.clone(),
                        elapsed,
                    });
            }
        }
    }
}

fn bind_task_var<'b>(ts: &'b TaskSet, env: &'b Env<'b>, task: usize) -> Env<'b> {
    match &ts.var {
        Some(v) => env.bind(v, task as i64),
        None => *env,
    }
}

/// Scan a program for collective subjects over ad-hoc (non-ALL,
/// non-PARTITION-group) task sets, in first-occurrence order. These need
/// world-collective communicator creation before execution starts.
fn collect_adhoc_sets(program: &Program, n: usize) -> Vec<Vec<usize>> {
    struct Scan {
        n: usize,
        /// group name → (members, has a partition-created communicator)
        groups: BTreeMap<String, (Vec<usize>, bool)>,
        sets: Vec<Vec<usize>>,
    }
    impl Scan {
        fn add_set(&mut self, members: Vec<usize>) {
            if members.len() < self.n && !members.is_empty() && !self.sets.contains(&members) {
                self.sets.push(members);
            }
        }

        fn subject(&mut self, ts: &TaskSet) -> Option<Vec<usize>> {
            match &ts.sel {
                TaskSel::All => None,
                TaskSel::Single(_) => None,
                TaskSel::Runs(runs) => Some(expand_runs(runs)),
                TaskSel::Group(g) => match self.groups.get(g) {
                    Some((_, true)) => None, // partition-created comm exists
                    Some((members, false)) => Some(members.clone()),
                    None => None, // validation reports this
                },
            }
        }

        fn collective_subject(&mut self, ts: &TaskSet) {
            if let Some(members) = self.subject(ts) {
                self.add_set(members);
            }
        }

        fn block(&mut self, stmts: &[Stmt]) {
            for s in stmts {
                self.stmt(s);
            }
        }

        fn stmt(&mut self, s: &Stmt) {
            match s {
                Stmt::DeclareGroup { name, tasks } => {
                    let members = match &tasks.sel {
                        TaskSel::All => (0..self.n).collect(),
                        TaskSel::Runs(runs) => expand_runs(runs),
                        TaskSel::Group(g) => self
                            .groups
                            .get(g)
                            .map(|(m, _)| m.clone())
                            .unwrap_or_default(),
                        TaskSel::Single(e) if e.is_const() => {
                            vec![eval_const(e).max(0) as usize]
                        }
                        _ => Vec::new(),
                    };
                    self.groups.insert(name.clone(), (members, false));
                }
                Stmt::Partition { groups, .. } => {
                    for (name, runs) in groups {
                        self.groups.insert(name.clone(), (expand_runs(runs), true));
                    }
                }
                Stmt::For { body, .. } | Stmt::ForEach { body, .. } => self.block(body),
                Stmt::If { then_, else_, .. } => {
                    self.block(then_);
                    self.block(else_);
                }
                Stmt::Sync { tasks } | Stmt::Reduce { tasks, .. } => {
                    self.collective_subject(tasks);
                }
                Stmt::Multicast { root, tasks, .. } => {
                    let members = match &tasks.sel {
                        TaskSel::All => None,
                        TaskSel::Runs(runs) => Some(expand_runs(runs)),
                        TaskSel::Group(g) => self.groups.get(g).map(|(m, _)| m.clone()),
                        TaskSel::Single(_) => None,
                    };
                    match (root, members) {
                        (Some(r), Some(mut members)) if r.is_const() => {
                            let root = eval_const(r).max(0) as usize;
                            if !members.contains(&root) {
                                // participants = set ∪ {root}: always ad hoc
                                members.push(root);
                                members.sort_unstable();
                                self.add_set(members);
                            } else {
                                self.collective_subject(tasks);
                            }
                        }
                        (_, Some(_)) => self.collective_subject(tasks),
                        _ => {}
                    }
                }
                _ => {}
            }
        }
    }
    let mut scan = Scan {
        n,
        groups: BTreeMap::new(),
        sets: Vec::new(),
    };
    scan.block(&program.stmts);
    scan.sets
}
