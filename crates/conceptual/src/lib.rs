#![warn(missing_docs)]
//! # conceptual — a coNCePTuaL-style DSL for communication benchmarks
//!
//! The paper generates benchmarks in coNCePTuaL (Pakin), "a domain-specific
//! language for specifying communication patterns" with an English-like
//! grammar that compiles to C+MPI. This crate reproduces the subset the
//! generator needs:
//!
//! * [`ast`] — programs as plain data,
//! * [`printer`] — rendering to readable text (the generated artifact),
//! * [`parser`] — exact round-trip parsing, keeping the artifact *editable*
//!   (the paper's §5.4 what-if analysis edits the program and re-runs it),
//! * [`analyze`] — static validation,
//! * [`interp`] — execution on [`mpisim`], standing in for the coNCePTuaL
//!   compiler's C+MPI backend; statements map 1:1 onto MPI calls so that
//!   mpiP-style profiles of the benchmark are comparable to profiles of the
//!   original application.
//!
//! ```
//! use conceptual::{parser, printer, interp};
//! use mpisim::network;
//!
//! // The paper's §3.2 example program (with explicit units):
//! let src = r#"
//! FOR 10 REPETITIONS {
//!   ALL TASKS RESET THEIR COUNTERS
//!   ALL TASKS t ASYNCHRONOUSLY SEND A 1024 BYTE MESSAGE TO TASK (t + 1) MOD NUM_TASKS
//!   ALL TASKS AWAIT COMPLETION
//!   ALL TASKS LOG "Time (us)"
//! }
//! "#;
//! let program = parser::parse(src).unwrap();
//! assert_eq!(parser::parse(&printer::print(&program)).unwrap(), program);
//!
//! let outcome = interp::run_program(&program, 8, network::ethernet_cluster()).unwrap();
//! assert_eq!(outcome.logs.len(), 8 * 10);      // every task logs every repetition
//! assert!(outcome.total_time.as_nanos() > 0);
//! ```

pub mod analyze;
pub mod ast;
pub mod interp;
pub mod parser;
pub mod printer;
pub mod transform;

pub use ast::{Cond, Expr, Program, ReduceTo, Stmt, TaskRun, TaskSel, TaskSet, TimeUnit};
pub use interp::{run_program, run_program_on, LogEntry, RunError, RunOutcome};
pub use parser::parse;
pub use printer::print;
