//! Interpreter edge cases: multicast roots outside the subject set,
//! group aliases, degenerate loops, counter semantics, and the auto-receive
//! inversion for rank-dependent destinations.

use conceptual::interp::run_program;
use conceptual::parser::parse;
use mpisim::network;
use mpisim::profile::MpiP;
use mpisim::world::World;
use std::sync::Arc;

fn profile(src: &str, n: usize) -> MpiP {
    let p = Arc::new(parse(src).unwrap());
    let (_, hooks) = World::new(n)
        .network(network::ideal())
        .run_hooked(
            |_| MpiP::new(),
            move |ctx| conceptual::interp::run_rank(ctx, &p),
        )
        .unwrap();
    MpiP::merge_all(hooks.iter())
}

#[test]
fn multicast_root_outside_subject_set() {
    // TASK 0 multicasts to {4-7}: participants are {0,4,5,6,7}
    let src = r#"
TASK 0 MULTICASTS A 512 BYTE MESSAGE TO TASKS t SUCH THAT t IS IN {4-7}
"#;
    let prof = profile(src, 8);
    assert_eq!(prof.get("MPI_Bcast").calls, 5);
    // the ad-hoc participant comm needs one world split in the prepass
    assert_eq!(prof.get("MPI_Comm_split").calls, 8);
}

#[test]
fn declare_group_alias_backs_collectives() {
    let src = r#"
GROUP workers IS TASKS t SUCH THAT t IS IN {1-7}
GROUP workers SYNCHRONIZE
GROUP workers REDUCE A 64 BYTE MESSAGE TO TASK 1
"#;
    let prof = profile(src, 8);
    assert_eq!(prof.get("MPI_Barrier").calls, 7);
    assert_eq!(prof.get("MPI_Reduce").calls, 7);
    // alias groups get an ad-hoc comm via the prepass (one split)
    assert_eq!(prof.get("MPI_Comm_split").calls, 8);
}

#[test]
fn zero_and_negative_loops_run_zero_times() {
    let src = r#"
FOR 0 REPETITIONS {
  ALL TASKS SYNCHRONIZE
}
FOR EACH i IN {5, ..., 2} {
  ALL TASKS SYNCHRONIZE
}
"#;
    let prof = profile(src, 4);
    assert_eq!(prof.get("MPI_Barrier").calls, 0);
}

#[test]
fn counters_reset_per_task() {
    let src = r#"
ALL TASKS COMPUTE FOR 100 MICROSECONDS
ALL TASKS RESET THEIR COUNTERS
ALL TASKS COMPUTE FOR 25 MICROSECONDS
ALL TASKS LOG "window"
"#;
    let p = parse(src).unwrap();
    let out = run_program(&p, 2, network::ideal()).unwrap();
    assert_eq!(out.logs.len(), 2);
    for log in &out.logs {
        assert_eq!(log.elapsed.as_nanos(), 25_000, "elapsed is since reset");
    }
}

#[test]
fn implicit_receives_invert_rank_dependent_destinations() {
    // senders {0,1} send to t+2: tasks 2 and 3 must auto-post receives
    let src = r#"
TASKS t SUCH THAT t IS IN {0-1} SEND A 99 BYTE MESSAGE TO TASK t + 2
"#;
    let prof = profile(src, 4);
    assert_eq!(prof.get("MPI_Send").calls, 2);
    assert_eq!(prof.get("MPI_Recv").calls, 2);
    assert_eq!(prof.get("MPI_Recv").bytes, 198);
}

#[test]
fn await_without_outstanding_ops_is_harmless() {
    let src = r#"
ALL TASKS AWAIT COMPLETION
ALL TASKS SYNCHRONIZE
"#;
    let prof = profile(src, 4);
    assert_eq!(prof.get("MPI_Waitall").calls, 0, "nothing to wait for");
    assert_eq!(prof.get("MPI_Barrier").calls, 4);
}

#[test]
fn if_inside_loop_uses_loop_variable() {
    let src = r#"
FOR EACH i IN {0, ..., 9} {
  IF 2 DIVIDES i THEN {
    ALL TASKS COMPUTE FOR 10 MICROSECONDS
  } OTHERWISE {
    ALL TASKS COMPUTE FOR 1 MICROSECONDS
  }
}
"#;
    let p = parse(src).unwrap();
    let out = run_program(&p, 1, network::ideal()).unwrap();
    // 5 even iterations x 10us + 5 odd x 1us = 55us
    assert_eq!(out.total_time.as_nanos(), 55_000);
}

#[test]
fn num_tasks_is_bound() {
    let src = "ALL TASKS COMPUTE FOR NUM_TASKS MICROSECONDS\n";
    let p = parse(src).unwrap();
    let out = run_program(&p, 6, network::ideal()).unwrap();
    assert_eq!(out.total_time.as_nanos(), 6_000);
}

#[test]
fn xor_destinations_execute() {
    let src = r#"
ALL TASKS t ASYNCHRONOUSLY SEND A 64 BYTE MESSAGE TO TASK t XOR 1
ALL TASKS AWAIT COMPLETION
"#;
    let prof = profile(src, 8);
    assert_eq!(prof.get("MPI_Isend").calls, 8);
    assert_eq!(prof.get("MPI_Irecv").calls, 8);
}

#[test]
fn partition_groups_are_usable_immediately() {
    let src = r#"
PARTITION ALL TASKS INTO GROUP a = {0-1}, GROUP b = {2-3}
GROUP a REDUCE A 8 BYTE MESSAGE TO ALL TASKS
GROUP b SYNCHRONIZE
GROUP a SYNCHRONIZE
"#;
    let prof = profile(src, 4);
    assert_eq!(prof.get("MPI_Comm_split").calls, 4);
    assert_eq!(prof.get("MPI_Allreduce").calls, 2);
    assert_eq!(prof.get("MPI_Barrier").calls, 4);
}
