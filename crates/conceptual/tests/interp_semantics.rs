//! Interpreter semantics: the MPI mapping of each statement kind, implicit
//! vs explicit receives, partitions/groups, logging, and determinism.

use conceptual::ast::*;
use conceptual::interp::{run_program, run_program_on, RunError};
use conceptual::parser::parse;
use mpisim::network;
use mpisim::profile::MpiP;
use mpisim::world::World;
use std::sync::Arc;

/// Run a program and gather the merged mpiP profile of its execution.
fn profile_of(program: &Program, n: usize) -> MpiP {
    let program = Arc::new(program.clone());
    let p2 = Arc::clone(&program);
    let (_, hooks) = World::new(n)
        .network(network::ideal())
        .run_hooked(
            |_| MpiP::new(),
            move |ctx| {
                let prog = Arc::clone(&p2);
                // run through the public interpreter path: build an Exec by
                // executing the program body in this rank context
                conceptual::interp::run_rank(ctx, &prog);
            },
        )
        .unwrap();
    MpiP::merge_all(hooks.iter())
}

#[test]
fn async_ring_maps_to_isend_irecv_waitall() {
    let src = r#"
FOR 5 REPETITIONS {
  ALL TASKS t ASYNCHRONOUSLY SEND A 1024 BYTE MESSAGE TO TASK (t + 1) MOD NUM_TASKS
  ALL TASKS AWAIT COMPLETION
}
"#;
    let p = parse(src).unwrap();
    let prof = profile_of(&p, 4);
    assert_eq!(prof.get("MPI_Isend").calls, 4 * 5);
    assert_eq!(prof.get("MPI_Isend").bytes, 4 * 5 * 1024);
    // implicit receives: one irecv per send
    assert_eq!(prof.get("MPI_Irecv").calls, 4 * 5);
    assert_eq!(prof.get("MPI_Waitall").calls, 4 * 5);
}

#[test]
fn explicit_receives_suppress_implicit_ones() {
    let src = r#"
ALL TASKS t ASYNCHRONOUSLY SEND A 64 BYTE MESSAGE TO TASK (t + 1) MOD NUM_TASKS
ALL TASKS t ASYNCHRONOUSLY RECEIVE A 64 BYTE MESSAGE FROM TASK (t - 1) MOD NUM_TASKS
ALL TASKS AWAIT COMPLETION
"#;
    let p = parse(src).unwrap();
    assert!(p.has_explicit_receives());
    let prof = profile_of(&p, 4);
    assert_eq!(prof.get("MPI_Isend").calls, 4);
    assert_eq!(
        prof.get("MPI_Irecv").calls,
        4,
        "exactly the explicit receives"
    );
}

#[test]
fn wildcard_receive_from_any_task() {
    let src = r#"
IF t > 0 THEN {
  TASK t SENDS A 32 BYTE MESSAGE TO TASK 0
}
TASKS r SUCH THAT r IS IN {0} RECEIVE A 32 BYTE MESSAGE FROM ANY TASK
TASKS r SUCH THAT r IS IN {0} RECEIVE A 32 BYTE MESSAGE FROM ANY TASK
TASKS r SUCH THAT r IS IN {0} RECEIVE A 32 BYTE MESSAGE FROM ANY TASK
"#;
    let p = parse(src).unwrap();
    let prof = profile_of(&p, 4);
    assert_eq!(prof.get("MPI_Send").calls, 3);
    assert_eq!(prof.get("MPI_Recv").calls, 3);
}

#[test]
fn collectives_map_to_mpi_equivalents() {
    let src = r#"
ALL TASKS SYNCHRONIZE
TASK 2 MULTICASTS A 4096 BYTE MESSAGE TO ALL TASKS
ALL TASKS REDUCE A 8 BYTE MESSAGE TO ALL TASKS
ALL TASKS REDUCE A 8 BYTE MESSAGE TO TASK 0
ALL TASKS MULTICAST A 512 BYTE MESSAGE TO EACH OTHER
"#;
    let p = parse(src).unwrap();
    let prof = profile_of(&p, 4);
    assert_eq!(prof.get("MPI_Barrier").calls, 4);
    assert_eq!(prof.get("MPI_Bcast").calls, 4);
    assert_eq!(prof.get("MPI_Allreduce").calls, 4);
    assert_eq!(prof.get("MPI_Reduce").calls, 4);
    assert_eq!(prof.get("MPI_Alltoall").calls, 4);
    assert_eq!(prof.get("MPI_Alltoall").bytes, 4 * 512);
}

#[test]
fn partition_creates_subcommunicators() {
    let src = r#"
PARTITION ALL TASKS INTO GROUP left = {0-3}, GROUP right = {4-7}
GROUP left SYNCHRONIZE
GROUP right REDUCE A 16 BYTE MESSAGE TO ALL TASKS
"#;
    let p = parse(src).unwrap();
    let prof = profile_of(&p, 8);
    assert_eq!(prof.get("MPI_Comm_split").calls, 8, "one split, all ranks");
    assert_eq!(prof.get("MPI_Barrier").calls, 4, "only the left half");
    assert_eq!(prof.get("MPI_Allreduce").calls, 4, "only the right half");
}

#[test]
fn adhoc_collective_subset_works_via_prepass() {
    let src = r#"
TASKS t SUCH THAT t IS IN {0-6:2} SYNCHRONIZE
"#;
    let p = parse(src).unwrap();
    let prof = profile_of(&p, 8);
    // prepass: one world-wide split; then 4 tasks barrier
    assert_eq!(prof.get("MPI_Comm_split").calls, 8);
    assert_eq!(prof.get("MPI_Barrier").calls, 4);
}

#[test]
fn logs_capture_elapsed_time() {
    let src = r#"
ALL TASKS RESET THEIR COUNTERS
ALL TASKS COMPUTE FOR 250 MICROSECONDS
ALL TASKS LOG "after compute"
"#;
    let p = parse(src).unwrap();
    let out = run_program(&p, 3, network::ideal()).unwrap();
    assert_eq!(out.logs.len(), 3);
    for log in &out.logs {
        assert_eq!(log.label, "after compute");
        assert_eq!(log.elapsed.as_nanos(), 250_000);
    }
}

#[test]
fn for_each_binds_loop_variable() {
    let src = r#"
FOR EACH i IN {1, ..., 4} {
  ALL TASKS COMPUTE FOR i MICROSECONDS
}
"#;
    let p = parse(src).unwrap();
    let out = run_program(&p, 2, network::ideal()).unwrap();
    // 1+2+3+4 = 10 microseconds
    assert_eq!(out.total_time.as_nanos(), 10_000);
}

#[test]
fn if_condition_on_task_id() {
    let src = r#"
IF 2 DIVIDES t THEN {
  ALL TASKS COMPUTE FOR 100 MICROSECONDS
} OTHERWISE {
  ALL TASKS COMPUTE FOR 50 MICROSECONDS
}
"#;
    let p = parse(src).unwrap();
    let out = run_program(&p, 4, network::ideal()).unwrap();
    assert_eq!(out.report.per_rank_time[0].as_nanos(), 100_000);
    assert_eq!(out.report.per_rank_time[1].as_nanos(), 50_000);
    assert_eq!(out.report.per_rank_time[2].as_nanos(), 100_000);
}

#[test]
fn validation_errors_are_surfaced() {
    let src = "GROUP nope SYNCHRONIZE\n";
    let p = parse(src).unwrap();
    match run_program(&p, 4, network::ideal()) {
        Err(RunError::Validation(errs)) => {
            assert!(errs.iter().any(|e| e.contains("undeclared group")))
        }
        other => panic!("expected validation error, got {other:?}"),
    }
}

#[test]
fn deterministic_across_runs() {
    let src = r#"
FOR 20 REPETITIONS {
  ALL TASKS t ASYNCHRONOUSLY SEND A 2048 BYTE MESSAGE TO TASK (t + 1) MOD NUM_TASKS
  ALL TASKS t ASYNCHRONOUSLY SEND A 2048 BYTE MESSAGE TO TASK (t - 1) MOD NUM_TASKS
  ALL TASKS COMPUTE FOR 77 MICROSECONDS
  ALL TASKS AWAIT COMPLETION
}
ALL TASKS REDUCE A 8 BYTE MESSAGE TO ALL TASKS
"#;
    let p = parse(src).unwrap();
    let a = run_program(&p, 8, network::ethernet_cluster()).unwrap();
    let b = run_program(&p, 8, network::ethernet_cluster()).unwrap();
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.report.per_rank_time, b.report.per_rank_time);
}

#[test]
fn run_on_custom_world() {
    let src = "ALL TASKS SYNCHRONIZE\n";
    let p = parse(src).unwrap();
    let out = run_program_on(&p, World::new(4).network(network::blue_gene_l()), 4).unwrap();
    assert_eq!(out.report.ranks, 4);
}

#[test]
fn blocking_send_pairs_with_implicit_blocking_recv() {
    // 0 sends to 1 with blocking semantics and no explicit receive
    let src = r#"
TASKS s SUCH THAT s IS IN {0} SEND A 128 BYTE MESSAGE TO TASK 1
"#;
    let p = parse(src).unwrap();
    let prof = profile_of(&p, 2);
    assert_eq!(prof.get("MPI_Send").calls, 1);
    assert_eq!(prof.get("MPI_Recv").calls, 1);
}
