//! Property-based round-trip tests for the DSL: any program the printer
//! can emit, the parser must read back identically — the guarantee that
//! generated benchmarks stay *editable* artifacts.

use conceptual::ast::*;
use conceptual::{parse, print};
use proptest::prelude::*;

fn arb_var() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("t".to_string()),
        Just("i".to_string()),
        Just("xyz".to_string())
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..10_000).prop_map(Expr::Num),
        arb_var().prop_map(Expr::Var),
        Just(Expr::NumTasks),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::div(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::modulo(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::xor(a, b)),
        ]
    })
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    let cmp = (
        arb_expr(),
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        arb_expr(),
    )
        .prop_map(|(a, op, b)| Cond::Cmp(a, op, b));
    let leaf = prop_oneof![
        cmp,
        (arb_expr(), arb_expr()).prop_map(|(a, b)| Cond::Divides(a, b)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Cond::Not(Box::new(a))),
        ]
    })
}

fn arb_runs() -> impl Strategy<Value = Vec<TaskRun>> {
    proptest::collection::vec(
        (0usize..16, 1usize..4, 1usize..6).prop_map(|(start, stride, count)| TaskRun {
            start,
            // a single-element run prints as a bare number, so its stride is
            // canonically 1
            stride: if count == 1 { 1 } else { stride },
            count,
        }),
        1..3,
    )
}

fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    prop_oneof![
        Just(TaskSet::all()),
        Just(TaskSet::all_bound("t")),
        arb_expr().prop_map(TaskSet::single),
        arb_runs().prop_map(|runs| TaskSet::runs(runs, Some("t"))),
        Just(TaskSet::group("g0")),
    ]
}

fn arb_unit() -> impl Strategy<Value = TimeUnit> {
    prop_oneof![
        Just(TimeUnit::Nanoseconds),
        Just(TimeUnit::Microseconds),
        Just(TimeUnit::Milliseconds),
        Just(TimeUnit::Seconds),
    ]
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (arb_taskset(), arb_expr(), arb_unit()).prop_map(|(tasks, amount, unit)| Stmt::Compute {
            tasks,
            amount,
            unit
        }),
        (
            arb_taskset(),
            arb_expr(),
            arb_expr(),
            0i32..8,
            any::<bool>()
        )
            .prop_map(|(src, dst, bytes, tag, is_async)| Stmt::Send {
                src,
                dst,
                bytes,
                tag,
                is_async,
            }),
        (
            arb_taskset(),
            proptest::option::of(arb_expr()),
            arb_expr(),
            0i32..8,
            any::<bool>()
        )
            .prop_map(|(dst, src, bytes, tag, is_async)| Stmt::Receive {
                dst,
                src,
                bytes,
                tag,
                is_async,
            }),
        arb_taskset().prop_map(|tasks| Stmt::Await { tasks }),
        arb_taskset().prop_map(|tasks| Stmt::Sync { tasks }),
        (proptest::option::of(arb_expr()), arb_taskset(), arb_expr())
            .prop_map(|(root, tasks, bytes)| Stmt::Multicast { root, tasks, bytes }),
        (
            arb_taskset(),
            prop_oneof![Just(ReduceTo::All), arb_expr().prop_map(ReduceTo::Task)],
            arb_expr()
        )
            .prop_map(|(tasks, to, bytes)| Stmt::Reduce { tasks, to, bytes }),
        Just(Stmt::ResetCounters),
        Just(Stmt::Log {
            label: "metric".to_string()
        }),
        Just(Stmt::Comment("a note".to_string())),
        (Just("grp".to_string()), arb_taskset())
            .prop_map(|(name, tasks)| Stmt::DeclareGroup { name, tasks }),
        arb_runs().prop_map(|runs| Stmt::Partition {
            parent: None,
            groups: vec![("g0".to_string(), runs)],
        }),
    ];
    leaf.prop_recursive(2, 24, 4, |inner| {
        prop_oneof![
            (arb_expr(), proptest::collection::vec(inner.clone(), 0..4))
                .prop_map(|(count, body)| Stmt::For { count, body }),
            (
                arb_var(),
                arb_expr(),
                arb_expr(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(var, from, to, body)| Stmt::ForEach {
                    var,
                    from,
                    to,
                    body
                }),
            (
                arb_cond(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner, 0..3)
            )
                .prop_map(|(cond, then_, else_)| Stmt::If { cond, then_, else_ }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on programs.
    #[test]
    fn print_parse_round_trip(
        stmts in proptest::collection::vec(arb_stmt(), 0..12),
        header in proptest::collection::vec("[a-z ]{0,20}", 0..3),
    ) {
        // header lines must be trimmed non-empty strings for exact round trip
        let header: Vec<String> = header
            .into_iter()
            .map(|h| h.trim().to_string())
            .filter(|h| !h.is_empty())
            .collect();
        let program = Program { header, stmts };
        let text = print(&program);
        let parsed = parse(&text)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{text}"));
        // Canonicalisation: the leading comment block of a program IS its
        // header (the text form cannot distinguish them), so fold leading
        // Comment statements into the header before comparing.
        let mut expect = program;
        let mut i = 0;
        while i < expect.stmts.len() {
            if let Stmt::Comment(c) = &expect.stmts[i] {
                expect.header.push(c.clone());
                i += 1;
            } else {
                break;
            }
        }
        expect.stmts.drain(..i);
        prop_assert_eq!(parsed, expect, "text was:\n{}", text);
    }

    /// The printer never emits unparseable text, even for programs that
    /// would fail validation (parsing and validation are separate stages).
    #[test]
    fn printer_output_always_parses(stmts in proptest::collection::vec(arb_stmt(), 0..20)) {
        let program = Program::new(stmts);
        let text = print(&program);
        prop_assert!(parse(&text).is_ok(), "unparseable:\n{}", text);
    }
}
