//! Std-only parallel execution layer for the commspec workspace.
//!
//! The pipeline's reduction stages — the inter-rank binary-tree merge, the
//! per-rank traversal fan-outs of Algorithms 1 and 2, and the bench harness
//! itself — are embarrassingly parallel *within a step* but must produce
//! output that is independent of the thread count. This crate provides the
//! three primitives they share:
//!
//! * [`par_map`] / [`par_map_indexed`] — order-preserving chunked map over a
//!   scoped worker pool. Workers claim chunks from an atomic cursor and park
//!   results in per-index slots, so the output `Vec` is in input order no
//!   matter which worker computed which element.
//! * [`tree_reduce`] — binary-tree reduction with a **fixed combine order**:
//!   level `k` pairs elements `(0,1), (2,3), …` exactly as the sequential
//!   loop does, an odd trailing element passes through unpaired, and the
//!   next level operates on the results in index order. Only the *timing* of
//!   the pair combines varies with the thread count, never their operands,
//!   so the result is identical for any `threads`.
//! * [`threads`] — thread-count resolution: an explicit process-wide
//!   override ([`set_threads`], used by `--threads N` CLI flags and the
//!   campaign `pipeline_threads` knob) wins over the `COMMSPEC_THREADS`
//!   environment variable, which wins over [`available_cores`].
//!
//! `threads <= 1` is a hard sequential fallback: no threads are spawned and
//! the exact sequential control flow runs on the caller's stack, so a
//! single-threaded run is byte-for-byte the pre-parallel code path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`threads`] when no explicit override
/// is set.
pub const THREADS_ENV: &str = "COMMSPEC_THREADS";

/// Process-wide thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of hardware threads the OS reports for this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Resolve the pool width: explicit [`set_threads`] override, then
/// `COMMSPEC_THREADS`, then [`available_cores`].
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    env_threads().unwrap_or_else(available_cores)
}

/// Set the process-wide thread-count override (`0` clears it, falling back
/// to `COMMSPEC_THREADS` / core count). Returns the previous override.
pub fn set_threads(n: usize) -> usize {
    THREAD_OVERRIDE.swap(n, Ordering::Relaxed)
}

/// RAII guard restoring the previous thread-count override on drop.
///
/// Lets a caller (a test, or one campaign run inside a larger process)
/// scope a thread-count change without leaking it.
pub struct ThreadsGuard {
    prev: usize,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Set the override for the lifetime of the returned guard.
pub fn scoped_threads(n: usize) -> ThreadsGuard {
    ThreadsGuard {
        prev: set_threads(n),
    }
}

/// Order-preserving parallel map over indices `0..len`.
///
/// With `threads <= 1` (or a trivially small input) this is a plain
/// sequential `(0..len).map(f).collect()` on the caller's stack. Otherwise
/// `min(threads, len)` scoped workers claim chunks of indices from an
/// atomic cursor and write each result into its own slot, so the returned
/// `Vec` is in index order regardless of scheduling. A panic in `f`
/// propagates to the caller when the scope joins.
pub fn par_map_indexed<U, F>(threads: usize, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let workers = threads.min(len);
    // Chunked claiming: amortise the atomic op over several items while
    // keeping enough chunks (~4 per worker) for load balance.
    let chunk = (len / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                for (slot, i) in slots[start..end].iter().zip(start..end) {
                    let v = f(i);
                    *slot.lock().unwrap() = Some(v);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("pool invariant: every slot filled")
        })
        .collect()
}

/// Order-preserving parallel map consuming `items` by value.
pub fn par_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    par_map_indexed(threads, cells.len(), |i| {
        f(cells[i]
            .lock()
            .unwrap()
            .take()
            .expect("pool invariant: each item taken once"))
    })
}

/// Binary-tree reduction with deterministic combine order.
///
/// Every level pairs `(0,1), (2,3), …` in index order — the same pairing
/// the sequential fallback uses — and an odd trailing element passes
/// through to the next level unpaired, so for an associative-but-not-
/// commutative `combine` the result is *identical* for every `threads`
/// value; only wall-clock time changes. Returns `None` for empty input.
///
/// Level buffers are allocated once and ping-ponged between rounds
/// (sequentially: one reused `next` buffer swapped with the input), so the
/// reduction allocates no per-round vectors.
pub fn tree_reduce<T, F>(threads: usize, items: Vec<T>, combine: F) -> Option<T>
where
    T: Send,
    F: Fn(T, T) -> T + Sync,
{
    if items.is_empty() {
        return None;
    }
    if threads <= 1 || items.len() <= 2 {
        return Some(tree_reduce_seq(items, &combine));
    }
    // Ping-pong slot buffers, sized once for the first (widest) level.
    let mut cur: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let mut nxt: Vec<Mutex<Option<T>>> = (0..cur.len().div_ceil(2))
        .map(|_| Mutex::new(None))
        .collect();
    let mut len = cur.len();
    while len > 1 {
        let pairs = len / 2;
        let workers = threads.min(pairs);
        let cursor = AtomicUsize::new(0);
        let (cursor_ref, cur_ref, nxt_ref, cmb) = (&cursor, &cur, &nxt, &combine);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    let k = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    if k >= pairs {
                        break;
                    }
                    let a = cur_ref[2 * k].lock().unwrap().take().unwrap();
                    let b = cur_ref[2 * k + 1].lock().unwrap().take().unwrap();
                    *nxt_ref[k].lock().unwrap() = Some(cmb(a, b));
                });
            }
        });
        let mut new_len = pairs;
        if len % 2 == 1 {
            let tail = cur[len - 1].lock().unwrap().take().unwrap();
            *nxt[pairs].lock().unwrap() = Some(tail);
            new_len += 1;
        }
        std::mem::swap(&mut cur, &mut nxt);
        len = new_len;
    }
    let result = cur[0].lock().unwrap().take();
    result
}

/// The sequential tree reduction: identical pairing, one reused level
/// buffer swapped with the input each round.
fn tree_reduce_seq<T, F>(mut items: Vec<T>, combine: &F) -> T
where
    F: Fn(T, T) -> T,
{
    let mut next: Vec<T> = Vec::with_capacity(items.len().div_ceil(2));
    while items.len() > 1 {
        let mut it = items.drain(..);
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        drop(it);
        std::mem::swap(&mut items, &mut next);
    }
    items.pop().expect("non-empty input")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 8] {
            let out = par_map_indexed(threads, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_by_value_matches_sequential() {
        let items: Vec<String> = (0..37).map(|i| format!("item-{i}")).collect();
        let expect: Vec<usize> = items.iter().map(|s| s.len()).collect();
        for threads in [1, 2, 8] {
            assert_eq!(par_map(threads, items.clone(), |s| s.len()), expect);
        }
    }

    #[test]
    fn tree_reduce_is_thread_count_invariant() {
        // String concatenation is associative but NOT commutative: any
        // deviation from the fixed pairing order changes the result.
        for n in [0usize, 1, 2, 3, 7, 8, 9, 64, 255, 256] {
            let items: Vec<String> = (0..n).map(|i| format!("[{i}]")).collect();
            let seq = tree_reduce(1, items.clone(), |a, b| a + &b);
            for threads in [2, 3, 8] {
                let par = tree_reduce(threads, items.clone(), |a, b| a + &b);
                assert_eq!(par, seq, "n={n} threads={threads}");
            }
            if n == 0 {
                assert!(seq.is_none());
            } else {
                // The fixed pairing keeps elements in index order, so the
                // concatenation is simply [0][1]…[n-1].
                let expect: String = (0..n).map(|i| format!("[{i}]")).collect();
                assert_eq!(seq.unwrap(), expect);
            }
        }
    }

    #[test]
    fn tree_reduce_pairing_matches_sequential_loop() {
        // Combine into nested parens to observe the association tree shape.
        let items: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let shape = |t: usize| tree_reduce(t, items.clone(), |a, b| format!("({a}{b})")).unwrap();
        // Level 1: (01) (23) 4 ; level 2: ((01)(23)) 4 ; level 3: (((01)(23))4)
        assert_eq!(shape(1), "(((01)(23))4)");
        assert_eq!(shape(8), "(((01)(23))4)");
    }

    /// Tests that touch the process-global override must not interleave.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn threads_resolution_order() {
        let _l = global_lock();
        // Override wins over env and cores.
        let g = scoped_threads(5);
        assert_eq!(threads(), 5);
        drop(g);
        // After the guard drops the previous (unset) state is restored.
        assert_ne!(THREAD_OVERRIDE.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn scoped_guard_nests() {
        let _l = global_lock();
        let outer = scoped_threads(3);
        {
            let _inner = scoped_threads(7);
            assert_eq!(threads(), 7);
        }
        assert_eq!(threads(), 3);
        drop(outer);
    }

    #[test]
    fn par_map_runs_on_multiple_threads_when_asked() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let seen: StdMutex<HashSet<std::thread::ThreadId>> = StdMutex::new(HashSet::new());
        let barrier = std::sync::Barrier::new(4);
        par_map_indexed(4, 4, |i| {
            // Rendezvous forces all four items onto distinct live workers.
            barrier.wait();
            seen.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert_eq!(seen.lock().unwrap().len(), 4);
    }
}
