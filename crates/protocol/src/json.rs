//! Minimal JSON value, writer, and parser — the repo's one hand-rolled
//! JSON implementation.
//!
//! The repo is std-only (no serde); this covers exactly the subset the
//! wire protocol and the `commspec-perf` report schema use — objects,
//! arrays, strings, finite numbers, booleans, and null. Two writers share
//! the one value type: [`Json::to_compact`] emits the single-line form the
//! line-delimited wire protocol requires, while `Display` pretty-prints
//! for committed reports. Object keys keep insertion order, so both forms
//! are byte-stable across runs.

use std::fmt;

/// A JSON value. Object keys keep insertion order so the emitted report is
/// byte-stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&String> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as an exact unsigned integer, if this is a
    /// non-negative whole number small enough for f64 to represent exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 9e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// Single-line rendering with no inter-token whitespace: the framing
    /// the line-delimited wire protocol requires (a value never contains a
    /// raw newline — newlines inside strings are escaped).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => {
                use fmt::Write as _;
                let _ = write!(out, "{self}");
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write_compact(out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    return write!(f, "[]");
                }
                writeln!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    write!(f, "{pad}  ")?;
                    item.write(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(f, "{pad}]")
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    return write!(f, "{{}}");
                }
                writeln!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    write!(f, "{pad}  \"{k}\": ")?;
                    v.write(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < members.len() { "," } else { "" })?;
                }
                write!(f, "{pad}}}")
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, 0)
    }
}

/// Parse a JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| x.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let s = &bytes[*pos..];
                let ch = std::str::from_utf8(s)
                    .map_err(|e| e.to_string())?
                    .chars()
                    .next()
                    .unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_schema_subset() {
        let v = Json::Obj(vec![
            ("schema".into(), Json::Str("commspec-perf/v1".into())),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "suites".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("compress_r64".into())),
                    ("speedup".into(), Json::Num(2.125)),
                    ("current_ns".into(), Json::Num(123456789.0)),
                ])]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_survive_a_roundtrip() {
        let v = Json::Str("a \"quoted\" \\ line\nbreak".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("12 34").is_err(), "trailing data");
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1e999").is_err(), "non-finite numbers are rejected");
    }

    #[test]
    fn integers_print_without_a_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn compact_form_is_single_line_and_roundtrips() {
        let v = Json::Obj(vec![
            ("type".into(), Json::Str("status".into())),
            ("line".into(), Json::Str("two\nlines\r\ttab".into())),
            ("n".into(), Json::Num(7.0)),
            ("ok".into(), Json::Bool(true)),
            ("items".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        let line = v.to_compact();
        assert!(!line.contains('\n'), "compact form must be one line");
        assert!(!line.contains(": "), "no inter-token whitespace");
        assert_eq!(parse(&line).unwrap(), v);
        assert_eq!(
            Json::Arr(vec![]).to_compact(),
            "[]",
            "empty containers stay tight"
        );
        assert_eq!(Json::Obj(vec![]).to_compact(), "{}");
    }

    #[test]
    fn bool_and_u64_accessors() {
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Num(1.0).as_bool(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(2.5).as_u64(), None);
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }
}
