//! The versioned `commspec-server` wire protocol: typed request/response
//! enums and their line-delimited JSON encoding.
//!
//! Framing is one JSON object per `\n`-terminated line (strings escape
//! embedded newlines, so a value never spans lines). Every object carries a
//! `type` discriminator; the remaining fields are flat or shallowly nested.
//!
//! **Versioning and forward compatibility.** A connection opens with a
//! `hello` carrying `proto_version`; the server answers `hello_ok` with its
//! own version or an `error` with code `proto-version`. Within a version,
//! the compat rules are:
//!
//! * **Unknown fields are tolerated.** Decoders read the fields they know
//!   and ignore the rest, so a v1.x peer can add fields without breaking
//!   v1.0. Golden fixtures in `tests/wire_compat.rs` pin this.
//! * **Unknown variants are rejected.** A `type` value the decoder does not
//!   know is a [`WireError::UnknownVariant`], because a request whose
//!   *meaning* is unknown cannot be safely half-understood. The server
//!   answers with an `error` (code `unknown-variant`) and keeps the
//!   connection open.

use crate::json::{parse, Json};

/// Protocol version spoken by this build. Bumped only for changes that
/// break the rules above (removed fields, changed meanings).
pub const PROTO_VERSION: u32 = 1;

/// Decode failure for one wire line.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The line is not a JSON object (torn line, bad framing).
    Syntax(String),
    /// The `type` discriminator names a variant this decoder does not know.
    UnknownVariant(String),
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but has the wrong shape or an invalid value.
    Bad(&'static str, String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Syntax(e) => write!(f, "malformed wire line: {e}"),
            WireError::UnknownVariant(t) => write!(f, "unknown message type `{t}`"),
            WireError::Missing(k) => write!(f, "missing required field `{k}`"),
            WireError::Bad(k, e) => write!(f, "bad field `{k}`: {e}"),
        }
    }
}

impl WireError {
    /// Stable machine-readable code for the matching `error` response.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Syntax(_) => "syntax",
            WireError::UnknownVariant(_) => "unknown-variant",
            WireError::Missing(_) => "missing-field",
            WireError::Bad(..) => "bad-field",
        }
    }
}

/// Parameters of a single trace / generate / simulate job. Field meanings
/// mirror the batch CLI flags so the daemon's artifacts are byte-identical
/// to `commgen`'s for the same inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct JobParams {
    /// Application registry name.
    pub app: String,
    /// World size.
    pub ranks: u32,
    /// NPB problem class (`S|W|A|B|C`).
    pub class: String,
    /// Network model (`ideal|bgl|ethernet`).
    pub network: String,
    /// Iteration-count override (absent = class default).
    pub iterations: Option<u32>,
    /// Run Algorithm 1 (collective alignment) during generation.
    pub align: bool,
    /// Run Algorithm 2 (wildcard resolution) during generation.
    pub resolve: bool,
    /// Emit provenance comments in the generated program.
    pub comments: bool,
}

impl JobParams {
    /// Params for `app` at `ranks` with batch-CLI defaults (class S, bgl
    /// network, align+resolve on, comments off).
    pub fn new(app: impl Into<String>, ranks: u32) -> JobParams {
        JobParams {
            app: app.into(),
            ranks,
            class: "S".to_string(),
            network: "bgl".to_string(),
            iterations: None,
            align: true,
            resolve: true,
            comments: false,
        }
    }
}

/// How a request names a job: by server-assigned id, or by the
/// client-chosen tag sent with the submission.
#[derive(Clone, Debug, PartialEq)]
pub enum JobRef {
    /// The id returned in `submitted`.
    Id(String),
    /// The client's own `tag` from the submitting request.
    Tag(String),
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version negotiation; must be the first message on a connection.
    Hello {
        /// Protocol version the client speaks.
        proto_version: u32,
        /// Client identity for multi-tenant accounting (queue caps, rate
        /// limits, per-client counters).
        client: String,
    },
    /// Submit a trace job (produces the folded trace text).
    Trace {
        /// Job parameters.
        params: JobParams,
        /// Optional client-chosen handle for later `status` requests.
        tag: Option<String>,
    },
    /// Submit a generate job (produces the coNCePTuaL program text).
    Generate {
        /// Job parameters.
        params: JobParams,
        /// Optional client-chosen handle.
        tag: Option<String>,
    },
    /// Submit a simulate job (executes the generated benchmark; produces
    /// the mpiP profile and timing metrics).
    Simulate {
        /// Job parameters.
        params: JobParams,
        /// Optional client-chosen handle.
        tag: Option<String>,
    },
    /// Submit a whole campaign matrix (the text of a matrix file).
    Campaign {
        /// Matrix document, as `commbench --matrix` would read it.
        matrix: String,
        /// Optional client-chosen handle.
        tag: Option<String>,
    },
    /// Query a job's state (and result once terminal).
    Status {
        /// Which job.
        job: JobRef,
        /// Block until the job reaches a terminal state before answering.
        wait: bool,
    },
    /// Cancel a queued job (running jobs cannot be interrupted).
    CancelJob {
        /// Which job.
        job: JobRef,
    },
    /// Request server-wide and per-client statistics.
    Stats,
    /// Ask the server to finish in-flight work and exit cleanly.
    Shutdown,
    /// Worker plane: register this connection's peer as a fleet worker.
    /// The server answers `worker_ok` with the assigned worker id and the
    /// lease TTL the worker must heartbeat within.
    WorkerRegister {
        /// Worker-chosen name (the server suffixes it into a unique id).
        worker: String,
    },
    /// Worker plane: ask for one job lease. Non-blocking — the server
    /// answers `lease_grant` or `no_work`; the worker polls.
    LeaseRequest {
        /// Assigned worker id from `worker_ok`.
        worker: String,
    },
    /// Worker plane: the combined heartbeat / lease renewal. Refreshes
    /// the worker's liveness window and renews every listed lease; the
    /// `heartbeat_ok` answer names the leases that are no longer held.
    Heartbeat {
        /// Assigned worker id.
        worker: String,
        /// Leases the worker believes it holds.
        leases: Vec<String>,
    },
    /// Worker plane: report a finished lease. The result carries the
    /// per-artifact FNV checksums the coordinator verifies before
    /// accepting (a stale or duplicate report is discarded, not an error).
    JobComplete {
        /// Assigned worker id.
        worker: String,
        /// The lease being completed.
        lease: String,
        /// The job the lease covered.
        job: String,
        /// Terminal payload, artifacts checksummed.
        result: JobResult,
    },
    /// Worker plane: report a failed lease, classified by the worker as
    /// transient (worth a retry elsewhere) or deterministic.
    JobFail {
        /// Assigned worker id.
        worker: String,
        /// The lease being failed.
        lease: String,
        /// The job the lease covered.
        job: String,
        /// Failure message.
        error: String,
        /// Worker's classification: true = transient (retry), false =
        /// deterministic (fail the job).
        transient: bool,
    },
}

/// One named artifact of a finished job, checksummed for end-to-end
/// integrity (`fnv` is the 16-hex-digit FNV-1a of `text`).
#[derive(Clone, Debug, PartialEq)]
pub struct Artifact {
    /// Artifact name (`trace.st`, `program.ncptl`, `profile.mpip`).
    pub name: String,
    /// FNV-1a checksum of `text`, 16 lowercase hex digits.
    pub fnv: String,
    /// The artifact body.
    pub text: String,
}

/// The terminal payload of a successful job.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct JobResult {
    /// Job kind (`trace|generate|simulate|campaign`).
    pub kind: String,
    /// Was the trace served from a cache (memory or disk)?
    pub cached: bool,
    /// Simulated wall-clock of the traced application, in ns.
    pub t_app_ns: Option<u64>,
    /// Simulated wall-clock of the generated benchmark, in ns.
    pub t_gen_ns: Option<u64>,
    /// Timing accuracy `|t_gen - t_app| / t_app` in percent.
    pub err_pct: Option<f64>,
    /// Campaign summary: successful jobs.
    pub ok: Option<u64>,
    /// Campaign summary: failed jobs.
    pub failed: Option<u64>,
    /// Campaign summary: timed-out jobs.
    pub timed_out: Option<u64>,
    /// Campaign summary: mean absolute timing error (percent).
    pub mape: Option<f64>,
    /// Checksummed artifacts.
    pub artifacts: Vec<Artifact>,
}

/// Counters for one client, name-sorted.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ClientStats {
    /// Client identity (from `hello`).
    pub client: String,
    /// `(counter, count)` pairs, sorted by counter name.
    pub counters: Vec<(String, u64)>,
}

/// Fleet-coordination counters (the worker plane). All zero until a
/// worker registers; the stats encoding omits the `fleet` object while it
/// is all-default, so a fleet-less server's stats bytes are unchanged from
/// v1.0 and a v1.0 stats line decodes to default counters.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FleetStats {
    /// Worker registrations since startup.
    pub workers_seen: u64,
    /// Workers currently inside their liveness window.
    pub workers_live: u64,
    /// Leases granted since startup.
    pub leases_granted: u64,
    /// Lease renewals (heartbeats over held leases).
    pub leases_renewed: u64,
    /// Leases expired on missed heartbeats or worker disconnect.
    pub leases_expired: u64,
    /// Jobs requeued for another worker after a lease expired.
    pub leases_reassigned: u64,
    /// Jobs quarantined after killing too many distinct workers.
    pub jobs_quarantined: u64,
    /// Stale or duplicate completion reports discarded idempotently.
    pub completions_discarded: u64,
}

/// Server-wide statistics.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StatsReport {
    /// Jobs currently queued.
    pub jobs_queued: u64,
    /// Jobs currently running.
    pub jobs_running: u64,
    /// Jobs finished successfully since startup (replays included).
    pub jobs_done: u64,
    /// Jobs finished in failure since startup.
    pub jobs_failed: u64,
    /// Jobs cancelled since startup.
    pub jobs_cancelled: u64,
    /// Jobs served from the journal without re-execution.
    pub jobs_replayed: u64,
    /// In-memory trace-cache hits.
    pub mem_hits: u64,
    /// In-memory misses that fell through to disk.
    pub mem_misses: u64,
    /// Disk-cache hits (loaded and promoted to memory).
    pub disk_hits: u64,
    /// LRU evictions from the in-memory cache.
    pub evictions: u64,
    /// Entries resident in the in-memory cache.
    pub mem_entries: u64,
    /// Bytes resident in the in-memory cache.
    pub mem_bytes: u64,
    /// Fleet-coordination counters (zero while no worker has registered).
    pub fleet: FleetStats,
    /// Per-client counters.
    pub clients: Vec<ClientStats>,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Successful version negotiation.
    HelloOk {
        /// Protocol version the server speaks.
        proto_version: u32,
        /// Server identity string.
        server: String,
    },
    /// A submission was accepted (or served straight from the journal).
    Submitted {
        /// Server-assigned job id (stable across resubmission and restart).
        job: String,
        /// Job kind.
        kind: String,
        /// Echo of the client's tag, if any.
        tag: Option<String>,
        /// The job's terminal state was replayed from the journal; no work
        /// was scheduled.
        replayed: bool,
    },
    /// Answer to `status`.
    JobStatus {
        /// Job id.
        job: String,
        /// `queued|running|done|failed|cancelled`.
        state: String,
        /// Echo of the submission tag, if any.
        tag: Option<String>,
        /// Failure message when `state` is `failed`.
        error: Option<String>,
        /// Result payload when `state` is `done`.
        result: Option<JobResult>,
    },
    /// Answer to `cancel_job`.
    Cancelled {
        /// Job id.
        job: String,
        /// Did the cancellation take effect (job was still queued)?
        ok: bool,
        /// The job's state after the attempt.
        state: String,
    },
    /// Answer to `stats`.
    Stats(StatsReport),
    /// Any request-level failure.
    Error {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable description.
        message: String,
    },
    /// Acknowledgement of `shutdown`; the last line the server writes.
    Bye,
    /// Successful `worker_register`.
    WorkerOk {
        /// Server-assigned worker id (echo this in every worker-plane
        /// request).
        worker: String,
        /// Lease TTL in milliseconds: a lease not renewed within this
        /// window expires and its job is reassigned.
        lease_ttl_ms: u64,
    },
    /// Answer to `lease_request`: run the enclosed job and report within
    /// the TTL.
    LeaseGrant {
        /// Lease id (unique per coordinator process).
        lease: String,
        /// Content-hashed job id.
        job: String,
        /// Job kind (`trace|generate|simulate|campaign`).
        kind: String,
        /// Parameters for single-pipeline kinds.
        params: Option<JobParams>,
        /// Matrix document for campaign jobs.
        matrix: Option<String>,
        /// Lease TTL in milliseconds.
        ttl_ms: u64,
    },
    /// Answer to `lease_request` when nothing is leasable.
    NoWork {
        /// Suggested poll delay in milliseconds.
        retry_ms: u64,
        /// The server is shutting down: finish held leases and exit.
        draining: bool,
    },
    /// Answer to `heartbeat`: the renewed TTL plus any listed leases the
    /// worker no longer holds (expired or reassigned — abandon them).
    HeartbeatOk {
        /// Lease TTL in milliseconds, from now.
        ttl_ms: u64,
        /// Leases from the request that are no longer held.
        expired: Vec<String>,
    },
    /// Answer to `job_complete` / `job_fail`.
    CompleteOk {
        /// The job the report named.
        job: String,
        /// Whether the report was accepted. A stale lease, duplicate
        /// report, or checksum mismatch is discarded idempotently with
        /// `accepted: false` — never an `error`.
        accepted: bool,
        /// Why a report was discarded, when it was.
        reason: Option<String>,
    },
}

// --------------------------------------------------------------- encoding

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn u(v: u64) -> Json {
    Json::Num(v as f64)
}

fn push_opt(members: &mut Vec<(&str, Json)>, key: &'static str, v: &Option<String>) {
    if let Some(v) = v {
        members.push((key, s(v)));
    }
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|x| s(x)).collect())
}

fn params_fields(members: &mut Vec<(&str, Json)>, p: &JobParams) {
    members.push(("app", s(&p.app)));
    members.push(("ranks", u(p.ranks as u64)));
    members.push(("class", s(&p.class)));
    members.push(("network", s(&p.network)));
    if let Some(i) = p.iterations {
        members.push(("iterations", u(i as u64)));
    }
    members.push(("align", Json::Bool(p.align)));
    members.push(("resolve", Json::Bool(p.resolve)));
    members.push(("comments", Json::Bool(p.comments)));
}

fn job_ref_fields(members: &mut Vec<(&str, Json)>, job: &JobRef) {
    match job {
        JobRef::Id(id) => members.push(("job", s(id))),
        JobRef::Tag(tag) => members.push(("tag", s(tag))),
    }
}

impl Request {
    /// The `type` discriminator this request encodes with.
    pub fn type_name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Trace { .. } => "trace",
            Request::Generate { .. } => "generate",
            Request::Simulate { .. } => "simulate",
            Request::Campaign { .. } => "campaign",
            Request::Status { .. } => "status",
            Request::CancelJob { .. } => "cancel_job",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::WorkerRegister { .. } => "worker_register",
            Request::LeaseRequest { .. } => "lease_request",
            Request::Heartbeat { .. } => "heartbeat",
            Request::JobComplete { .. } => "job_complete",
            Request::JobFail { .. } => "job_fail",
        }
    }

    /// Encode as a JSON value (`type` first, then the variant's fields).
    pub fn to_json(&self) -> Json {
        let mut m: Vec<(&str, Json)> = vec![("type", s(self.type_name()))];
        match self {
            Request::Hello {
                proto_version,
                client,
            } => {
                m.push(("proto_version", u(*proto_version as u64)));
                m.push(("client", s(client)));
            }
            Request::Trace { params, tag }
            | Request::Generate { params, tag }
            | Request::Simulate { params, tag } => {
                params_fields(&mut m, params);
                push_opt(&mut m, "tag", tag);
            }
            Request::Campaign { matrix, tag } => {
                m.push(("matrix", s(matrix)));
                push_opt(&mut m, "tag", tag);
            }
            Request::Status { job, wait } => {
                job_ref_fields(&mut m, job);
                m.push(("wait", Json::Bool(*wait)));
            }
            Request::CancelJob { job } => job_ref_fields(&mut m, job),
            Request::Stats | Request::Shutdown => {}
            Request::WorkerRegister { worker } | Request::LeaseRequest { worker } => {
                m.push(("worker", s(worker)));
            }
            Request::Heartbeat { worker, leases } => {
                m.push(("worker", s(worker)));
                m.push(("leases", str_arr(leases)));
            }
            Request::JobComplete {
                worker,
                lease,
                job,
                result,
            } => {
                m.push(("worker", s(worker)));
                m.push(("lease", s(lease)));
                m.push(("job", s(job)));
                m.push(("result", encode_result(result)));
            }
            Request::JobFail {
                worker,
                lease,
                job,
                error,
                transient,
            } => {
                m.push(("worker", s(worker)));
                m.push(("lease", s(lease)));
                m.push(("job", s(job)));
                m.push(("error", s(error)));
                m.push(("transient", Json::Bool(*transient)));
            }
        }
        obj(m)
    }

    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_compact()
    }

    /// Decode one wire line.
    pub fn from_line(line: &str) -> Result<Request, WireError> {
        let v = parse(line.trim()).map_err(WireError::Syntax)?;
        Request::from_json(&v)
    }

    /// Decode from a JSON value. Unknown fields are ignored; an unknown
    /// `type` is rejected.
    pub fn from_json(v: &Json) -> Result<Request, WireError> {
        let t = req_str(v, "type")?;
        match t.as_str() {
            "hello" => Ok(Request::Hello {
                proto_version: req_u64(v, "proto_version")? as u32,
                client: req_str(v, "client")?,
            }),
            "trace" => Ok(Request::Trace {
                params: decode_params(v)?,
                tag: opt_str(v, "tag")?,
            }),
            "generate" => Ok(Request::Generate {
                params: decode_params(v)?,
                tag: opt_str(v, "tag")?,
            }),
            "simulate" => Ok(Request::Simulate {
                params: decode_params(v)?,
                tag: opt_str(v, "tag")?,
            }),
            "campaign" => Ok(Request::Campaign {
                matrix: req_str(v, "matrix")?,
                tag: opt_str(v, "tag")?,
            }),
            "status" => Ok(Request::Status {
                job: decode_job_ref(v)?,
                wait: opt_bool(v, "wait")?.unwrap_or(false),
            }),
            "cancel_job" => Ok(Request::CancelJob {
                job: decode_job_ref(v)?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "worker_register" => Ok(Request::WorkerRegister {
                worker: req_str(v, "worker")?,
            }),
            "lease_request" => Ok(Request::LeaseRequest {
                worker: req_str(v, "worker")?,
            }),
            "heartbeat" => Ok(Request::Heartbeat {
                worker: req_str(v, "worker")?,
                leases: opt_str_arr(v, "leases")?,
            }),
            "job_complete" => Ok(Request::JobComplete {
                worker: req_str(v, "worker")?,
                lease: req_str(v, "lease")?,
                job: req_str(v, "job")?,
                result: decode_result(v.get("result").ok_or(WireError::Missing("result"))?)?,
            }),
            "job_fail" => Ok(Request::JobFail {
                worker: req_str(v, "worker")?,
                lease: req_str(v, "lease")?,
                job: req_str(v, "job")?,
                error: req_str(v, "error")?,
                transient: opt_bool(v, "transient")?.unwrap_or(false),
            }),
            other => Err(WireError::UnknownVariant(other.to_string())),
        }
    }
}

impl Response {
    /// The `type` discriminator this response encodes with.
    pub fn type_name(&self) -> &'static str {
        match self {
            Response::HelloOk { .. } => "hello_ok",
            Response::Submitted { .. } => "submitted",
            Response::JobStatus { .. } => "job_status",
            Response::Cancelled { .. } => "cancelled",
            Response::Stats(_) => "stats",
            Response::Error { .. } => "error",
            Response::Bye => "bye",
            Response::WorkerOk { .. } => "worker_ok",
            Response::LeaseGrant { .. } => "lease_grant",
            Response::NoWork { .. } => "no_work",
            Response::HeartbeatOk { .. } => "heartbeat_ok",
            Response::CompleteOk { .. } => "complete_ok",
        }
    }

    /// Encode as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut m: Vec<(&str, Json)> = vec![("type", s(self.type_name()))];
        match self {
            Response::HelloOk {
                proto_version,
                server,
            } => {
                m.push(("proto_version", u(*proto_version as u64)));
                m.push(("server", s(server)));
            }
            Response::Submitted {
                job,
                kind,
                tag,
                replayed,
            } => {
                m.push(("job", s(job)));
                m.push(("kind", s(kind)));
                push_opt(&mut m, "tag", tag);
                m.push(("replayed", Json::Bool(*replayed)));
            }
            Response::JobStatus {
                job,
                state,
                tag,
                error,
                result,
            } => {
                m.push(("job", s(job)));
                m.push(("state", s(state)));
                push_opt(&mut m, "tag", tag);
                push_opt(&mut m, "error", error);
                if let Some(r) = result {
                    m.push(("result", encode_result(r)));
                }
            }
            Response::Cancelled { job, ok, state } => {
                m.push(("job", s(job)));
                m.push(("ok", Json::Bool(*ok)));
                m.push(("state", s(state)));
            }
            Response::Stats(r) => encode_stats(&mut m, r),
            Response::Error { code, message } => {
                m.push(("code", s(code)));
                m.push(("message", s(message)));
            }
            Response::Bye => {}
            Response::WorkerOk {
                worker,
                lease_ttl_ms,
            } => {
                m.push(("worker", s(worker)));
                m.push(("lease_ttl_ms", u(*lease_ttl_ms)));
            }
            Response::LeaseGrant {
                lease,
                job,
                kind,
                params,
                matrix,
                ttl_ms,
            } => {
                m.push(("lease", s(lease)));
                m.push(("job", s(job)));
                m.push(("kind", s(kind)));
                if let Some(p) = params {
                    params_fields(&mut m, p);
                }
                push_opt(&mut m, "matrix", matrix);
                m.push(("ttl_ms", u(*ttl_ms)));
            }
            Response::NoWork { retry_ms, draining } => {
                m.push(("retry_ms", u(*retry_ms)));
                m.push(("draining", Json::Bool(*draining)));
            }
            Response::HeartbeatOk { ttl_ms, expired } => {
                m.push(("ttl_ms", u(*ttl_ms)));
                m.push(("expired", str_arr(expired)));
            }
            Response::CompleteOk {
                job,
                accepted,
                reason,
            } => {
                m.push(("job", s(job)));
                m.push(("accepted", Json::Bool(*accepted)));
                push_opt(&mut m, "reason", reason);
            }
        }
        obj(m)
    }

    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_compact()
    }

    /// Decode one wire line.
    pub fn from_line(line: &str) -> Result<Response, WireError> {
        let v = parse(line.trim()).map_err(WireError::Syntax)?;
        Response::from_json(&v)
    }

    /// Decode from a JSON value (same compat rules as requests).
    pub fn from_json(v: &Json) -> Result<Response, WireError> {
        let t = req_str(v, "type")?;
        match t.as_str() {
            "hello_ok" => Ok(Response::HelloOk {
                proto_version: req_u64(v, "proto_version")? as u32,
                server: req_str(v, "server")?,
            }),
            "submitted" => Ok(Response::Submitted {
                job: req_str(v, "job")?,
                kind: req_str(v, "kind")?,
                tag: opt_str(v, "tag")?,
                replayed: opt_bool(v, "replayed")?.unwrap_or(false),
            }),
            "job_status" => Ok(Response::JobStatus {
                job: req_str(v, "job")?,
                state: req_str(v, "state")?,
                tag: opt_str(v, "tag")?,
                error: opt_str(v, "error")?,
                result: match v.get("result") {
                    Some(r) => Some(decode_result(r)?),
                    None => None,
                },
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: req_str(v, "job")?,
                ok: opt_bool(v, "ok")?.unwrap_or(false),
                state: req_str(v, "state")?,
            }),
            "stats" => Ok(Response::Stats(decode_stats(v)?)),
            "error" => Ok(Response::Error {
                code: req_str(v, "code")?,
                message: req_str(v, "message")?,
            }),
            "bye" => Ok(Response::Bye),
            "worker_ok" => Ok(Response::WorkerOk {
                worker: req_str(v, "worker")?,
                lease_ttl_ms: req_u64(v, "lease_ttl_ms")?,
            }),
            "lease_grant" => Ok(Response::LeaseGrant {
                lease: req_str(v, "lease")?,
                job: req_str(v, "job")?,
                kind: req_str(v, "kind")?,
                // Single-pipeline grants carry flat params (an `app` field,
                // like the submit requests); campaign grants carry `matrix`.
                params: match v.get("app") {
                    Some(_) => Some(decode_params(v)?),
                    None => None,
                },
                matrix: opt_str(v, "matrix")?,
                ttl_ms: req_u64(v, "ttl_ms")?,
            }),
            "no_work" => Ok(Response::NoWork {
                retry_ms: opt_u64(v, "retry_ms")?.unwrap_or(0),
                draining: opt_bool(v, "draining")?.unwrap_or(false),
            }),
            "heartbeat_ok" => Ok(Response::HeartbeatOk {
                ttl_ms: req_u64(v, "ttl_ms")?,
                expired: opt_str_arr(v, "expired")?,
            }),
            "complete_ok" => Ok(Response::CompleteOk {
                job: req_str(v, "job")?,
                accepted: opt_bool(v, "accepted")?.unwrap_or(false),
                reason: opt_str(v, "reason")?,
            }),
            other => Err(WireError::UnknownVariant(other.to_string())),
        }
    }
}

fn encode_result(r: &JobResult) -> Json {
    let mut m: Vec<(&str, Json)> = vec![("kind", s(&r.kind)), ("cached", Json::Bool(r.cached))];
    let opt_u = |m: &mut Vec<(&str, Json)>, k: &'static str, v: Option<u64>| {
        if let Some(v) = v {
            m.push((k, u(v)));
        }
    };
    let opt_f = |m: &mut Vec<(&str, Json)>, k: &'static str, v: Option<f64>| {
        if let Some(v) = v {
            m.push((k, Json::Num(v)));
        }
    };
    opt_u(&mut m, "t_app_ns", r.t_app_ns);
    opt_u(&mut m, "t_gen_ns", r.t_gen_ns);
    opt_f(&mut m, "err_pct", r.err_pct);
    opt_u(&mut m, "ok", r.ok);
    opt_u(&mut m, "failed", r.failed);
    opt_u(&mut m, "timed_out", r.timed_out);
    opt_f(&mut m, "mape", r.mape);
    m.push((
        "artifacts",
        Json::Arr(
            r.artifacts
                .iter()
                .map(|a| {
                    obj(vec![
                        ("name", s(&a.name)),
                        ("fnv", s(&a.fnv)),
                        ("text", s(&a.text)),
                    ])
                })
                .collect(),
        ),
    ));
    obj(m)
}

fn decode_result(v: &Json) -> Result<JobResult, WireError> {
    let mut artifacts = Vec::new();
    if let Some(items) = v.get("artifacts").and_then(Json::as_arr) {
        for a in items {
            artifacts.push(Artifact {
                name: req_str(a, "name")?,
                fnv: req_str(a, "fnv")?,
                text: req_str(a, "text")?,
            });
        }
    }
    Ok(JobResult {
        kind: req_str(v, "kind")?,
        cached: opt_bool(v, "cached")?.unwrap_or(false),
        t_app_ns: opt_u64(v, "t_app_ns")?,
        t_gen_ns: opt_u64(v, "t_gen_ns")?,
        err_pct: opt_f64(v, "err_pct")?,
        ok: opt_u64(v, "ok")?,
        failed: opt_u64(v, "failed")?,
        timed_out: opt_u64(v, "timed_out")?,
        mape: opt_f64(v, "mape")?,
        artifacts,
    })
}

fn encode_stats(m: &mut Vec<(&str, Json)>, r: &StatsReport) {
    m.push((
        "jobs",
        obj(vec![
            ("queued", u(r.jobs_queued)),
            ("running", u(r.jobs_running)),
            ("done", u(r.jobs_done)),
            ("failed", u(r.jobs_failed)),
            ("cancelled", u(r.jobs_cancelled)),
            ("replayed", u(r.jobs_replayed)),
        ]),
    ));
    m.push((
        "cache",
        obj(vec![
            ("mem_hits", u(r.mem_hits)),
            ("mem_misses", u(r.mem_misses)),
            ("disk_hits", u(r.disk_hits)),
            ("evictions", u(r.evictions)),
            ("mem_entries", u(r.mem_entries)),
            ("mem_bytes", u(r.mem_bytes)),
        ]),
    ));
    // Omitted while all-default so a fleet-less server's stats line is
    // byte-identical to v1.0's (additive v1.x field, tolerated either way).
    if r.fleet != FleetStats::default() {
        m.push((
            "fleet",
            obj(vec![
                ("workers_seen", u(r.fleet.workers_seen)),
                ("workers_live", u(r.fleet.workers_live)),
                ("leases_granted", u(r.fleet.leases_granted)),
                ("leases_renewed", u(r.fleet.leases_renewed)),
                ("leases_expired", u(r.fleet.leases_expired)),
                ("leases_reassigned", u(r.fleet.leases_reassigned)),
                ("jobs_quarantined", u(r.fleet.jobs_quarantined)),
                ("completions_discarded", u(r.fleet.completions_discarded)),
            ]),
        ));
    }
    m.push((
        "clients",
        Json::Arr(
            r.clients
                .iter()
                .map(|c| {
                    obj(vec![
                        ("client", s(&c.client)),
                        (
                            "counters",
                            Json::Obj(c.counters.iter().map(|(k, v)| (k.clone(), u(*v))).collect()),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
}

fn decode_stats(v: &Json) -> Result<StatsReport, WireError> {
    let jobs = v.get("jobs").ok_or(WireError::Missing("jobs"))?;
    let cache = v.get("cache").ok_or(WireError::Missing("cache"))?;
    let sub = |o: &Json, k: &'static str| -> Result<u64, WireError> {
        o.get(k).and_then(Json::as_u64).ok_or(WireError::Missing(k))
    };
    let mut clients = Vec::new();
    if let Some(items) = v.get("clients").and_then(Json::as_arr) {
        for c in items {
            let mut counters = Vec::new();
            if let Some(Json::Obj(members)) = c.get("counters") {
                for (k, count) in members {
                    counters.push((
                        k.clone(),
                        count
                            .as_u64()
                            .ok_or(WireError::Bad("counters", format!("{count}")))?,
                    ));
                }
            }
            clients.push(ClientStats {
                client: req_str(c, "client")?,
                counters,
            });
        }
    }
    // A v1.0 stats line has no `fleet` object: default counters.
    let fleet = match v.get("fleet") {
        Some(f) => {
            let fsub = |k: &'static str| f.get(k).and_then(Json::as_u64).unwrap_or(0);
            FleetStats {
                workers_seen: fsub("workers_seen"),
                workers_live: fsub("workers_live"),
                leases_granted: fsub("leases_granted"),
                leases_renewed: fsub("leases_renewed"),
                leases_expired: fsub("leases_expired"),
                leases_reassigned: fsub("leases_reassigned"),
                jobs_quarantined: fsub("jobs_quarantined"),
                completions_discarded: fsub("completions_discarded"),
            }
        }
        None => FleetStats::default(),
    };
    Ok(StatsReport {
        jobs_queued: sub(jobs, "queued")?,
        jobs_running: sub(jobs, "running")?,
        jobs_done: sub(jobs, "done")?,
        jobs_failed: sub(jobs, "failed")?,
        jobs_cancelled: sub(jobs, "cancelled")?,
        jobs_replayed: sub(jobs, "replayed")?,
        mem_hits: sub(cache, "mem_hits")?,
        mem_misses: sub(cache, "mem_misses")?,
        disk_hits: sub(cache, "disk_hits")?,
        evictions: sub(cache, "evictions")?,
        mem_entries: sub(cache, "mem_entries")?,
        mem_bytes: sub(cache, "mem_bytes")?,
        fleet,
        clients,
    })
}

// --------------------------------------------------------------- decoding

fn req_str(v: &Json, key: &'static str) -> Result<String, WireError> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(other) => Err(WireError::Bad(key, format!("expected string, got {other}"))),
        None => Err(WireError::Missing(key)),
    }
}

fn opt_str(v: &Json, key: &'static str) -> Result<Option<String>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(WireError::Bad(key, format!("expected string, got {other}"))),
    }
}

fn opt_str_arr(v: &Json, key: &'static str) -> Result<Vec<String>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|x| match x {
                Json::Str(s) => Ok(s.clone()),
                other => Err(WireError::Bad(key, format!("expected string, got {other}"))),
            })
            .collect(),
        Some(other) => Err(WireError::Bad(key, format!("expected array, got {other}"))),
    }
}

fn req_u64(v: &Json, key: &'static str) -> Result<u64, WireError> {
    match v.get(key) {
        Some(n @ Json::Num(_)) => n
            .as_u64()
            .ok_or_else(|| WireError::Bad(key, format!("expected unsigned integer, got {n}"))),
        Some(other) => Err(WireError::Bad(key, format!("expected number, got {other}"))),
        None => Err(WireError::Missing(key)),
    }
}

fn opt_u64(v: &Json, key: &'static str) -> Result<Option<u64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(_) => req_u64(v, key).map(Some),
    }
}

fn opt_f64(v: &Json, key: &'static str) -> Result<Option<f64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(x)) => Ok(Some(*x)),
        Some(other) => Err(WireError::Bad(key, format!("expected number, got {other}"))),
    }
}

fn opt_bool(v: &Json, key: &'static str) -> Result<Option<bool>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(WireError::Bad(key, format!("expected bool, got {other}"))),
    }
}

fn decode_params(v: &Json) -> Result<JobParams, WireError> {
    Ok(JobParams {
        app: req_str(v, "app")?,
        ranks: req_u64(v, "ranks")? as u32,
        class: opt_str(v, "class")?.unwrap_or_else(|| "S".to_string()),
        network: opt_str(v, "network")?.unwrap_or_else(|| "bgl".to_string()),
        iterations: opt_u64(v, "iterations")?.map(|i| i as u32),
        align: opt_bool(v, "align")?.unwrap_or(true),
        resolve: opt_bool(v, "resolve")?.unwrap_or(true),
        comments: opt_bool(v, "comments")?.unwrap_or(false),
    })
}

fn decode_job_ref(v: &Json) -> Result<JobRef, WireError> {
    match (opt_str(v, "job")?, opt_str(v, "tag")?) {
        (Some(id), _) => Ok(JobRef::Id(id)),
        (None, Some(tag)) => Ok(JobRef::Tag(tag)),
        (None, None) => Err(WireError::Missing("job")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_roundtrip() {
        let reqs = vec![
            Request::Hello {
                proto_version: PROTO_VERSION,
                client: "cli".into(),
            },
            Request::Trace {
                params: JobParams::new("ring", 4),
                tag: Some("t1".into()),
            },
            Request::Generate {
                params: JobParams {
                    iterations: Some(3),
                    comments: true,
                    ..JobParams::new("lu", 8)
                },
                tag: None,
            },
            Request::Simulate {
                params: JobParams::new("cg", 16),
                tag: Some("s".into()),
            },
            Request::Campaign {
                matrix: "apps = ring\nranks = 4\n".into(),
                tag: None,
            },
            Request::Status {
                job: JobRef::Id("trace.abc".into()),
                wait: true,
            },
            Request::Status {
                job: JobRef::Tag("t1".into()),
                wait: false,
            },
            Request::CancelJob {
                job: JobRef::Id("x".into()),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'), "framing: {line}");
            assert_eq!(Request::from_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn response_lines_roundtrip() {
        let resps = vec![
            Response::HelloOk {
                proto_version: 1,
                server: "commspec-server/0.1.0".into(),
            },
            Response::Submitted {
                job: "trace.0011223344556677".into(),
                kind: "trace".into(),
                tag: Some("t1".into()),
                replayed: true,
            },
            Response::JobStatus {
                job: "sim.1".into(),
                state: "done".into(),
                tag: None,
                error: None,
                result: Some(JobResult {
                    kind: "simulate".into(),
                    cached: true,
                    t_app_ns: Some(123_456_789),
                    t_gen_ns: Some(123_000_000),
                    err_pct: Some(0.375),
                    artifacts: vec![Artifact {
                        name: "profile.mpip".into(),
                        fnv: "00000000deadbeef".into(),
                        text: "routine calls\nMPI_Send 2\n".into(),
                    }],
                    ..JobResult::default()
                }),
            },
            Response::JobStatus {
                job: "x".into(),
                state: "failed".into(),
                tag: Some("t".into()),
                error: Some("unknown app nosuch".into()),
                result: None,
            },
            Response::Cancelled {
                job: "x".into(),
                ok: false,
                state: "running".into(),
            },
            Response::Stats(StatsReport {
                jobs_done: 3,
                mem_hits: 2,
                clients: vec![ClientStats {
                    client: "cli".into(),
                    counters: vec![("requests".into(), 9)],
                }],
                ..StatsReport::default()
            }),
            Response::Error {
                code: "unknown-variant".into(),
                message: "unknown message type `frobnicate`".into(),
            },
            Response::Bye,
        ];
        for r in resps {
            let line = r.to_line();
            assert!(!line.contains('\n'), "framing: {line}");
            assert_eq!(Response::from_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn worker_plane_lines_roundtrip() {
        let reqs = vec![
            Request::WorkerRegister {
                worker: "w1".into(),
            },
            Request::LeaseRequest {
                worker: "w1#3".into(),
            },
            Request::Heartbeat {
                worker: "w1#3".into(),
                leases: vec!["lease.1".into(), "lease.2".into()],
            },
            Request::Heartbeat {
                worker: "idle".into(),
                leases: vec![],
            },
            Request::JobComplete {
                worker: "w1#3".into(),
                lease: "lease.1".into(),
                job: "trace.00de53a67e8e0472".into(),
                result: JobResult {
                    kind: "trace".into(),
                    artifacts: vec![Artifact {
                        name: "trace.st".into(),
                        fnv: "0123456789abcdef".into(),
                        text: "trace nranks=4\n".into(),
                    }],
                    ..JobResult::default()
                },
            },
            Request::JobFail {
                worker: "w1#3".into(),
                lease: "lease.2".into(),
                job: "simulate.f18d02e8e17d3abf".into(),
                error: "panic: boom".into(),
                transient: false,
            },
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'), "framing: {line}");
            assert_eq!(Request::from_line(&line).unwrap(), r, "{line}");
        }
        let resps = vec![
            Response::WorkerOk {
                worker: "w1#3".into(),
                lease_ttl_ms: 10_000,
            },
            Response::LeaseGrant {
                lease: "lease.1".into(),
                job: "simulate.f18d02e8e17d3abf".into(),
                kind: "simulate".into(),
                params: Some(JobParams::new("ring", 4)),
                matrix: None,
                ttl_ms: 10_000,
            },
            Response::LeaseGrant {
                lease: "lease.2".into(),
                job: "campaign.1122334455667788".into(),
                kind: "campaign".into(),
                params: None,
                matrix: Some("apps = ring\nranks = 4\n".into()),
                ttl_ms: 500,
            },
            Response::NoWork {
                retry_ms: 50,
                draining: true,
            },
            Response::HeartbeatOk {
                ttl_ms: 10_000,
                expired: vec!["lease.1".into()],
            },
            Response::CompleteOk {
                job: "trace.00de53a67e8e0472".into(),
                accepted: false,
                reason: Some("lease expired".into()),
            },
        ];
        for r in resps {
            let line = r.to_line();
            assert!(!line.contains('\n'), "framing: {line}");
            assert_eq!(Response::from_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn fleet_stats_are_omitted_while_default_and_decode_when_absent() {
        // Byte-compat with v1.0: a fleet-less stats report encodes exactly
        // as before the worker plane existed...
        let plain = Response::Stats(StatsReport {
            jobs_done: 3,
            ..StatsReport::default()
        });
        assert!(!plain.to_line().contains("fleet"));
        // ...and a v1.0 line (no fleet object) decodes to default counters.
        assert_eq!(Response::from_line(&plain.to_line()).unwrap(), plain);
        // Once a worker has registered, the counters ride along and survive
        // the round-trip.
        let fleet = Response::Stats(StatsReport {
            fleet: FleetStats {
                workers_seen: 2,
                workers_live: 1,
                leases_granted: 9,
                leases_renewed: 30,
                leases_expired: 3,
                leases_reassigned: 2,
                jobs_quarantined: 1,
                completions_discarded: 4,
            },
            ..StatsReport::default()
        });
        let line = fleet.to_line();
        assert!(line.contains("\"fleet\""), "{line}");
        assert_eq!(Response::from_line(&line).unwrap(), fleet);
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let line =
            "{\"type\":\"status\",\"job\":\"j\",\"wait\":true,\"novel_v2_field\":{\"deep\":[1,2]}}";
        assert_eq!(
            Request::from_line(line).unwrap(),
            Request::Status {
                job: JobRef::Id("j".into()),
                wait: true
            }
        );
    }

    #[test]
    fn unknown_variants_are_rejected() {
        let err = Request::from_line("{\"type\":\"frobnicate\"}").unwrap_err();
        assert_eq!(err, WireError::UnknownVariant("frobnicate".into()));
        assert_eq!(err.code(), "unknown-variant");
        let err = Response::from_line("{\"type\":\"frobnicate\"}").unwrap_err();
        assert_eq!(err, WireError::UnknownVariant("frobnicate".into()));
    }

    #[test]
    fn malformed_and_incomplete_lines_are_structured_errors() {
        assert_eq!(Request::from_line("not json").unwrap_err().code(), "syntax");
        assert_eq!(
            Request::from_line("{\"type\":\"hello\",\"proto_version\":1}").unwrap_err(),
            WireError::Missing("client")
        );
        assert_eq!(
            Request::from_line("{\"type\":\"trace\",\"app\":\"ring\"}").unwrap_err(),
            WireError::Missing("ranks")
        );
        assert_eq!(
            Request::from_line("{\"type\":\"trace\",\"app\":\"ring\",\"ranks\":\"four\"}")
                .unwrap_err()
                .code(),
            "bad-field"
        );
        assert_eq!(
            Request::from_line("{\"type\":\"status\",\"wait\":true}").unwrap_err(),
            WireError::Missing("job")
        );
    }

    #[test]
    fn params_defaults_match_the_batch_cli() {
        // Decoding a minimal submission fills in the commgen defaults, so a
        // terse client and the batch CLI produce the same artifacts.
        let line = "{\"type\":\"generate\",\"app\":\"ring\",\"ranks\":4}";
        match Request::from_line(line).unwrap() {
            Request::Generate { params, tag } => {
                assert_eq!(params, JobParams::new("ring", 4));
                assert!(tag.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wire_error_messages_name_the_problem() {
        assert!(WireError::Missing("job").to_string().contains("job"));
        assert!(WireError::UnknownVariant("x".into())
            .to_string()
            .contains('x'));
        assert!(WireError::Syntax("trailing".into())
            .to_string()
            .contains("trailing"));
        assert!(WireError::Bad("ranks", "nope".into())
            .to_string()
            .contains("ranks"));
    }
}
