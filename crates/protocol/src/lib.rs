//! The `commspec-server` wire protocol.
//!
//! This crate is deliberately dependency-free: it holds the one hand-rolled
//! JSON implementation the workspace shares ([`json`]) and the typed,
//! versioned message vocabulary ([`wire`]) the daemon and its clients speak
//! over line-delimited JSON. Keeping it leaf-level means a client can link
//! against the protocol without pulling in the simulator, the generator, or
//! the campaign runner.
//!
//! See `DESIGN.md` §13 for the protocol grammar and compatibility rules.

pub mod json;
pub mod wire;

pub use wire::{
    Artifact, ClientStats, FleetStats, JobParams, JobRef, JobResult, Request, Response,
    StatsReport, WireError, PROTO_VERSION,
};
