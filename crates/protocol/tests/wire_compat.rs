//! Wire-compatibility suite: golden fixtures pinned in-repo, property
//! round-trips, and the v-next tolerance rules.
//!
//! The golden files under `tests/fixtures/` are the protocol's contract:
//! every line is the exact byte encoding of a known message. If an edit
//! to the encoder changes any of these bytes, this suite fails — that is
//! a wire-format break and must come with a `PROTO_VERSION` bump (or be
//! reverted). To regenerate after a deliberate break:
//!
//! ```text
//! WIRE_GOLDEN_REGEN=1 cargo test -p protocol --test wire_compat
//! ```

use protocol::{
    Artifact, ClientStats, FleetStats, JobParams, JobRef, JobResult, Request, Response,
    StatsReport, PROTO_VERSION,
};

/// The canonical message set pinned by `tests/fixtures/requests_v1.jsonl`.
/// Append new cases; never reorder or edit existing ones (that's the
/// point of a golden file).
fn golden_requests() -> Vec<Request> {
    vec![
        Request::Hello {
            proto_version: PROTO_VERSION,
            client: "golden".into(),
        },
        Request::Trace {
            params: JobParams::new("ring", 4),
            tag: Some("t1".into()),
        },
        Request::Trace {
            params: JobParams {
                class: "W".into(),
                network: "ethernet".into(),
                iterations: Some(7),
                ..JobParams::new("lu", 8)
            },
            tag: None,
        },
        Request::Generate {
            params: JobParams {
                comments: true,
                align: false,
                ..JobParams::new("cg", 16)
            },
            tag: None,
        },
        Request::Simulate {
            params: JobParams::new("stencil2d", 4),
            tag: Some("sweep/1".into()),
        },
        Request::Campaign {
            matrix: "apps = ring\nranks = 4\nworkers = 1\n".into(),
            tag: Some("nightly".into()),
        },
        Request::Status {
            job: JobRef::Id("trace.00de53a67e8e0472".into()),
            wait: true,
        },
        Request::Status {
            job: JobRef::Tag("t1".into()),
            wait: false,
        },
        Request::CancelJob {
            job: JobRef::Id("campaign.1122334455667788".into()),
        },
        Request::Stats,
        Request::Shutdown,
        // --- worker plane (v1.x additive; appended, never reordered) ---
        Request::WorkerRegister {
            worker: "w-4242".into(),
        },
        Request::LeaseRequest {
            worker: "w-4242".into(),
        },
        Request::Heartbeat {
            worker: "w-4242".into(),
            leases: vec!["lease.1".into(), "lease.7".into()],
        },
        Request::Heartbeat {
            worker: "w-idle".into(),
            leases: vec![],
        },
        Request::JobComplete {
            worker: "w-4242".into(),
            lease: "lease.1".into(),
            job: "trace.00de53a67e8e0472".into(),
            result: JobResult {
                kind: "trace".into(),
                artifacts: vec![Artifact {
                    name: "trace.st".into(),
                    fnv: "103877e1fa8e9fac".into(),
                    text: "trace nranks=4\n".into(),
                }],
                ..JobResult::default()
            },
        },
        Request::JobFail {
            worker: "w-4242".into(),
            lease: "lease.7".into(),
            job: "simulate.f18d02e8e17d3abf".into(),
            error: "panicked: index out of bounds".into(),
            transient: false,
        },
        Request::JobFail {
            worker: "w-9".into(),
            lease: "lease.8".into(),
            job: "generate.42294748308dc6b8".into(),
            error: "watchdog timeout after 30s".into(),
            transient: true,
        },
    ]
}

/// The canonical message set pinned by `tests/fixtures/responses_v1.jsonl`.
fn golden_responses() -> Vec<Response> {
    vec![
        Response::HelloOk {
            proto_version: PROTO_VERSION,
            server: "commspec-server/0.1.0".into(),
        },
        Response::Submitted {
            job: "trace.00de53a67e8e0472".into(),
            kind: "trace".into(),
            tag: Some("t1".into()),
            replayed: false,
        },
        Response::Submitted {
            job: "simulate.f18d02e8e17d3abf".into(),
            kind: "simulate".into(),
            tag: None,
            replayed: true,
        },
        Response::JobStatus {
            job: "trace.00de53a67e8e0472".into(),
            state: "queued".into(),
            tag: Some("t1".into()),
            error: None,
            result: None,
        },
        Response::JobStatus {
            job: "simulate.f18d02e8e17d3abf".into(),
            state: "done".into(),
            tag: None,
            error: None,
            result: Some(JobResult {
                kind: "simulate".into(),
                cached: true,
                t_app_ns: Some(2_562_641),
                t_gen_ns: Some(2_550_250),
                err_pct: Some(0.4835),
                artifacts: vec![
                    Artifact {
                        name: "trace.st".into(),
                        fnv: "103877e1fa8e9fac".into(),
                        text: "trace nranks=4\n".into(),
                    },
                    Artifact {
                        name: "profile.mpip".into(),
                        fnv: "00000000deadbeef".into(),
                        text: "routine\tcalls\nMPI_Send\t2\n".into(),
                    },
                ],
                ..JobResult::default()
            }),
        },
        Response::JobStatus {
            job: "generate.42294748308dc6b8".into(),
            state: "failed".into(),
            tag: None,
            error: Some("unknown app nosuch; available: ring".into()),
            result: None,
        },
        Response::JobStatus {
            job: "campaign.1122334455667788".into(),
            state: "done".into(),
            tag: Some("nightly".into()),
            error: None,
            result: Some(JobResult {
                kind: "campaign".into(),
                ok: Some(11),
                failed: Some(1),
                timed_out: Some(0),
                mape: Some(1.5),
                artifacts: vec![Artifact {
                    name: "report.txt".into(),
                    fnv: "0123456789abcdef".into(),
                    text: "11 ok, 1 failed\n".into(),
                }],
                ..JobResult::default()
            }),
        },
        Response::Cancelled {
            job: "trace.00de53a67e8e0472".into(),
            ok: true,
            state: "cancelled".into(),
        },
        Response::Cancelled {
            job: "simulate.f18d02e8e17d3abf".into(),
            ok: false,
            state: "running".into(),
        },
        Response::Stats(StatsReport {
            jobs_queued: 1,
            jobs_running: 2,
            jobs_done: 30,
            jobs_failed: 4,
            jobs_cancelled: 5,
            jobs_replayed: 6,
            mem_hits: 70,
            mem_misses: 8,
            disk_hits: 9,
            evictions: 10,
            mem_entries: 11,
            mem_bytes: 4096,
            fleet: FleetStats::default(),
            clients: vec![
                ClientStats {
                    client: "ci".into(),
                    counters: vec![("rejections".into(), 2), ("requests".into(), 40)],
                },
                ClientStats {
                    client: "cli".into(),
                    counters: vec![("evictions".into(), 1)],
                },
            ],
        }),
        Response::Error {
            code: "rate-limited".into(),
            message: "submission refused for client ci".into(),
        },
        Response::Bye,
        // --- worker plane (v1.x additive; appended, never reordered) ---
        Response::WorkerOk {
            worker: "w-4242".into(),
            lease_ttl_ms: 10_000,
        },
        Response::LeaseGrant {
            lease: "lease.1".into(),
            job: "simulate.f18d02e8e17d3abf".into(),
            kind: "simulate".into(),
            params: Some(JobParams::new("ring", 4)),
            matrix: None,
            ttl_ms: 10_000,
        },
        Response::LeaseGrant {
            lease: "lease.2".into(),
            job: "campaign.1122334455667788".into(),
            kind: "campaign".into(),
            params: None,
            matrix: Some("apps = ring\nranks = 4\nworkers = 1\n".into()),
            ttl_ms: 30_000,
        },
        Response::NoWork {
            retry_ms: 50,
            draining: false,
        },
        Response::NoWork {
            retry_ms: 0,
            draining: true,
        },
        Response::HeartbeatOk {
            ttl_ms: 10_000,
            expired: vec![],
        },
        Response::HeartbeatOk {
            ttl_ms: 10_000,
            expired: vec!["lease.1".into()],
        },
        Response::CompleteOk {
            job: "trace.00de53a67e8e0472".into(),
            accepted: true,
            reason: None,
        },
        Response::CompleteOk {
            job: "trace.00de53a67e8e0472".into(),
            accepted: false,
            reason: Some("lease expired; job reassigned".into()),
        },
        Response::Stats(StatsReport {
            jobs_done: 12,
            fleet: FleetStats {
                workers_seen: 3,
                workers_live: 2,
                leases_granted: 14,
                leases_renewed: 55,
                leases_expired: 2,
                leases_reassigned: 2,
                jobs_quarantined: 1,
                completions_discarded: 1,
            },
            ..StatsReport::default()
        }),
    ]
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compare (or with `WIRE_GOLDEN_REGEN=1`, rewrite) one golden file.
fn check_golden(name: &str, lines: &[String]) {
    let path = fixture_path(name);
    let body = lines.join("\n") + "\n";
    if std::env::var_os("WIRE_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &body).unwrap();
        return;
    }
    let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with WIRE_GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    for (i, (got, want)) in lines.iter().zip(pinned.lines()).enumerate() {
        assert_eq!(
            got, want,
            "wire format changed for {name} case {i} — this is a protocol break; \
             bump PROTO_VERSION or revert"
        );
    }
    assert_eq!(
        lines.len(),
        pinned.lines().count(),
        "{name}: case count differs from the pinned file"
    );
}

#[test]
fn golden_request_encodings_are_pinned() {
    let lines: Vec<String> = golden_requests().iter().map(Request::to_line).collect();
    check_golden("requests_v1.jsonl", &lines);
}

#[test]
fn golden_response_encodings_are_pinned() {
    let lines: Vec<String> = golden_responses().iter().map(Response::to_line).collect();
    check_golden("responses_v1.jsonl", &lines);
}

#[test]
fn golden_requests_decode_to_their_values() {
    let path = fixture_path("requests_v1.jsonl");
    let pinned = std::fs::read_to_string(&path).expect("golden file present");
    for (line, want) in pinned.lines().zip(golden_requests()) {
        assert_eq!(Request::from_line(line).unwrap(), want, "{line}");
    }
}

#[test]
fn golden_responses_decode_to_their_values() {
    let path = fixture_path("responses_v1.jsonl");
    let pinned = std::fs::read_to_string(&path).expect("golden file present");
    for (line, want) in pinned.lines().zip(golden_responses()) {
        assert_eq!(Response::from_line(line).unwrap(), want, "{line}");
    }
}

#[test]
fn vnext_messages_with_unknown_fields_still_decode() {
    // A v1.x peer may add fields anywhere — top level, inside params,
    // inside results — and a v1.0 decoder must read the fields it knows
    // and ignore the rest.
    let cases = [
        "{\"type\":\"hello\",\"proto_version\":1,\"client\":\"new\",\"features\":[\"zstd\",\"tls\"]}",
        "{\"type\":\"trace\",\"app\":\"ring\",\"ranks\":4,\"priority\":\"high\",\"deadline_ms\":5000}",
        "{\"type\":\"status\",\"job\":\"j\",\"wait\":true,\"fields\":{\"only\":[\"state\"]}}",
        "{\"type\":\"shutdown\",\"grace_ms\":100}",
        // Worker plane, same rule: a v1.(x+1) worker may report load,
        // capabilities, or timings this decoder has never heard of.
        "{\"type\":\"worker_register\",\"worker\":\"w\",\"cores\":8,\"labels\":[\"gpu\"]}",
        "{\"type\":\"lease_request\",\"worker\":\"w\",\"max_jobs\":2}",
        "{\"type\":\"heartbeat\",\"worker\":\"w\",\"leases\":[\"l1\"],\"load\":0.25}",
        "{\"type\":\"job_fail\",\"worker\":\"w\",\"lease\":\"l1\",\"job\":\"j\",\
         \"error\":\"x\",\"transient\":true,\"rss_bytes\":1048576}",
    ];
    for line in cases {
        Request::from_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
    let resps = [
        "{\"type\":\"submitted\",\"job\":\"j\",\"kind\":\"trace\",\"replayed\":false,\
         \"queue_depth\":3,\"eta_ms\":120}",
        "{\"type\":\"lease_grant\",\"lease\":\"l1\",\"job\":\"j\",\"kind\":\"trace\",\
         \"app\":\"ring\",\"ranks\":4,\"ttl_ms\":1000,\"priority\":\"high\"}",
        "{\"type\":\"heartbeat_ok\",\"ttl_ms\":1000,\"expired\":[],\"server_time_ms\":99}",
        "{\"type\":\"no_work\",\"retry_ms\":10,\"draining\":false,\"queue_depth\":0}",
    ];
    for line in resps {
        Response::from_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
}

#[test]
fn vnext_unknown_types_are_rejected_not_misread() {
    // The other half of the compat contract: a *variant* this decoder
    // does not know must be a structured rejection the server can answer
    // with an `error` line, never a silent misparse.
    for line in [
        "{\"type\":\"trace_v2\",\"app\":\"ring\",\"ranks\":4}",
        "{\"type\":\"subscribe\",\"job\":\"j\"}",
    ] {
        let err = Request::from_line(line).unwrap_err();
        assert_eq!(err.code(), "unknown-variant", "{line}");
    }
}

// ------------------------------------------------------------ round-trips

mod roundtrip {
    use super::*;
    use proptest::prelude::*;

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z]{1,8}".prop_map(|s| s)
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // Exercise the escaper: quotes, backslashes, newlines, tabs,
        // control characters, non-ASCII.
        prop_oneof![
            Just(String::new()),
            Just("plain text".to_string()),
            Just("line1\nline2\r\n\ttabbed \"quoted\" back\\slash".to_string()),
            Just("control \u{1} and uni ∑ ünïcode".to_string()),
            "[ -~]{0,40}".prop_map(|s| s),
        ]
    }

    fn arb_params() -> impl Strategy<Value = JobParams> {
        (
            (
                arb_name(),
                1u32..64,
                prop_oneof![Just("S"), Just("W"), Just("A"), Just("B"), Just("C")],
                prop_oneof![Just("ideal"), Just("bgl"), Just("ethernet")],
            ),
            (
                proptest::option::of(1u32..100),
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
            ),
        )
            .prop_map(
                |((app, ranks, class, network), (iterations, align, resolve, comments))| {
                    JobParams {
                        app,
                        ranks,
                        class: class.to_string(),
                        network: network.to_string(),
                        iterations,
                        align,
                        resolve,
                        comments,
                    }
                },
            )
    }

    fn arb_job_ref() -> impl Strategy<Value = JobRef> {
        prop_oneof![
            arb_name().prop_map(JobRef::Id),
            arb_name().prop_map(JobRef::Tag),
        ]
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            (1u32..10, arb_name()).prop_map(|(proto_version, client)| Request::Hello {
                proto_version,
                client
            }),
            (arb_params(), proptest::option::of(arb_name()))
                .prop_map(|(params, tag)| Request::Trace { params, tag }),
            (arb_params(), proptest::option::of(arb_name()))
                .prop_map(|(params, tag)| Request::Generate { params, tag }),
            (arb_params(), proptest::option::of(arb_name()))
                .prop_map(|(params, tag)| Request::Simulate { params, tag }),
            (arb_text(), proptest::option::of(arb_name()))
                .prop_map(|(matrix, tag)| Request::Campaign { matrix, tag }),
            (arb_job_ref(), any::<bool>()).prop_map(|(job, wait)| Request::Status { job, wait }),
            arb_job_ref().prop_map(|job| Request::CancelJob { job }),
            Just(Request::Stats),
            Just(Request::Shutdown),
            arb_name().prop_map(|worker| Request::WorkerRegister { worker }),
            arb_name().prop_map(|worker| Request::LeaseRequest { worker }),
            (arb_name(), proptest::collection::vec(arb_name(), 0..4))
                .prop_map(|(worker, leases)| Request::Heartbeat { worker, leases }),
            (arb_name(), arb_name(), arb_name(), arb_result()).prop_map(
                |(worker, lease, job, result)| Request::JobComplete {
                    worker,
                    lease,
                    job,
                    result,
                }
            ),
            (
                arb_name(),
                arb_name(),
                arb_name(),
                arb_text(),
                any::<bool>()
            )
                .prop_map(|(worker, lease, job, error, transient)| Request::JobFail {
                    worker,
                    lease,
                    job,
                    error,
                    transient,
                }),
        ]
    }

    fn arb_artifact() -> impl Strategy<Value = Artifact> {
        (arb_name(), arb_text()).prop_map(|(name, text)| Artifact {
            name,
            fnv: "0123456789abcdef".to_string(),
            text,
        })
    }

    fn arb_result() -> impl Strategy<Value = JobResult> {
        (
            prop_oneof![Just("trace"), Just("generate"), Just("simulate")],
            any::<bool>(),
            proptest::option::of(0u64..1 << 50),
            proptest::option::of(0u64..1 << 50),
            proptest::option::of(0u64..100),
            proptest::collection::vec(arb_artifact(), 0..3),
        )
            .prop_map(
                |(kind, cached, t_app_ns, t_gen_ns, err, artifacts)| JobResult {
                    kind: kind.to_string(),
                    cached,
                    t_app_ns,
                    t_gen_ns,
                    // Quarter steps survive f64 round-trips exactly.
                    err_pct: err.map(|e| e as f64 / 4.0),
                    artifacts,
                    ..JobResult::default()
                },
            )
    }

    fn arb_response() -> impl Strategy<Value = Response> {
        prop_oneof![
            (1u32..10, arb_name()).prop_map(|(proto_version, server)| Response::HelloOk {
                proto_version,
                server
            }),
            (
                arb_name(),
                prop_oneof![Just("trace"), Just("campaign")],
                proptest::option::of(arb_name()),
                any::<bool>()
            )
                .prop_map(|(job, kind, tag, replayed)| Response::Submitted {
                    job,
                    kind: kind.to_string(),
                    tag,
                    replayed
                }),
            (
                arb_name(),
                prop_oneof![
                    Just("queued"),
                    Just("running"),
                    Just("done"),
                    Just("failed")
                ],
                proptest::option::of(arb_name()),
                proptest::option::of(arb_text()),
                proptest::option::of(arb_result()),
            )
                .prop_map(|(job, state, tag, error, result)| Response::JobStatus {
                    job,
                    state: state.to_string(),
                    tag,
                    error,
                    result
                }),
            (arb_name(), any::<bool>(), arb_name())
                .prop_map(|(job, ok, state)| { Response::Cancelled { job, ok, state } }),
            (arb_name(), arb_text()).prop_map(|(code, message)| Response::Error { code, message }),
            Just(Response::Bye),
            (arb_name(), 0u64..1 << 32).prop_map(|(worker, lease_ttl_ms)| Response::WorkerOk {
                worker,
                lease_ttl_ms
            }),
            (
                (arb_name(), arb_name(), arb_name()),
                proptest::option::of(arb_params()),
                proptest::option::of(arb_text()),
                0u64..1 << 32,
            )
                .prop_map(|((lease, job, kind), params, matrix, ttl_ms)| {
                    Response::LeaseGrant {
                        lease,
                        job,
                        kind,
                        params,
                        matrix,
                        ttl_ms,
                    }
                }),
            (0u64..1 << 32, any::<bool>())
                .prop_map(|(retry_ms, draining)| Response::NoWork { retry_ms, draining }),
            (0u64..1 << 32, proptest::collection::vec(arb_name(), 0..4))
                .prop_map(|(ttl_ms, expired)| Response::HeartbeatOk { ttl_ms, expired }),
            (arb_name(), any::<bool>(), proptest::option::of(arb_text())).prop_map(
                |(job, accepted, reason)| Response::CompleteOk {
                    job,
                    accepted,
                    reason
                }
            ),
        ]
    }

    proptest! {
        #[test]
        fn any_request_roundtrips_through_its_line(req in arb_request()) {
            let line = req.to_line();
            prop_assert!(!line.contains('\n'), "framing: one message per line");
            prop_assert_eq!(Request::from_line(&line).unwrap(), req);
        }

        #[test]
        fn any_response_roundtrips_through_its_line(resp in arb_response()) {
            let line = resp.to_line();
            prop_assert!(!line.contains('\n'), "framing: one message per line");
            prop_assert_eq!(Response::from_line(&line).unwrap(), resp);
        }

        #[test]
        fn decoding_is_total_over_arbitrary_bytes(noise in "[ -~]{0,60}") {
            // Garbage must produce a structured error, never a panic.
            let _ = Request::from_line(&noise);
            let _ = Response::from_line(&noise);
        }
    }
}
