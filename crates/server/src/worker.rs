//! The standalone fleet worker: connects to a coordinator (TCP or
//! stdio), pulls leases, executes jobs through the exact library calls
//! the in-process pool uses, and streams heartbeats from a background
//! thread.
//!
//! One connection carries everything. Both the main loop and the
//! heartbeat thread speak strict request/response pairs under a shared
//! lock, and job execution happens *outside* the lock, so heartbeats
//! keep flowing while a long job runs — which is the whole point of a
//! heartbeat.
//!
//! Artifacts are committed locally (atomic tmp+rename, checksums
//! computed first) before `job_complete` is sent; the coordinator is
//! still the authority on acceptance, and a completion that races a
//! lease expiry comes back `accepted: false` and is discarded here
//! without side effects. Executions are deterministic, so a discarded
//! duplicate is byte-identical to whatever the winning worker produced.
//!
//! ### Chaos hooks (tests and the CI smoke job)
//!
//! - `COMMSPEC_WORKER_JOB_DELAY_MS`: sleep inside job execution, opening
//!   a window to SIGKILL the worker mid-job.
//! - `COMMSPEC_WORKER_NO_HEARTBEAT=1`: suppress heartbeats so leases
//!   expire by TTL while the worker keeps running.
//! - `COMMSPEC_WORKER_DUP_COMPLETE=1`: send every successful completion
//!   twice; the duplicate must come back `accepted: false`.

use crate::jobs::{self, JobKind};
use crate::memcache::TraceMemCache;
use campaign::journal::write_atomic;
use campaign::{Telemetry, TraceCache};
use protocol::{JobResult, Request, Response, PROTO_VERSION};
use std::collections::BTreeSet;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Worker process configuration.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Coordinator address; `None` speaks the protocol on stdin/stdout.
    pub addr: Option<String>,
    /// Worker identity (must be unique across the fleet).
    pub name: String,
    /// Worker-local scratch: trace cache and committed artifacts.
    pub state_dir: PathBuf,
    /// Connection attempts before giving up.
    pub connect_retries: u32,
    /// Base delay between attempts (doubles, capped at ~5s).
    pub connect_backoff: Duration,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            addr: None,
            name: format!("worker-{}", std::process::id()),
            state_dir: PathBuf::from(".commspec-worker"),
            connect_retries: 5,
            connect_backoff: Duration::from_millis(100),
        }
    }
}

/// Connect to `addr` with capped exponential backoff. Shared by the
/// worker and the CLI client's `--connect-retries` flag.
pub fn connect_with_retries(
    addr: &str,
    retries: u32,
    backoff: Duration,
) -> Result<TcpStream, String> {
    let mut last = String::new();
    for attempt in 0..retries.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < retries.max(1) {
            let delay = backoff
                .saturating_mul(1u32 << attempt.min(6))
                .min(Duration::from_secs(5));
            std::thread::sleep(delay);
        }
    }
    Err(format!(
        "cannot connect to {addr} after {} attempts: {last}",
        retries.max(1)
    ))
}

enum Transport {
    Tcp(BufReader<TcpStream>, TcpStream),
    Stdio,
}

/// One line-delimited connection; every exchange is a strict
/// request/response pair.
struct Conn {
    transport: Transport,
}

impl Conn {
    fn call(&mut self, req: &Request) -> Result<Response, String> {
        let line = req.to_line();
        let mut buf = String::new();
        match &mut self.transport {
            Transport::Tcp(reader, writer) => {
                writeln!(writer, "{line}").map_err(|e| format!("send failed: {e}"))?;
                writer.flush().map_err(|e| format!("send failed: {e}"))?;
                match reader.read_line(&mut buf) {
                    Ok(0) => return Err("coordinator closed the connection".to_string()),
                    Ok(_) => {}
                    Err(e) => return Err(format!("receive failed: {e}")),
                }
            }
            Transport::Stdio => {
                let stdout = io::stdout();
                let mut out = stdout.lock();
                writeln!(out, "{line}").map_err(|e| format!("send failed: {e}"))?;
                out.flush().map_err(|e| format!("send failed: {e}"))?;
                match io::stdin().read_line(&mut buf) {
                    Ok(0) => return Err("coordinator closed the connection".to_string()),
                    Ok(_) => {}
                    Err(e) => return Err(format!("receive failed: {e}")),
                }
            }
        }
        Response::from_line(&buf).map_err(|e| format!("bad response line: {e}"))
    }
}

fn call(conn: &Arc<Mutex<Conn>>, req: &Request) -> Result<Response, String> {
    crate::sync::lock(conn).call(req)
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
}

/// Run the worker until the coordinator drains it (or the connection
/// dies). Returns the number of jobs executed.
pub fn run_worker(opts: WorkerOptions) -> Result<u64, String> {
    let transport = match &opts.addr {
        Some(addr) => {
            let stream = connect_with_retries(addr, opts.connect_retries, opts.connect_backoff)?;
            let reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("cannot clone stream: {e}"))?,
            );
            Transport::Tcp(reader, stream)
        }
        None => Transport::Stdio,
    };
    let conn = Arc::new(Mutex::new(Conn { transport }));

    match call(
        &conn,
        &Request::Hello {
            proto_version: PROTO_VERSION,
            client: opts.name.clone(),
        },
    )? {
        Response::HelloOk { .. } => {}
        Response::Error { code, message } => {
            return Err(format!("hello refused ({code}): {message}"))
        }
        other => return Err(format!("unexpected hello reply: {other:?}")),
    }
    let ttl_ms = match call(
        &conn,
        &Request::WorkerRegister {
            worker: opts.name.clone(),
        },
    )? {
        Response::WorkerOk { lease_ttl_ms, .. } => lease_ttl_ms,
        Response::Error { code, message } => {
            return Err(format!("registration refused ({code}): {message}"))
        }
        other => return Err(format!("unexpected register reply: {other:?}")),
    };
    eprintln!("worker {} registered (lease ttl {ttl_ms} ms)", opts.name);

    let disk = TraceCache::open(opts.state_dir.join("cache"))
        .map_err(|e| format!("cannot open worker cache: {e}"))?;
    let mem = TraceMemCache::new(disk, 4, 32 << 20);

    let held: Arc<Mutex<BTreeSet<String>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let lost: Arc<Mutex<BTreeSet<String>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let conn = Arc::clone(&conn);
        let held = Arc::clone(&held);
        let lost = Arc::clone(&lost);
        let stop = Arc::clone(&stop);
        let worker = opts.name.clone();
        let interval = Duration::from_millis((ttl_ms / 4).max(10));
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if stop.load(Ordering::SeqCst) {
                return;
            }
            if env_flag("COMMSPEC_WORKER_NO_HEARTBEAT") {
                continue;
            }
            let leases: Vec<String> = crate::sync::lock(&held).iter().cloned().collect();
            match call(
                &conn,
                &Request::Heartbeat {
                    worker: worker.clone(),
                    leases,
                },
            ) {
                Ok(Response::HeartbeatOk { expired, .. }) => {
                    if !expired.is_empty() {
                        crate::sync::lock(&lost).extend(expired);
                    }
                }
                // A dead connection ends the worker; the main loop will
                // hit the same error on its next call.
                _ => return,
            }
        })
    };

    let mut done = 0u64;
    let outcome = loop {
        match call(
            &conn,
            &Request::LeaseRequest {
                worker: opts.name.clone(),
            },
        ) {
            Ok(Response::LeaseGrant {
                lease,
                job,
                kind,
                params,
                matrix,
                ttl_ms: _,
            }) => {
                crate::sync::lock(&held).insert(lease.clone());
                eprintln!("worker {}: lease {lease} job {job}", opts.name);
                let result = execute(&kind, params, matrix, &mem, &opts.state_dir);
                crate::sync::lock(&held).remove(&lease);
                done += 1;
                let known_lost = crate::sync::lock(&lost).remove(&lease);
                if known_lost {
                    eprintln!(
                        "worker {}: lease {lease} was expired by the coordinator; \
                         reporting anyway for idempotent discard",
                        opts.name
                    );
                }
                let report = match result {
                    Ok(result) => {
                        commit_local(&opts.state_dir, &job, &result);
                        Request::JobComplete {
                            worker: opts.name.clone(),
                            lease: lease.clone(),
                            job: job.clone(),
                            result,
                        }
                    }
                    Err((error, transient)) => Request::JobFail {
                        worker: opts.name.clone(),
                        lease: lease.clone(),
                        job: job.clone(),
                        error,
                        transient,
                    },
                };
                match call(&conn, &report) {
                    Ok(Response::CompleteOk {
                        accepted, reason, ..
                    }) => {
                        eprintln!(
                            "worker {}: job {job} accepted={accepted}{}",
                            opts.name,
                            reason.map(|r| format!(" ({r})")).unwrap_or_default()
                        );
                    }
                    Ok(other) => break Err(format!("unexpected completion reply: {other:?}")),
                    Err(e) => break Err(e),
                }
                if env_flag("COMMSPEC_WORKER_DUP_COMPLETE") {
                    if let Request::JobComplete { .. } = &report {
                        match call(&conn, &report) {
                            Ok(Response::CompleteOk { accepted, .. }) => {
                                eprintln!(
                                    "worker {}: job {job} duplicate accepted={accepted}",
                                    opts.name
                                );
                            }
                            Ok(other) => {
                                break Err(format!("unexpected duplicate reply: {other:?}"))
                            }
                            Err(e) => break Err(e),
                        }
                    }
                }
            }
            Ok(Response::NoWork { retry_ms, draining }) => {
                if draining && crate::sync::lock(&held).is_empty() {
                    eprintln!("worker {}: coordinator draining; exiting", opts.name);
                    break Ok(done);
                }
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 1000)));
            }
            Ok(Response::Error { code, message }) => {
                break Err(format!("coordinator error ({code}): {message}"))
            }
            Ok(other) => break Err(format!("unexpected lease reply: {other:?}")),
            Err(e) => break Err(e),
        }
    };
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    outcome
}

/// Execute one leased job with the same panic isolation the in-process
/// pool applies. `Err((message, transient))`.
fn execute(
    kind: &str,
    params: Option<protocol::JobParams>,
    matrix: Option<String>,
    mem: &TraceMemCache,
    state_dir: &std::path::Path,
) -> Result<JobResult, (String, bool)> {
    if let Some(delay) = env_ms("COMMSPEC_WORKER_JOB_DELAY_MS") {
        std::thread::sleep(delay);
    }
    let kind =
        JobKind::from_label(kind).ok_or_else(|| (format!("unknown job kind {kind}"), false))?;
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<JobResult, (String, bool)> {
            match kind {
                JobKind::Campaign => {
                    let matrix = matrix.ok_or(("lease_grant missing matrix".to_string(), false))?;
                    let disk = TraceCache::open(state_dir.join("cache"))
                        .map_err(|e| (format!("cannot open cache: {e}"), true))?;
                    let out = jobs::run_campaign_job(&matrix, disk, Telemetry::sink())
                        .map_err(|e| (e, false))?;
                    Ok(out.result)
                }
                _ => {
                    let params = params.ok_or(("lease_grant missing params".to_string(), false))?;
                    let spec = jobs::spec_of(&params).map_err(|e| (e, false))?;
                    let out = jobs::run_single(kind, &spec, mem).map_err(|e| (e, false))?;
                    Ok(out.result)
                }
            }
        },
    ));
    match run {
        Ok(r) => r,
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err((format!("panic: {msg}"), false))
        }
    }
}

/// Commit the result's artifacts to the worker-local scratch dir,
/// checksums first, each file an atomic tmp+rename. This happens before
/// `job_complete` is sent so a worker killed mid-commit leaves either
/// nothing or complete files — never a torn artifact blessed by a
/// completion message.
fn commit_local(state_dir: &std::path::Path, job_id: &str, result: &JobResult) {
    let dir = state_dir.join("artifacts").join(job_id);
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    for a in &result.artifacts {
        debug_assert_eq!(
            a.fnv,
            campaign::hash::hex(campaign::hash::fnv1a(a.text.as_bytes()))
        );
        let _ = write_atomic(&dir.join(&a.name), a.text.as_bytes());
    }
}
