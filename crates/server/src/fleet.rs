//! The fleet coordinator: lease-based distribution of queued jobs to
//! standalone worker processes, with crash-safe reassignment.
//!
//! ## Lease state machine
//!
//! A queued job handed to a worker becomes a *lease*: a unique id, the
//! worker's name, and a monotonic (`Instant`-based) deadline. Heartbeats
//! renew the deadline; a missed deadline — or the worker's connection
//! dropping — expires the lease and sends the job to a backoff pen, from
//! which it is reassigned to the next worker that asks (capped
//! exponential backoff plus jitter, so a flapping worker cannot make the
//! coordinator hot-loop a doomed job). Every transition is journaled
//! (`event: "lease"`, `op: granted|renewed|expired|reassigned|completed|
//! failed|discarded|quarantined`) *before* it takes effect, so a
//! `kill -9` of the coordinator replays to a consistent per-job health
//! state: leases themselves die with the process (their connections are
//! gone), but the count of workers a job has killed survives restart and
//! keeps counting toward quarantine.
//!
//! ## Poison quarantine
//!
//! A job that kills [`FleetConfig::poison_threshold`] *distinct* workers
//! is quarantined — failed with a diagnostic instead of reassigned — on
//! the theory that the job, not the fleet, is at fault. Deterministic
//! failures a worker *reports* (`job_fail` with `transient: false`) fail
//! immediately, reusing `campaign::journal`'s classification: only
//! transient causes earn a rerun.
//!
//! ## Why completions stay idempotent
//!
//! Lease ids are namespaced by coordinator pid and never reused, and a
//! completion is accepted only while its exact lease is live. A worker
//! that lost its lease (expiry, reassignment, coordinator restart) gets
//! `accepted: false` and its artifacts are discarded — the job either
//! already finished elsewhere (same content-hashed id, same bytes) or is
//! owned by a newer lease.

use crate::queue::QueuedJob;
use campaign::telemetry::{Telemetry, Value};
use protocol::FleetStats;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Fleet tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// How long a lease stays valid without a heartbeat.
    pub lease_ttl: Duration,
    /// Base reassignment delay after a worker death.
    pub reassign_backoff: Duration,
    /// Reassignment delay cap.
    pub backoff_cap: Duration,
    /// Quarantine a job once this many distinct workers died holding it.
    pub poison_threshold: u32,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            lease_ttl: Duration::from_secs(10),
            reassign_backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            poison_threshold: 3,
        }
    }
}

struct WorkerInfo {
    last_seen: Instant,
    connected: bool,
    held: BTreeSet<String>,
}

struct Lease {
    job: QueuedJob,
    worker: String,
    deadline: Instant,
}

/// Per-job failure budget. Lives while the job is non-terminal and
/// survives coordinator restart via journal replay.
#[derive(Default)]
struct Health {
    /// Distinct workers that died (or vanished) while holding this job.
    killers: BTreeSet<String>,
    /// Grant attempts so far (drives the backoff exponent).
    attempts: u64,
}

struct PenEntry {
    due: Instant,
    job: QueuedJob,
}

#[derive(Default)]
struct FleetCounters {
    granted: u64,
    renewed: u64,
    expired: u64,
    reassigned: u64,
    quarantined: u64,
    discarded: u64,
}

#[derive(Default)]
struct Inner {
    workers: BTreeMap<String, WorkerInfo>,
    leases: BTreeMap<String, Lease>,
    health: BTreeMap<String, Health>,
    pen: Vec<PenEntry>,
    next_lease: u64,
    rng: u64,
    counters: FleetCounters,
}

/// Jobs the server must act on after a [`Fleet::tick`] or
/// [`Fleet::disconnect`]: requeue these, quarantine those.
#[derive(Default)]
pub struct Actions {
    /// Matured reassignments: put back at the queue head (their admission
    /// slots are still held).
    pub requeue: Vec<QueuedJob>,
    /// Poison jobs: fail with the given diagnostic instead of rerunning.
    pub quarantine: Vec<(QueuedJob, String)>,
}

impl Actions {
    fn is_empty(&self) -> bool {
        self.requeue.is_empty() && self.quarantine.is_empty()
    }
}

/// Verdict on a worker's `job_complete`.
pub enum Completion {
    /// The lease was live: commit the result. `client` owns the admission
    /// slot to release.
    Accepted { client: String },
    /// No such live lease: the result is discarded idempotently.
    Stale { reason: &'static str },
}

/// Verdict on a worker's `job_fail`.
pub enum FailVerdict {
    /// Deterministic failure: record it, job is done failing.
    Fatal { client: String },
    /// Transient failure: the job is penned and will be reassigned.
    Retry { delay: Duration },
    /// No such live lease: ignored.
    Stale { reason: &'static str },
}

/// The coordinator's lease table. All methods take `now` explicitly so
/// tests drive time without sleeping.
pub struct Fleet {
    cfg: FleetConfig,
    inner: Mutex<Inner>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new(cfg: FleetConfig) -> Fleet {
        Fleet {
            cfg,
            inner: Mutex::new(Inner {
                rng: 0x9e3779b97f4a7c15 ^ u64::from(std::process::id()),
                ..Inner::default()
            }),
        }
    }

    /// The configured lease TTL (sent to workers in `worker_ok`).
    pub fn lease_ttl(&self) -> Duration {
        self.cfg.lease_ttl
    }

    /// Register (or refresh) a worker.
    pub fn register(&self, worker: &str, now: Instant) {
        let mut inner = crate::sync::lock(&self.inner);
        let info = inner
            .workers
            .entry(worker.to_string())
            .or_insert(WorkerInfo {
                last_seen: now,
                connected: true,
                held: BTreeSet::new(),
            });
        info.last_seen = now;
        info.connected = true;
    }

    /// Grant a lease on `job` to `worker`. The caller has already claimed
    /// the job (queue pop + table Queued→Running).
    pub fn grant(
        &self,
        worker: &str,
        job: QueuedJob,
        now: Instant,
        journal: &Telemetry,
    ) -> (String, Duration) {
        let mut inner = crate::sync::lock(&self.inner);
        inner.next_lease += 1;
        let lease = format!("lease.{}.{}", std::process::id(), inner.next_lease);
        let attempt = {
            let health = inner.health.entry(job.id.clone()).or_default();
            health.attempts += 1;
            health.attempts
        };
        journal_lease(journal, "granted", &lease, &job.id, worker, attempt, None);
        if let Some(info) = inner.workers.get_mut(worker) {
            info.last_seen = now;
            info.held.insert(lease.clone());
        }
        inner.leases.insert(
            lease.clone(),
            Lease {
                job,
                worker: worker.to_string(),
                deadline: now + self.cfg.lease_ttl,
            },
        );
        inner.counters.granted += 1;
        (lease, self.cfg.lease_ttl)
    }

    /// Process a heartbeat: refresh the worker, renew the leases it still
    /// holds, and return the ids in `held` that are no longer its —
    /// expired or reassigned — so the worker can abandon them.
    pub fn heartbeat(
        &self,
        worker: &str,
        held: &[String],
        now: Instant,
        journal: &Telemetry,
    ) -> Vec<String> {
        let mut inner = crate::sync::lock(&self.inner);
        if let Some(info) = inner.workers.get_mut(worker) {
            info.last_seen = now;
            info.connected = true;
        }
        let mut lost = Vec::new();
        for id in held {
            match inner.leases.get_mut(id) {
                Some(lease) if lease.worker == worker => {
                    lease.deadline = now + self.cfg.lease_ttl;
                    let (job, attempt) = (lease.job.id.clone(), 0);
                    journal_lease(journal, "renewed", id, &job, worker, attempt, None);
                    inner.counters.renewed += 1;
                }
                _ => lost.push(id.clone()),
            }
        }
        lost
    }

    /// Judge a `job_complete`: accepted exactly when the named lease is
    /// live, held by this worker, and covers this job.
    pub fn complete(
        &self,
        worker: &str,
        lease_id: &str,
        job_id: &str,
        journal: &Telemetry,
    ) -> Completion {
        let mut inner = crate::sync::lock(&self.inner);
        let valid = matches!(
            inner.leases.get(lease_id),
            Some(l) if l.worker == worker && l.job.id == job_id
        );
        if !valid {
            inner.counters.discarded += 1;
            journal_lease(journal, "discarded", lease_id, job_id, worker, 0, None);
            return Completion::Stale {
                reason: "lease not held; result discarded",
            };
        }
        let lease = inner.leases.remove(lease_id).expect("checked above");
        if let Some(info) = inner.workers.get_mut(worker) {
            info.held.remove(lease_id);
        }
        inner.health.remove(job_id);
        journal_lease(journal, "completed", lease_id, job_id, worker, 0, None);
        Completion::Accepted {
            client: lease.job.client,
        }
    }

    /// Judge a `job_fail`. Transient causes earn a penned retry (the same
    /// classification a resumed campaign uses); anything else is a
    /// deterministic failure and sticks. A retry budget equal to the
    /// poison threshold stops a transiently-failing job from looping
    /// forever.
    pub fn fail(
        &self,
        worker: &str,
        lease_id: &str,
        job_id: &str,
        transient: bool,
        now: Instant,
        journal: &Telemetry,
    ) -> FailVerdict {
        let mut inner = crate::sync::lock(&self.inner);
        let valid = matches!(
            inner.leases.get(lease_id),
            Some(l) if l.worker == worker && l.job.id == job_id
        );
        if !valid {
            inner.counters.discarded += 1;
            journal_lease(journal, "discarded", lease_id, job_id, worker, 0, None);
            return FailVerdict::Stale {
                reason: "lease not held; failure ignored",
            };
        }
        let lease = inner.leases.remove(lease_id).expect("checked above");
        if let Some(info) = inner.workers.get_mut(worker) {
            info.held.remove(lease_id);
        }
        // Reuse the campaign journal's deterministic-vs-transient rule.
        let record = failure_record(if transient { "transient" } else { "error" });
        let rerun = record.action() == campaign::journal::ResumeAction::Rerun;
        let attempts = inner.health.get(job_id).map_or(0, |h| h.attempts);
        if !rerun || attempts >= u64::from(self.cfg.poison_threshold) {
            inner.health.remove(job_id);
            journal_lease(journal, "failed", lease_id, job_id, worker, attempts, None);
            return FailVerdict::Fatal {
                client: lease.job.client,
            };
        }
        let delay = self.backoff(&mut inner, attempts);
        journal_lease(
            journal,
            "expired",
            lease_id,
            job_id,
            worker,
            attempts,
            Some("transient"),
        );
        inner.counters.expired += 1;
        inner.pen.push(PenEntry {
            due: now + delay,
            job: lease.job,
        });
        FailVerdict::Retry { delay }
    }

    /// Advance time: expire leases past their deadline, release matured
    /// pen entries for requeue, quarantine poison jobs.
    pub fn tick(&self, now: Instant, journal: &Telemetry) -> Actions {
        let mut inner = crate::sync::lock(&self.inner);
        let overdue: Vec<String> = inner
            .leases
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(id, _)| id.clone())
            .collect();
        let mut actions = Actions::default();
        for id in overdue {
            self.expire(&mut inner, &id, "lease-timeout", now, journal, &mut actions);
        }
        let mut due = Vec::new();
        inner.pen.retain_mut(|entry| {
            if entry.due <= now {
                due.push(std::mem::replace(
                    &mut entry.job,
                    QueuedJob {
                        id: String::new(),
                        client: String::new(),
                    },
                ));
                false
            } else {
                true
            }
        });
        for job in due {
            let attempt = inner.health.get(&job.id).map_or(0, |h| h.attempts);
            journal_lease(journal, "reassigned", "-", &job.id, "-", attempt, None);
            inner.counters.reassigned += 1;
            actions.requeue.push(job);
        }
        if !actions.is_empty() {
            journal.flush();
        }
        actions
    }

    /// A worker's connection dropped: expire everything it holds right
    /// away (the fast path the heartbeat timeout backstops).
    pub fn disconnect(&self, worker: &str, now: Instant, journal: &Telemetry) -> Actions {
        let mut inner = crate::sync::lock(&self.inner);
        let mut actions = Actions::default();
        let held: Vec<String> = inner
            .workers
            .get_mut(worker)
            .map(|info| {
                info.connected = false;
                info.held.iter().cloned().collect()
            })
            .unwrap_or_default();
        for id in held {
            self.expire(&mut inner, &id, "disconnect", now, journal, &mut actions);
        }
        if !actions.is_empty() {
            journal.flush();
        }
        actions
    }

    /// Shared expiry path: account the death, then pen or quarantine.
    fn expire(
        &self,
        inner: &mut Inner,
        lease_id: &str,
        cause: &'static str,
        now: Instant,
        journal: &Telemetry,
        actions: &mut Actions,
    ) {
        let Some(lease) = inner.leases.remove(lease_id) else {
            return;
        };
        if let Some(info) = inner.workers.get_mut(&lease.worker) {
            info.held.remove(lease_id);
        }
        inner.counters.expired += 1;
        let (deaths, attempts) = {
            let health = inner.health.entry(lease.job.id.clone()).or_default();
            health.killers.insert(lease.worker.clone());
            (health.killers.len() as u32, health.attempts)
        };
        journal_lease(
            journal,
            "expired",
            lease_id,
            &lease.job.id,
            &lease.worker,
            attempts,
            Some(cause),
        );
        if deaths >= self.cfg.poison_threshold {
            inner.health.remove(&lease.job.id);
            inner.counters.quarantined += 1;
            journal_lease(
                journal,
                "quarantined",
                lease_id,
                &lease.job.id,
                &lease.worker,
                attempts,
                Some(cause),
            );
            let reason = format!(
                "quarantined: job killed {deaths} distinct workers (last: {} via {cause})",
                lease.worker
            );
            actions.quarantine.push((lease.job, reason));
        } else {
            let delay = self.backoff(inner, attempts);
            inner.pen.push(PenEntry {
                due: now + delay,
                job: lease.job,
            });
        }
    }

    /// Capped exponential backoff with jitter: `base * 2^(attempt-1)`,
    /// capped, plus up to 25% random extra so simultaneous deaths don't
    /// reassign in lockstep.
    fn backoff(&self, inner: &mut Inner, attempt: u64) -> Duration {
        let base = self.cfg.reassign_backoff.max(Duration::from_millis(1));
        let exp = attempt.saturating_sub(1).min(16) as u32;
        let raw = base
            .saturating_mul(1u32 << exp.min(16))
            .min(self.cfg.backoff_cap);
        // xorshift64: deterministic per-process jitter without a clock.
        inner.rng ^= inner.rng << 13;
        inner.rng ^= inner.rng >> 7;
        inner.rng ^= inner.rng << 17;
        let jitter_ns = (raw.as_nanos() as u64 / 4).max(1);
        raw + Duration::from_nanos(inner.rng % jitter_ns)
    }

    /// Workers considered alive: connected, or heard from within two TTLs
    /// (covers `--stdio` workers whose transport the server doesn't own).
    pub fn live_workers(&self, now: Instant) -> usize {
        let inner = crate::sync::lock(&self.inner);
        inner
            .workers
            .values()
            .filter(|w| {
                w.connected || now.saturating_duration_since(w.last_seen) < 2 * self.cfg.lease_ttl
            })
            .count()
    }

    /// Work the fleet still owes the queue: live leases plus penned
    /// reassignments. Shutdown drains until this reaches zero.
    pub fn outstanding(&self) -> usize {
        let inner = crate::sync::lock(&self.inner);
        inner.leases.len() + inner.pen.len()
    }

    /// Counters for the `stats` response.
    pub fn snapshot(&self, now: Instant) -> FleetStats {
        let inner = crate::sync::lock(&self.inner);
        FleetStats {
            workers_seen: inner.workers.len() as u64,
            workers_live: inner
                .workers
                .values()
                .filter(|w| {
                    w.connected
                        || now.saturating_duration_since(w.last_seen) < 2 * self.cfg.lease_ttl
                })
                .count() as u64,
            leases_granted: inner.counters.granted,
            leases_renewed: inner.counters.renewed,
            leases_expired: inner.counters.expired,
            leases_reassigned: inner.counters.reassigned,
            jobs_quarantined: inner.counters.quarantined,
            completions_discarded: inner.counters.discarded,
        }
    }

    /// Replay one journaled `lease` line (a flat field map from
    /// `campaign::journal::parse_line`) during coordinator restart.
    /// Leases themselves died with the old process — only per-job failure
    /// budgets are rebuilt, so a job that killed workers before the crash
    /// keeps counting toward quarantine after it.
    pub fn replay(&self, fields: &BTreeMap<String, String>) {
        let (Some(op), Some(job)) = (fields.get("op"), fields.get("job")) else {
            return;
        };
        let mut inner = crate::sync::lock(&self.inner);
        match op.as_str() {
            "expired" => {
                let health = inner.health.entry(job.clone()).or_default();
                if let Some(worker) = fields.get("worker") {
                    health.killers.insert(worker.clone());
                }
                if let Some(att) = fields.get("attempt").and_then(|a| a.parse().ok()) {
                    health.attempts = health.attempts.max(att);
                }
            }
            "granted" => {
                if let Some(att) = fields.get("attempt").and_then(|a| a.parse::<u64>().ok()) {
                    let health = inner.health.entry(job.clone()).or_default();
                    health.attempts = health.attempts.max(att);
                }
            }
            // Terminal ops clear the budget: the job's outcome is decided
            // (and `finished` replay serves it), so stale health must not
            // poison an unrelated future resubmission.
            "completed" | "failed" | "quarantined" => {
                inner.health.remove(job);
            }
            _ => {}
        }
    }

    /// Health budget already charged against `job` (for tests and
    /// diagnostics).
    #[cfg(test)]
    fn deaths(&self, job: &str) -> u32 {
        let inner = crate::sync::lock(&self.inner);
        inner.health.get(job).map_or(0, |h| h.killers.len() as u32)
    }
}

fn journal_lease(
    journal: &Telemetry,
    op: &str,
    lease: &str,
    job: &str,
    worker: &str,
    attempt: u64,
    cause: Option<&str>,
) {
    let mut fields: Vec<(&str, Value)> = vec![
        ("op", op.into()),
        ("lease", lease.into()),
        ("job", job.into()),
        ("worker", worker.into()),
        ("attempt", Value::U(attempt)),
    ];
    if let Some(c) = cause {
        fields.push(("cause", c.into()));
    }
    journal.emit("lease", &fields);
}

/// A synthetic `JobRecord` carrying just the failure cause, so the fleet
/// asks the exact same question a resumed campaign asks.
fn failure_record(cause: &str) -> campaign::journal::JobRecord {
    let mut fields = BTreeMap::new();
    fields.insert("cause".to_string(), cause.to_string());
    campaign::journal::JobRecord {
        status: "failed".to_string(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str) -> QueuedJob {
        QueuedJob {
            id: id.to_string(),
            client: "c".to_string(),
        }
    }

    fn fleet(ttl_ms: u64, poison: u32) -> Fleet {
        Fleet::new(FleetConfig {
            lease_ttl: Duration::from_millis(ttl_ms),
            reassign_backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            poison_threshold: poison,
        })
    }

    #[test]
    fn grant_heartbeat_complete_is_the_happy_path() {
        let f = fleet(100, 3);
        let t0 = Instant::now();
        let sink = Telemetry::sink();
        f.register("w1", t0);
        assert_eq!(f.live_workers(t0), 1);
        let (lease, ttl) = f.grant("w1", job("j1"), t0, &sink);
        assert_eq!(ttl, Duration::from_millis(100));
        assert_eq!(f.outstanding(), 1);
        // Renewal pushes the deadline: at t0+150 the lease is still live
        // because it was renewed at t0+80.
        let lost = f.heartbeat(
            "w1",
            std::slice::from_ref(&lease),
            t0 + Duration::from_millis(80),
            &sink,
        );
        assert!(lost.is_empty());
        let actions = f.tick(t0 + Duration::from_millis(150), &sink);
        assert!(actions.requeue.is_empty() && actions.quarantine.is_empty());
        match f.complete("w1", &lease, "j1", &sink) {
            Completion::Accepted { client } => assert_eq!(client, "c"),
            Completion::Stale { .. } => panic!("live lease must be accepted"),
        }
        assert_eq!(f.outstanding(), 0);
        let snap = f.snapshot(t0);
        assert_eq!(snap.leases_granted, 1);
        assert_eq!(snap.leases_renewed, 1);
        assert_eq!(snap.completions_discarded, 0);
    }

    #[test]
    fn missed_heartbeats_expire_and_reassign_with_backoff() {
        let f = fleet(100, 3);
        let t0 = Instant::now();
        let sink = Telemetry::sink();
        f.register("w1", t0);
        let (lease, _) = f.grant("w1", job("j1"), t0, &sink);
        // Deadline passes with no heartbeat: expired, penned with backoff
        // — not requeued in the same tick.
        let t1 = t0 + Duration::from_millis(101);
        let actions = f.tick(t1, &sink);
        assert!(actions.requeue.is_empty(), "backoff delays the requeue");
        assert_eq!(f.snapshot(t1).leases_expired, 1);
        // Once the pen matures the job comes back for reassignment.
        let t2 = t1 + Duration::from_millis(200);
        let actions = f.tick(t2, &sink);
        assert_eq!(actions.requeue.len(), 1);
        assert_eq!(actions.requeue[0].id, "j1");
        assert_eq!(f.snapshot(t2).leases_reassigned, 1);
        // The dead worker's late completion is discarded idempotently.
        match f.complete("w1", &lease, "j1", &sink) {
            Completion::Stale { .. } => {}
            Completion::Accepted { .. } => panic!("expired lease must not commit"),
        }
        assert_eq!(f.snapshot(t2).completions_discarded, 1);
        // And its heartbeat learns the lease is gone.
        let lost = f.heartbeat("w1", &[lease], t2, &sink);
        assert_eq!(lost.len(), 1);
    }

    #[test]
    fn disconnect_expires_held_leases_immediately() {
        let f = fleet(10_000, 3);
        let t0 = Instant::now();
        let sink = Telemetry::sink();
        f.register("w1", t0);
        let (_lease, _) = f.grant("w1", job("j1"), t0, &sink);
        let actions = f.disconnect("w1", t0, &sink);
        // Penned, not yet requeued; worker no longer live.
        assert!(actions.quarantine.is_empty());
        assert_eq!(f.outstanding(), 1);
        assert_eq!(f.live_workers(t0 + Duration::from_secs(30)), 0);
        assert_eq!(f.deaths("j1"), 1);
    }

    #[test]
    fn a_job_that_kills_n_distinct_workers_is_quarantined() {
        let f = fleet(100, 2);
        let t0 = Instant::now();
        let sink = Telemetry::sink();
        for w in ["w1", "w2"] {
            f.register(w, t0);
        }
        let (_l1, _) = f.grant("w1", job("j1"), t0, &sink);
        let a = f.disconnect("w1", t0, &sink);
        assert!(a.quarantine.is_empty(), "first death: reassign");
        // Drain the pen (the job requeues) before the next grant, as the
        // coordinator's monitor would.
        let t1 = t0 + Duration::from_millis(200);
        let a = f.tick(t1, &sink);
        assert_eq!(a.requeue.len(), 1);
        let (_l2, _) = f.grant("w2", job("j1"), t1, &sink);
        let a = f.disconnect("w2", t1, &sink);
        assert_eq!(a.quarantine.len(), 1, "second distinct death: poison");
        assert!(a.quarantine[0].1.contains("quarantined"));
        assert_eq!(f.snapshot(t0).jobs_quarantined, 1);
        assert_eq!(f.outstanding(), 0, "quarantined jobs leave the pen");
    }

    #[test]
    fn the_same_worker_dying_twice_counts_once() {
        let f = fleet(100, 2);
        let t0 = Instant::now();
        let sink = Telemetry::sink();
        f.register("w1", t0);
        let (_, _) = f.grant("w1", job("j1"), t0, &sink);
        f.disconnect("w1", t0, &sink);
        f.register("w1", t0);
        let (_, _) = f.grant("w1", job("j1"), t0, &sink);
        let a = f.disconnect("w1", t0, &sink);
        assert!(
            a.quarantine.is_empty(),
            "poison counts *distinct* workers; one flapping worker is its own problem"
        );
        assert_eq!(f.deaths("j1"), 1);
    }

    #[test]
    fn reported_failures_classify_like_the_campaign_journal() {
        let f = fleet(100, 3);
        let t0 = Instant::now();
        let sink = Telemetry::sink();
        f.register("w1", t0);
        let (l1, _) = f.grant("w1", job("j1"), t0, &sink);
        match f.fail("w1", &l1, "j1", false, t0, &sink) {
            FailVerdict::Fatal { client } => assert_eq!(client, "c"),
            _ => panic!("deterministic failure must be fatal"),
        }
        let (l2, _) = f.grant("w1", job("j2"), t0, &sink);
        match f.fail("w1", &l2, "j2", true, t0, &sink) {
            FailVerdict::Retry { delay } => assert!(delay >= Duration::from_millis(10)),
            _ => panic!("transient failure earns a retry"),
        }
        // Stale lease id: ignored either way.
        assert!(matches!(
            f.fail("w1", "lease.0.999", "j2", true, t0, &sink),
            FailVerdict::Stale { .. }
        ));
    }

    #[test]
    fn transient_retries_are_capped_by_the_poison_budget() {
        let f = fleet(1000, 2);
        let t0 = Instant::now();
        let sink = Telemetry::sink();
        f.register("w1", t0);
        let (l1, _) = f.grant("w1", job("j1"), t0, &sink);
        assert!(matches!(
            f.fail("w1", &l1, "j1", true, t0, &sink),
            FailVerdict::Retry { .. }
        ));
        let (l2, _) = f.grant("w1", job("j1"), t0, &sink);
        assert!(matches!(
            f.fail("w1", &l2, "j1", true, t0, &sink),
            FailVerdict::Fatal { .. },
        ));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let f = fleet(100, 10);
        let mut inner = crate::sync::lock(&f.inner);
        let d1 = f.backoff(&mut inner, 1);
        let d4 = f.backoff(&mut inner, 4);
        let d16 = f.backoff(&mut inner, 16);
        assert!(d1 >= Duration::from_millis(10) && d1 <= Duration::from_millis(13));
        assert!(d4 >= Duration::from_millis(80), "10ms * 2^3");
        assert!(
            d16 <= Duration::from_millis(101),
            "capped at 80ms + 25% jitter, got {d16:?}"
        );
    }

    #[test]
    fn journal_replay_restores_failure_budgets_not_leases() {
        let f = fleet(100, 2);
        let line = |op: &str, worker: &str| {
            let mut m = BTreeMap::new();
            m.insert("op".to_string(), op.to_string());
            m.insert("job".to_string(), "j1".to_string());
            m.insert("worker".to_string(), worker.to_string());
            m.insert("attempt".to_string(), "1".to_string());
            m
        };
        f.replay(&line("granted", "w1"));
        f.replay(&line("expired", "w1"));
        assert_eq!(f.deaths("j1"), 1);
        assert_eq!(f.outstanding(), 0, "no lease objects resurrect");
        // One more distinct death after restart hits the threshold of 2.
        let t0 = Instant::now();
        let sink = Telemetry::sink();
        f.register("w2", t0);
        let (_l, _) = f.grant("w2", job("j1"), t0, &sink);
        let a = f.disconnect("w2", t0, &sink);
        assert_eq!(
            a.quarantine.len(),
            1,
            "poison budget survived the coordinator restart"
        );
        // A terminal op clears the budget.
        f.replay(&line("completed", "w2"));
        assert_eq!(f.deaths("j1"), 0);
    }
}
