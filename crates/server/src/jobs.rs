//! Job identity and execution: the bridge from wire-level requests to the
//! paper pipeline (trace → generate → execute → verify).
//!
//! Job ids are content hashes of the request parameters, so resubmitting
//! the same work yields the same id — which is what makes the journal a
//! durability layer: a restarted server recognises a completed job by its
//! id and serves the recorded result instead of re-executing.
//!
//! Execution calls the exact library functions the batch CLI calls
//! (`scalatrace::trace_app`, `benchgen::generate`,
//! `conceptual::printer::print`, `World::run_hooked` with an [`MpiP`]
//! hook), so every artifact — folded trace text, program text, mpiP
//! profile — is byte-identical to `commgen`'s output for the same inputs.

use crate::memcache::TraceMemCache;
use campaign::hash;
use campaign::matrix::{parse_class, CampaignSpec, JobSpec, NETWORKS};
use campaign::{run_campaign, Telemetry, TraceCache};
use conceptual::interp::run_rank;
use miniapps::registry;
use mpisim::network::{self, NetworkModel};
use mpisim::profile::MpiP;
use mpisim::world::World;
use protocol::{Artifact, JobParams, JobResult};
use std::sync::Arc;

/// What a job does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Produce the folded trace text.
    Trace,
    /// Produce the generated program text.
    Generate,
    /// Execute the generated benchmark: profile plus timing metrics.
    Simulate,
    /// Run a whole campaign matrix.
    Campaign,
}

impl JobKind {
    /// Wire and journal label.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Trace => "trace",
            JobKind::Generate => "generate",
            JobKind::Simulate => "simulate",
            JobKind::Campaign => "campaign",
        }
    }

    /// Inverse of [`JobKind::label`].
    pub fn from_label(s: &str) -> Option<JobKind> {
        match s {
            "trace" => Some(JobKind::Trace),
            "generate" => Some(JobKind::Generate),
            "simulate" => Some(JobKind::Simulate),
            "campaign" => Some(JobKind::Campaign),
            _ => None,
        }
    }
}

fn model_of(name: &str) -> Arc<dyn NetworkModel> {
    match name {
        "bgl" => network::blue_gene_l(),
        "ethernet" => network::ethernet_cluster(),
        _ => network::ideal(),
    }
}

/// Validate wire parameters into a concrete [`JobSpec`]. The spec carries
/// batch defaults for the knobs the wire protocol does not expose
/// (`compute_scale`, `chaos_seeds`, `pipeline_threads`), so its
/// `trace_key` matches the one a `commbench` campaign over the same
/// configuration would use — the two front ends share cache entries.
pub fn spec_of(p: &JobParams) -> Result<JobSpec, String> {
    let app = registry::lookup(&p.app).ok_or_else(|| {
        let names: Vec<&str> = registry::all().iter().map(|a| a.name).collect();
        format!("unknown app {}; available: {}", p.app, names.join(", "))
    })?;
    if p.ranks == 0 {
        return Err("ranks must be at least 1".to_string());
    }
    if !(app.valid_ranks)(p.ranks as usize) {
        return Err(format!("{} cannot run on {} ranks", p.app, p.ranks));
    }
    if !NETWORKS.contains(&p.network.as_str()) {
        return Err(format!(
            "unknown network {} (expected one of {})",
            p.network,
            NETWORKS.join("|")
        ));
    }
    Ok(JobSpec {
        app: p.app.clone(),
        ranks: p.ranks as usize,
        class: parse_class(&p.class)?,
        network: p.network.clone(),
        align: p.align,
        resolve: p.resolve,
        comments: p.comments,
        compute_scale: 1.0,
        iterations: p.iterations.map(|i| i as usize),
        chaos_seeds: 0,
        pipeline_threads: 1,
    })
}

/// Deterministic id of a single-pipeline job: kind label plus the hash of
/// the full job configuration.
pub fn single_job_id(kind: JobKind, spec: &JobSpec) -> String {
    let mut pairs = spec.config_pairs();
    pairs.push(("kind".into(), kind.label().into()));
    format!("{}.{}", kind.label(), hash::hex(hash::hash_pairs(&pairs)))
}

/// Deterministic id of a campaign job: hash of the matrix document itself.
pub fn campaign_job_id(matrix: &str) -> String {
    format!("campaign.{}", hash::hex(hash::fnv1a(matrix.as_bytes())))
}

/// Build a checksummed artifact.
pub fn artifact(name: &str, text: String) -> Artifact {
    Artifact {
        name: name.to_string(),
        fnv: hash::hex(hash::fnv1a(text.as_bytes())),
        text,
    }
}

/// Outcome of executing a job body: the wire-level result plus how many
/// memory-cache evictions the execution forced (accounted to the
/// submitting client by the server).
pub struct Executed {
    /// The result shipped to clients and journaled to disk.
    pub result: JobResult,
    /// LRU evictions this execution caused.
    pub evictions: u64,
}

/// Run a trace / generate / simulate job. `spec` must come from
/// [`spec_of`] (so the app and rank count are already validated).
pub fn run_single(kind: JobKind, spec: &JobSpec, mem: &TraceMemCache) -> Result<Executed, String> {
    let model = model_of(&spec.network);
    let key = spec.trace_key();
    let mut evictions = 0;

    // 1. Trace: memory, disk, or a fresh application run.
    let (trace, trace_text, t_app, cached) = match mem.load(key) {
        Some(hit) => (hit.trace, hit.text, hit.t_app, true),
        None => {
            let app = registry::lookup(&spec.app).ok_or("app vanished from registry")?;
            let params = miniapps::AppParams {
                class: spec.class,
                iterations: spec.iterations,
                compute_scale: spec.compute_scale,
            };
            let run = app.run;
            let traced =
                scalatrace::trace_app(spec.ranks, model.clone(), move |ctx| run(ctx, &params))
                    .map_err(|e| format!("tracing failed: {e}"))?;
            let t_app = traced.report.total_time;
            let (text, evicted) = mem.store(key, &traced.trace, t_app, &spec.trace_pairs());
            evictions += evicted;
            (traced.trace, text, t_app, false)
        }
    };

    let mut result = JobResult {
        kind: kind.label().to_string(),
        cached,
        t_app_ns: Some(t_app.as_nanos()),
        ..JobResult::default()
    };
    if kind == JobKind::Trace {
        result
            .artifacts
            .push(artifact("trace.st", (*trace_text).clone()));
        return Ok(Executed { result, evictions });
    }

    // 2. Generate the executable specification.
    let opts = benchgen::GenOptions {
        align_collectives: spec.align,
        resolve_wildcards: spec.resolve,
        emit_comments: spec.comments,
        ..benchgen::GenOptions::default()
    };
    let generated =
        benchgen::generate(&trace, &opts).map_err(|e| format!("generation failed: {e}"))?;
    let program_text = conceptual::printer::print(&generated.program);
    if kind == JobKind::Generate {
        result
            .artifacts
            .push(artifact("program.ncptl", program_text));
        return Ok(Executed { result, evictions });
    }

    // 3. Execute under an mpiP hook: one run yields T_gen and the profile.
    let program = Arc::new(generated.program);
    let prog = Arc::clone(&program);
    let (report, hooks) = World::new(spec.ranks)
        .network(model)
        .run_hooked(|_| MpiP::new(), move |ctx| run_rank(ctx, &prog))
        .map_err(|e| format!("generated benchmark failed: {e}"))?;
    let t_gen = report.total_time;
    let profile_text = MpiP::merge_all(hooks.iter()).to_string();

    result.t_gen_ns = Some(t_gen.as_nanos());
    result.err_pct = Some(if t_app.as_nanos() == 0 {
        0.0
    } else {
        (t_gen.as_secs_f64() - t_app.as_secs_f64()).abs() / t_app.as_secs_f64() * 100.0
    });
    result
        .artifacts
        .push(artifact("trace.st", (*trace_text).clone()));
    result
        .artifacts
        .push(artifact("program.ncptl", program_text));
    result
        .artifacts
        .push(artifact("profile.mpip", profile_text));
    Ok(Executed { result, evictions })
}

/// Run a campaign job over a matrix document. The campaign runner gets
/// its own handle on the shared *disk* cache (its workers bypass the
/// memory layer) and journals its per-job telemetry to `telemetry`.
pub fn run_campaign_job(
    matrix: &str,
    disk: TraceCache,
    telemetry: Telemetry,
) -> Result<Executed, String> {
    let spec = CampaignSpec::parse(matrix).map_err(|e| format!("bad matrix: {e}"))?;
    let report = run_campaign(&spec, disk, telemetry);
    let result = JobResult {
        kind: JobKind::Campaign.label().to_string(),
        cached: false,
        ok: Some(report.ok() as u64),
        failed: Some(report.failed() as u64),
        timed_out: Some(report.timed_out() as u64),
        mape: Some(report.mape()),
        artifacts: vec![artifact("report.txt", report.to_string())],
        ..JobResult::default()
    };
    Ok(Executed {
        result,
        evictions: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "server-jobs-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mem(tag: &str) -> TraceMemCache {
        TraceMemCache::new(TraceCache::open(temp_dir(tag)).unwrap(), 4, 1 << 24)
    }

    #[test]
    fn job_ids_are_deterministic_and_kind_qualified() {
        let p = JobParams::new("ring", 4);
        let spec = spec_of(&p).unwrap();
        let a = single_job_id(JobKind::Trace, &spec);
        let b = single_job_id(JobKind::Trace, &spec_of(&p).unwrap());
        assert_eq!(a, b, "same request, same id");
        assert!(a.starts_with("trace."));
        assert_ne!(a, single_job_id(JobKind::Simulate, &spec));
        let mut p2 = p.clone();
        p2.ranks = 8;
        assert_ne!(a, single_job_id(JobKind::Trace, &spec_of(&p2).unwrap()));
        assert_eq!(
            campaign_job_id("apps = ring\n"),
            campaign_job_id("apps = ring\n")
        );
        assert_ne!(
            campaign_job_id("apps = ring\n"),
            campaign_job_id("apps = cg\n")
        );
    }

    #[test]
    fn spec_of_validates_app_ranks_network_class() {
        assert!(spec_of(&JobParams::new("ring", 4)).is_ok());
        assert!(spec_of(&JobParams::new("nosuch", 4))
            .unwrap_err()
            .contains("unknown app"));
        assert!(spec_of(&JobParams::new("ring", 0))
            .unwrap_err()
            .contains("at least 1"));
        let mut p = JobParams::new("ring", 4);
        p.network = "myrinet".to_string();
        assert!(spec_of(&p).unwrap_err().contains("unknown network"));
        let mut p = JobParams::new("ring", 4);
        p.class = "Z".to_string();
        assert!(spec_of(&p).is_err());
        // Injected fault apps are a campaign-internal facility, not a
        // service surface.
        assert!(spec_of(&JobParams::new("__panic__", 4)).is_err());
    }

    #[test]
    fn trace_generate_simulate_share_one_cache_entry() {
        let mem = mem("pipeline");
        let spec = spec_of(&JobParams::new("ring", 4)).unwrap();

        let traced = run_single(JobKind::Trace, &spec, &mem).unwrap();
        assert!(!traced.result.cached, "first touch traces the app");
        assert_eq!(traced.result.artifacts.len(), 1);
        assert_eq!(traced.result.artifacts[0].name, "trace.st");

        let generated = run_single(JobKind::Generate, &spec, &mem).unwrap();
        assert!(generated.result.cached, "trace came from memory");
        assert_eq!(generated.result.artifacts[0].name, "program.ncptl");
        assert!(!generated.result.artifacts[0].text.is_empty());

        let simulated = run_single(JobKind::Simulate, &spec, &mem).unwrap();
        assert!(simulated.result.cached);
        let names: Vec<&str> = simulated
            .result
            .artifacts
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["trace.st", "program.ncptl", "profile.mpip"]);
        assert!(simulated.result.t_gen_ns.is_some());
        assert!(simulated.result.err_pct.is_some());

        // The simulate job's trace and program artifacts are byte-identical
        // to the dedicated jobs' (one pipeline, one truth).
        assert_eq!(
            simulated.result.artifacts[0].text,
            traced.result.artifacts[0].text
        );
        assert_eq!(
            simulated.result.artifacts[1].text,
            generated.result.artifacts[1 - 1].text
        );
        // And every artifact checksum verifies.
        for a in &simulated.result.artifacts {
            assert_eq!(a.fnv, hash::hex(hash::fnv1a(a.text.as_bytes())));
        }
        let _ = std::fs::remove_dir_all(mem.disk().dir());
    }

    #[test]
    fn campaign_job_runs_a_matrix_end_to_end() {
        let disk = TraceCache::open(temp_dir("campaign")).unwrap();
        let dir = disk.dir().to_path_buf();
        let out = run_campaign_job(
            "apps = ring\nranks = 4\nworkers = 1\n",
            disk,
            Telemetry::sink(),
        )
        .unwrap();
        assert_eq!(out.result.ok, Some(1));
        assert_eq!(out.result.failed, Some(0));
        assert_eq!(out.result.artifacts[0].name, "report.txt");
        assert!(out.result.artifacts[0].text.contains("1 ok"));
        assert!(run_campaign_job(
            "nonsense ===",
            TraceCache::open(&dir).unwrap(),
            Telemetry::sink()
        )
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
