//! `commspec-server`: a long-running trace-and-generation service over
//! the campaign runner.
//!
//! The batch tools (`commgen`, `commbench`) pay the full pipeline cost on
//! every invocation. This crate fronts the same library calls with a
//! daemon: a versioned line-delimited JSON protocol ([`protocol`]), a
//! multi-tenant FIFO job queue with per-client admission control
//! ([`queue`]), a sharded in-memory trace cache layered over the
//! campaign's disk cache ([`memcache`]), async job handles, and a JSONL
//! journal as the durability layer ([`server`]): a killed server replays
//! completed jobs on restart instead of rerunning them. On top of that
//! sits the distributed campaign fleet: a lease-based coordinator
//! ([`fleet`]) hands jobs to standalone worker processes ([`worker`])
//! over the same wire protocol, detects dead workers by missed
//! heartbeats, and reassigns their jobs with capped backoff — falling
//! back to in-process execution whenever no workers are registered.
//!
//! Everything a served job produces is byte-identical to what the batch
//! CLI produces for the same configuration, because both sides call the
//! exact same library functions with the same defaults ([`jobs`]).
//!
//! See `DESIGN.md` §13 for the protocol grammar and the durability
//! argument.

pub mod client;
pub mod fleet;
pub mod jobs;
pub mod memcache;
pub mod queue;
pub mod server;
pub mod sync;
pub mod worker;

pub use client::Client;
pub use fleet::{Fleet, FleetConfig};
pub use jobs::JobKind;
pub use memcache::{CacheSource, CacheStats, TraceMemCache};
pub use queue::{JobQueue, QueueLimits, Reject};
pub use server::{Server, ServerOptions};
pub use worker::{run_worker, WorkerOptions};
