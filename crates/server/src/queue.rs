//! Multi-tenant FIFO job queue: admission control (per-client in-flight
//! caps and token-bucket rate limits) in front of a blocking FIFO the
//! worker pool drains.
//!
//! Admission is decided at submit time, synchronously, so a rejected
//! client gets an immediate `error` response instead of a job that later
//! dies in the queue. In-flight counts cover queued *and* running jobs and
//! are released only when the job reaches a terminal state, so a client
//! cannot amplify its share of the worker pool by submitting faster than
//! it drains.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Admission limits, applied per client identity.
#[derive(Clone, Copy, Debug)]
pub struct QueueLimits {
    /// Maximum queued + running jobs per client.
    pub max_inflight: usize,
    /// Token-bucket refill rate, submissions per second.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
}

impl Default for QueueLimits {
    fn default() -> QueueLimits {
        QueueLimits {
            max_inflight: 16,
            rate_per_sec: 50.0,
            burst: 100.0,
        }
    }
}

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The client's token bucket is empty.
    RateLimited,
    /// The client already has `max_inflight` jobs queued or running.
    TooManyInFlight,
}

impl Reject {
    /// Stable machine-readable code for the `error` response.
    pub fn code(&self) -> &'static str {
        match self {
            Reject::RateLimited => "rate-limited",
            Reject::TooManyInFlight => "too-many-in-flight",
        }
    }
}

/// Classic token bucket: `rate` tokens per second up to `burst`, one token
/// per submission. Time is passed in so tests don't sleep.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    tokens: f64,
    rate: f64,
    burst: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket.
    pub fn new(rate_per_sec: f64, burst: f64, now: Instant) -> TokenBucket {
        TokenBucket {
            tokens: burst,
            rate: rate_per_sec,
            burst,
            last: now,
        }
    }

    /// Refill for the time elapsed since the last call, then try to take
    /// one token.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Outcome of a bounded pop ([`JobQueue::pop_timeout`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PopResult {
    /// A job was dequeued.
    Job(QueuedJob),
    /// The deadline passed with the FIFO still empty.
    Empty,
    /// The queue is closed and fully drained; the worker should exit.
    Closed,
}

/// One queued unit of work: the job id plus the client it accounts to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueuedJob {
    /// Job id (key into the server's job table).
    pub id: String,
    /// Submitting client.
    pub client: String,
}

#[derive(Default)]
struct Inner {
    fifo: VecDeque<QueuedJob>,
    inflight: BTreeMap<String, usize>,
    buckets: BTreeMap<String, TokenBucket>,
    closed: bool,
}

/// The shared queue: submitters push through admission control, workers
/// block on [`JobQueue::pop`].
pub struct JobQueue {
    limits: QueueLimits,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl JobQueue {
    /// An open queue with the given per-client limits.
    pub fn new(limits: QueueLimits) -> JobQueue {
        JobQueue {
            limits,
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
        }
    }

    /// Submit a job for `client`, checking rate and in-flight limits.
    pub fn submit(&self, client: &str, id: &str) -> Result<(), Reject> {
        self.submit_at(client, id, Instant::now())
    }

    /// [`JobQueue::submit`] with an explicit clock, for tests.
    pub fn submit_at(&self, client: &str, id: &str, now: Instant) -> Result<(), Reject> {
        let mut inner = crate::sync::lock(&self.inner);
        // Check the in-flight cap before touching the token bucket: a
        // client pinned at max_inflight must not also drain its tokens on
        // every rejected retry (it would come back rate-limited once slots
        // free up).
        if inner.inflight.get(client).copied().unwrap_or(0) >= self.limits.max_inflight {
            return Err(Reject::TooManyInFlight);
        }
        let bucket = inner
            .buckets
            .entry(client.to_string())
            .or_insert_with(|| TokenBucket::new(self.limits.rate_per_sec, self.limits.burst, now));
        if !bucket.try_take(now) {
            return Err(Reject::RateLimited);
        }
        *inner.inflight.entry(client.to_string()).or_default() += 1;
        inner.fifo.push_back(QueuedJob {
            id: id.to_string(),
            client: client.to_string(),
        });
        self.cv.notify_one();
        Ok(())
    }

    /// Block until a job is available (FIFO order) or the queue is closed
    /// and drained; `None` tells the worker to exit.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = crate::sync::lock(&self.inner);
        loop {
            if let Some(job) = inner.fifo.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = crate::sync::wait(&self.cv, inner);
        }
    }

    /// Non-blocking pop for the fleet coordinator: take the head of the
    /// FIFO if one is ready, else return immediately. Used on the lease
    /// path, where a worker polling for work must get `no_work` rather
    /// than a parked connection.
    pub fn try_pop(&self) -> Option<QueuedJob> {
        crate::sync::lock(&self.inner).fifo.pop_front()
    }

    /// [`JobQueue::pop`] with a deadline: block until a job arrives, the
    /// queue closes-and-drains, or `dur` elapses. The in-process worker
    /// pool uses this so it can re-check whether remote fleet workers
    /// have appeared (and yield the queue to them) without busy-waiting.
    pub fn pop_timeout(&self, dur: std::time::Duration) -> PopResult {
        let deadline = Instant::now() + dur;
        let mut inner = crate::sync::lock(&self.inner);
        loop {
            if let Some(job) = inner.fifo.pop_front() {
                return PopResult::Job(job);
            }
            if inner.closed {
                return PopResult::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return PopResult::Empty;
            }
            let (guard, _timed_out) = crate::sync::wait_timeout(&self.cv, inner, deadline - now);
            inner = guard;
        }
    }

    /// Put a job back at the *front* of the FIFO without re-running
    /// admission. Used when a lease expires or a worker dies: the job was
    /// already admitted and its client's in-flight slot is still held (it
    /// is released only at a terminal state), so re-admission would
    /// double-count it — and could even bounce a legitimately-accepted
    /// job off its own rate limit. Front insertion preserves the original
    /// FIFO position as closely as possible.
    pub fn requeue(&self, job: QueuedJob) {
        let mut inner = crate::sync::lock(&self.inner);
        inner.fifo.push_front(job);
        self.cv.notify_one();
    }

    /// True once the queue is closed *and* the FIFO has drained. The
    /// shutdown path uses this together with the fleet's outstanding-lease
    /// count to decide when the daemon may exit.
    pub fn closed_and_drained(&self) -> bool {
        let inner = crate::sync::lock(&self.inner);
        inner.closed && inner.fifo.is_empty()
    }

    /// Release `client`'s in-flight slot after its job reaches a terminal
    /// state (done, failed, or cancelled).
    pub fn release(&self, client: &str) {
        let mut inner = crate::sync::lock(&self.inner);
        if let Some(n) = inner.inflight.get_mut(client) {
            *n = n.saturating_sub(1);
        }
    }

    /// Remove a still-queued job. Returns the entry if it was found (the
    /// caller releases the slot and marks the job cancelled); a job already
    /// popped by a worker cannot be cancelled.
    pub fn cancel(&self, id: &str) -> Option<QueuedJob> {
        let mut inner = crate::sync::lock(&self.inner);
        let pos = inner.fifo.iter().position(|j| j.id == id)?;
        inner.fifo.remove(pos)
    }

    /// Close the queue: already-accepted jobs still drain, new pops return
    /// `None` once the FIFO empties, and submissions are refused by the
    /// server before they reach here.
    pub fn close(&self) {
        let mut inner = crate::sync::lock(&self.inner);
        inner.closed = true;
        self.cv.notify_all();
    }

    /// Jobs currently queued (not yet popped).
    pub fn queued(&self) -> usize {
        crate::sync::lock(&self.inner).fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn limits(max_inflight: usize, rate: f64, burst: f64) -> QueueLimits {
        QueueLimits {
            max_inflight,
            rate_per_sec: rate,
            burst,
        }
    }

    #[test]
    fn fifo_order_is_preserved_across_clients() {
        let q = JobQueue::new(QueueLimits::default());
        q.submit("a", "j1").unwrap();
        q.submit("b", "j2").unwrap();
        q.submit("a", "j3").unwrap();
        assert_eq!(q.pop().unwrap().id, "j1");
        assert_eq!(q.pop().unwrap().id, "j2");
        assert_eq!(q.pop().unwrap().id, "j3");
    }

    #[test]
    fn inflight_cap_rejects_until_released() {
        let q = JobQueue::new(limits(2, 1000.0, 1000.0));
        q.submit("a", "j1").unwrap();
        q.submit("a", "j2").unwrap();
        assert_eq!(q.submit("a", "j3"), Err(Reject::TooManyInFlight));
        // Another tenant is unaffected.
        q.submit("b", "j4").unwrap();
        // A terminal job frees the slot even before being popped-and-run.
        q.release("a");
        q.submit("a", "j5").unwrap();
    }

    #[test]
    fn token_bucket_rate_limits_and_refills() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 2.0, t0);
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst of 2 exhausted");
        // 100 ms at 10/s refills one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
        // A long idle period caps at burst, not unbounded.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(b.try_take(t2));
        assert!(b.try_take(t2));
        assert!(!b.try_take(t2));
    }

    #[test]
    fn inflight_rejection_does_not_consume_tokens() {
        let q = JobQueue::new(limits(1, 0.0, 2.0));
        let t0 = Instant::now();
        q.submit_at("a", "j1", t0).unwrap();
        // Pinned at max_inflight: rejected retries must not drain the
        // bucket, or the client comes back rate-limited once a slot frees.
        for _ in 0..10 {
            assert_eq!(q.submit_at("a", "j2", t0), Err(Reject::TooManyInFlight));
        }
        q.release("a");
        assert!(q.submit_at("a", "j2", t0).is_ok(), "one token must remain");
    }

    #[test]
    fn queue_rejects_rate_limited_submissions_per_client() {
        let q = JobQueue::new(limits(100, 0.0, 1.0));
        let t0 = Instant::now();
        assert!(q.submit_at("a", "j1", t0).is_ok());
        assert_eq!(q.submit_at("a", "j2", t0), Err(Reject::RateLimited));
        assert!(q.submit_at("b", "j3", t0).is_ok(), "buckets are per-client");
        assert_eq!(Reject::RateLimited.code(), "rate-limited");
        assert_eq!(Reject::TooManyInFlight.code(), "too-many-in-flight");
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let q = JobQueue::new(QueueLimits::default());
        q.submit("a", "j1").unwrap();
        q.submit("a", "j2").unwrap();
        let popped = q.pop().unwrap();
        assert_eq!(popped.id, "j1");
        assert!(q.cancel("j1").is_none(), "already running");
        assert_eq!(q.cancel("j2").unwrap().client, "a");
        assert!(q.cancel("j2").is_none(), "already cancelled");
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn try_pop_never_blocks_and_requeue_restores_fifo_head() {
        let q = JobQueue::new(QueueLimits::default());
        assert!(q.try_pop().is_none());
        q.submit("a", "j1").unwrap();
        q.submit("a", "j2").unwrap();
        let j1 = q.try_pop().unwrap();
        assert_eq!(j1.id, "j1");
        // A reassigned job goes back to the *front*: it was admitted
        // before j2 and must not lose its place.
        q.requeue(j1);
        assert_eq!(q.try_pop().unwrap().id, "j1");
        assert_eq!(q.try_pop().unwrap().id, "j2");
    }

    #[test]
    fn requeue_bypasses_admission() {
        // burst=1: the client has no tokens left after its one submit, yet
        // requeue must still succeed (the slot is already accounted for).
        let q = JobQueue::new(limits(1, 0.0, 1.0));
        let t0 = Instant::now();
        q.submit_at("a", "j1", t0).unwrap();
        let j = q.try_pop().unwrap();
        q.requeue(j);
        assert_eq!(q.queued(), 1);
    }

    #[test]
    fn pop_timeout_times_out_then_sees_new_work_and_close() {
        let q = JobQueue::new(QueueLimits::default());
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Empty);
        q.submit("a", "j1").unwrap();
        match q.pop_timeout(Duration::from_millis(5)) {
            PopResult::Job(j) => assert_eq!(j.id, "j1"),
            other => panic!("expected job, got {other:?}"),
        }
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Closed);
        assert!(q.closed_and_drained());
    }

    #[test]
    fn close_drains_then_unblocks_workers() {
        let q = Arc::new(JobQueue::new(QueueLimits::default()));
        q.submit("a", "j1").unwrap();
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(job) = q.pop() {
                    seen.push(job.id);
                }
                seen
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), vec!["j1"]);
    }
}
