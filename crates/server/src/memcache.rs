//! Sharded in-memory trace cache, layered over the campaign's disk cache.
//!
//! Entries hold the canonical ScalaTrace *text* (not the parsed tree): the
//! text is what the disk cache checksums, what the wire protocol ships as
//! the `trace.st` artifact, and what [`TraceMemCache::load`] re-hashes on
//! every hit — so a bit-flip in resident memory is detected exactly like
//! one on disk, and a hit degrades to a disk read instead of serving a
//! corrupt trace. Keys shard by their low bits; each shard is an
//! independently locked LRU bounded by bytes of trace text, so hot-path
//! lookups from concurrent workers do not serialize on one lock.

use campaign::hash;
use campaign::TraceCache;
use mpisim::time::SimTime;
use scalatrace::trace::Trace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where a loaded trace came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheSource {
    /// Resident in memory.
    Mem,
    /// Read from the disk cache and promoted to memory.
    Disk,
}

/// A successfully loaded trace plus its canonical text.
pub struct LoadedTrace {
    /// The parsed trace.
    pub trace: Trace,
    /// Canonical `scalatrace::text` form — the `trace.st` artifact.
    pub text: Arc<String>,
    /// Simulated wall-clock of the original traced run.
    pub t_app: SimTime,
    /// Which layer served the hit.
    pub source: CacheSource,
}

/// Point-in-time counter snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Memory hits (integrity-verified).
    pub mem_hits: u64,
    /// Lookups that missed memory (integrity drops included).
    pub mem_misses: u64,
    /// Misses the disk layer absorbed.
    pub disk_hits: u64,
    /// LRU evictions (capacity) plus integrity drops.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes of trace text currently resident.
    pub bytes: u64,
}

struct Entry {
    text: Arc<String>,
    fnv: u64,
    t_app: SimTime,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    /// Evict least-recently-used entries until `bytes <= budget`. Returns
    /// how many entries were evicted.
    fn shrink_to(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget && !self.entries.is_empty() {
            let coldest = *self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
                .expect("non-empty");
            let gone = self.entries.remove(&coldest).expect("present");
            self.bytes -= gone.text.len();
            evicted += 1;
        }
        evicted
    }

    fn insert(&mut self, key: u64, text: Arc<String>, t_app: SimTime, budget: usize) -> u64 {
        self.tick += 1;
        let fnv = hash::fnv1a(text.as_bytes());
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.text.len();
        }
        self.bytes += text.len();
        self.entries.insert(
            key,
            Entry {
                text,
                fnv,
                t_app,
                last_used: self.tick,
            },
        );
        self.shrink_to(budget)
    }
}

/// The layered cache: sharded in-memory LRU in front of a [`TraceCache`].
pub struct TraceMemCache {
    disk: TraceCache,
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    mem_hits: AtomicU64,
    mem_misses: AtomicU64,
    disk_hits: AtomicU64,
    evictions: AtomicU64,
}

impl TraceMemCache {
    /// Layer `shards` in-memory LRU shards totalling `capacity_bytes` over
    /// `disk`. Shard count is rounded up to at least 1.
    pub fn new(disk: TraceCache, shards: usize, capacity_bytes: usize) -> TraceMemCache {
        let shards = shards.max(1);
        TraceMemCache {
            disk,
            shard_budget: capacity_bytes / shards,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            mem_hits: AtomicU64::new(0),
            mem_misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The underlying disk cache.
    pub fn disk(&self) -> &TraceCache {
        &self.disk
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Look up a trace: memory first (re-verifying the FNV-1a of the
    /// resident text on every hit), then disk (promoting into memory).
    /// `None` means both layers missed and the caller must trace.
    pub fn load(&self, key: u64) -> Option<LoadedTrace> {
        let resident = {
            let mut shard = crate::sync::lock(self.shard(key));
            shard.tick += 1;
            let tick = shard.tick;
            match shard.entries.get_mut(&key) {
                Some(e) if hash::fnv1a(e.text.as_bytes()) == e.fnv => {
                    e.last_used = tick;
                    Some((Arc::clone(&e.text), e.t_app))
                }
                Some(_) => {
                    // Resident entry no longer matches its own checksum:
                    // memory corruption. Drop it and fall through to disk.
                    let gone = shard.entries.remove(&key).expect("present");
                    shard.bytes -= gone.text.len();
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    None
                }
                None => None,
            }
        };
        if let Some((text, t_app)) = resident {
            // Parse outside the shard lock; a resident entry that passed
            // its checksum parses in practice (it did at insert), but a
            // parse failure must still degrade to disk, not to a miss.
            if let Ok(trace) = scalatrace::text::from_text(&text) {
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                return Some(LoadedTrace {
                    trace,
                    text,
                    t_app,
                    source: CacheSource::Mem,
                });
            }
            let mut shard = crate::sync::lock(self.shard(key));
            if shard
                .entries
                .get(&key)
                .is_some_and(|e| Arc::ptr_eq(&e.text, &text))
            {
                let gone = shard.entries.remove(&key).expect("present");
                shard.bytes -= gone.text.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.mem_misses.fetch_add(1, Ordering::Relaxed);

        let hit = self.disk.load(key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        let text = Arc::new(scalatrace::text::to_text(&hit.trace));
        let evicted = crate::sync::lock(self.shard(key)).insert(
            key,
            Arc::clone(&text),
            hit.t_app,
            self.shard_budget,
        );
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        Some(LoadedTrace {
            trace: hit.trace,
            text,
            t_app: hit.t_app,
            source: CacheSource::Disk,
        })
    }

    /// Store a freshly traced application in both layers. The disk write is
    /// best-effort (a read-only cache directory must not fail the job);
    /// returns the canonical text and how many LRU evictions the insert
    /// forced.
    pub fn store(
        &self,
        key: u64,
        trace: &Trace,
        t_app: SimTime,
        pairs: &[(String, String)],
    ) -> (Arc<String>, u64) {
        let text = Arc::new(scalatrace::text::to_text(trace));
        let _ = self.disk.store(key, trace, t_app, pairs);
        let evicted = crate::sync::lock(self.shard(key)).insert(
            key,
            Arc::clone(&text),
            t_app,
            self.shard_budget,
        );
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        (text, evicted)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0u64, 0u64);
        for shard in &self.shards {
            let shard = crate::sync::lock(shard);
            entries += shard.entries.len() as u64;
            bytes += shard.bytes as u64;
        }
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            mem_misses: self.mem_misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniapps::{registry, AppParams};
    use mpisim::network;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "server-memcache-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace() -> (Trace, SimTime) {
        let app = registry::lookup("ring").unwrap();
        let params = AppParams::quick();
        let traced =
            scalatrace::trace_app(4, network::ideal(), move |ctx| (app.run)(ctx, &params)).unwrap();
        (traced.trace, traced.report.total_time)
    }

    fn cache(tag: &str, capacity: usize) -> TraceMemCache {
        TraceMemCache::new(TraceCache::open(temp_dir(tag)).unwrap(), 4, capacity)
    }

    #[test]
    fn store_then_load_hits_memory() {
        let c = cache("hit", 1 << 20);
        let (trace, t_app) = sample_trace();
        assert!(c.load(1).is_none());
        let (text, _) = c.store(1, &trace, t_app, &[]);
        let hit = c.load(1).expect("stored");
        assert_eq!(hit.source, CacheSource::Mem);
        assert_eq!(*hit.text, *text);
        assert_eq!(hit.t_app, t_app);
        let stats = c.stats();
        assert_eq!(
            (stats.mem_hits, stats.mem_misses, stats.disk_hits),
            (1, 1, 0)
        );
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, text.len() as u64);
        let _ = std::fs::remove_dir_all(c.disk().dir());
    }

    #[test]
    fn disk_entries_promote_into_memory() {
        let dir = temp_dir("promote");
        let disk = TraceCache::open(&dir).unwrap();
        let (trace, t_app) = sample_trace();
        disk.store(7, &trace, t_app, &[]).unwrap();

        // A cold memory layer over a warm disk: first load promotes.
        let c = TraceMemCache::new(disk, 4, 1 << 20);
        let first = c.load(7).expect("disk entry");
        assert_eq!(first.source, CacheSource::Disk);
        let second = c.load(7).expect("promoted");
        assert_eq!(second.source, CacheSource::Mem);
        assert_eq!(*first.text, *second.text);
        let stats = c.stats();
        assert_eq!((stats.mem_hits, stats.disk_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_coldest_when_over_budget() {
        let (trace, t_app) = sample_trace();
        let text_len = scalatrace::text::to_text(&trace).len();
        // One shard, room for exactly two entries.
        let disk = TraceCache::open(temp_dir("lru")).unwrap();
        let c = TraceMemCache::new(disk, 1, 2 * text_len);
        c.store(1, &trace, t_app, &[]);
        c.store(2, &trace, t_app, &[]);
        assert!(c.load(1).is_some(), "touch 1 so 2 is coldest");
        c.store(3, &trace, t_app, &[]);
        let stats = c.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // 2 was evicted from memory; 1 and 3 are resident. (2 still loads,
        // but from disk.)
        assert_eq!(c.load(1).unwrap().source, CacheSource::Mem);
        assert_eq!(c.load(3).unwrap().source, CacheSource::Mem);
        assert_eq!(c.load(2).unwrap().source, CacheSource::Disk);
        let _ = std::fs::remove_dir_all(c.disk().dir());
    }

    #[test]
    fn corrupted_resident_text_is_dropped_not_served() {
        // Force a checksum mismatch by reaching into the shard. The public
        // surface can't corrupt memory, so the test does it directly.
        let c = cache("corrupt", 1 << 20);
        let (trace, t_app) = sample_trace();
        c.store(9, &trace, t_app, &[]);
        {
            let mut shard = c.shard(9).lock().unwrap();
            let e = shard.entries.get_mut(&9).unwrap();
            e.fnv ^= 1; // the text no longer matches its recorded checksum
        }
        let hit = c.load(9).expect("disk copy is intact");
        assert_eq!(
            hit.source,
            CacheSource::Disk,
            "corrupt entry must not serve"
        );
        assert_eq!(c.stats().evictions, 1);
        // The promotion re-inserted a good entry.
        assert_eq!(c.load(9).unwrap().source, CacheSource::Mem);
        let _ = std::fs::remove_dir_all(c.disk().dir());
    }

    #[test]
    fn concurrent_loads_and_stores_keep_counters_consistent() {
        let c = Arc::new(cache("racy", 1 << 20));
        let (trace, t_app) = sample_trace();
        c.store(0, &trace, t_app, &[]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        assert!(c.load(0).is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.stats().mem_hits, 100);
        let _ = std::fs::remove_dir_all(c.disk().dir());
    }
}
