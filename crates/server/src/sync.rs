//! Poison-recovering synchronization wrappers.
//!
//! Every shared structure in this crate (job table, queue, memcache
//! shards, fleet lease table) is guarded by a `Mutex`. The std mutex
//! poisons itself when a holder panics, and `lock().unwrap()` then
//! propagates that panic to every *other* thread that touches the lock —
//! one crashed connection handler used to take the whole daemon down
//! with it.
//!
//! Poisoning is only a heuristic ("a panic happened while held"), not a
//! guarantee of corruption. All our critical sections keep their
//! invariants by construction — they either mutate a single field or
//! finish a multi-field update before any call that can panic — so the
//! correct recovery is to take the data and keep serving. These helpers
//! centralize that decision; code in this crate calls [`lock`] / [`wait`]
//! / [`wait_timeout`] instead of unwrapping `LockResult`s at 40+ sites.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Block on `cv`, recovering the re-acquired guard on poison.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Block on `cv` for at most `dur`, recovering the guard on poison.
/// Returns the guard and whether the wait timed out.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, timeout)) => (g, timeout.timed_out()),
        Err(poisoned) => {
            let (g, timeout) = poisoned.into_inner();
            (g, timeout.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn lock_survives_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "mutex really is poisoned");
        assert_eq!(*lock(&m), 7, "data survives and stays reachable");
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn wait_timeout_reports_timeouts() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_g, timed_out) = wait_timeout(&cv, lock(&m), Duration::from_millis(1));
        assert!(timed_out);
    }
}
