//! The `commspec-server` daemon: connection handling, the job table,
//! worker pool, and journal-backed durability.
//!
//! ## Durability argument
//!
//! Every terminal job outcome is persisted *before* it becomes visible to
//! clients, in write-ahead order: artifact files land first (atomic
//! tmp+rename each), then the flushed JSONL `finished` line that names
//! them with their checksums, then the in-memory state clients can
//! observe. A SIGKILL between any two steps leaves either a job the
//! restarted server reruns (no journal line — artifacts without a
//! blessing line are dead weight, not lies) or a fully recorded outcome
//! it replays. On startup the journal is decoded with the campaign's
//! last-wins / torn-tail-tolerant reader and every record is verified
//! against its artifact files' FNV-1a checksums; anything incomplete or
//! corrupt is dropped and simply reruns on resubmission.
//!
//! Job ids are content hashes of the request ([`crate::jobs`]), so "the
//! same job" is a well-defined notion across restarts: a client that
//! resubmits after a server crash gets `replayed: true` and the recorded
//! result, with no pipeline execution.

use crate::fleet::{Actions, Completion, FailVerdict, Fleet, FleetConfig};
use crate::jobs::{self, Executed, JobKind};
use crate::memcache::TraceMemCache;
use crate::queue::{JobQueue, PopResult, QueueLimits, QueuedJob};
use campaign::journal::{parse_line, write_atomic, Journal};
use campaign::telemetry::{Counters, Value};
use campaign::{Telemetry, TraceCache};
use protocol::{
    ClientStats, JobParams, JobRef, JobResult, Request, Response, StatsReport, PROTO_VERSION,
};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server identity string sent in `hello_ok`.
pub const SERVER_ID: &str = concat!("commspec-server/", env!("CARGO_PKG_VERSION"));

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// State directory: journal, artifact files, trace cache, campaign
    /// telemetry.
    pub state_dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// In-memory trace cache capacity in bytes.
    pub mem_bytes: usize,
    /// Memory cache shard count.
    pub shards: usize,
    /// Per-client admission limits.
    pub limits: QueueLimits,
    /// Fleet coordinator tuning (lease TTL, backoff, poison threshold).
    pub fleet: FleetConfig,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            state_dir: PathBuf::from(".commspec-server"),
            workers: 2,
            mem_bytes: 64 << 20,
            shards: 8,
            limits: QueueLimits::default(),
            fleet: FleetConfig::default(),
        }
    }
}

/// Lifecycle of a job in the table.
#[derive(Clone, Debug)]
enum JobState {
    Queued,
    Running,
    Done(JobResult),
    Failed(String),
    Cancelled,
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// What a worker needs to execute the job. Single jobs carry both the
/// validated spec (the in-process pool runs it directly) and the original
/// wire params (a `lease_grant` ships them to remote workers, which
/// re-validate — the validation is deterministic, so both derive the same
/// spec).
#[derive(Clone)]
enum JobBody {
    Single(JobKind, campaign::JobSpec, JobParams),
    Campaign(String),
}

struct JobEntry {
    kind: JobKind,
    client: String,
    tag: Option<String>,
    state: JobState,
    body: Option<JobBody>,
    /// Served from the journal without (re-)execution.
    replayed: bool,
}

#[derive(Default)]
struct JobTable {
    jobs: HashMap<String, JobEntry>,
    /// Client-chosen tag → job id (latest submission wins).
    tags: HashMap<String, String>,
}

impl JobTable {
    fn resolve(&self, job: &JobRef) -> Option<String> {
        match job {
            JobRef::Id(id) => self.jobs.contains_key(id).then(|| id.clone()),
            // A tag mapping without a live job entry is treated as unknown
            // rather than trusted: indexing `jobs` with a dangling id would
            // panic while the table mutex is held, poisoning it.
            JobRef::Tag(tag) => self
                .tags
                .get(tag)
                .filter(|id| self.jobs.contains_key(*id))
                .cloned(),
        }
    }
}

#[derive(Default)]
struct ServerStats {
    done: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    replayed: AtomicU64,
}

struct State {
    opts: ServerOptions,
    mem: TraceMemCache,
    queue: JobQueue,
    table: Mutex<JobTable>,
    table_cv: Condvar,
    counters: Counters,
    stats: ServerStats,
    fleet: Fleet,
    /// Append-only JSONL journal (flushed per line by `Telemetry`).
    journal: Telemetry,
    shutdown: AtomicBool,
}

impl State {
    fn journal_path(opts: &ServerOptions) -> PathBuf {
        opts.state_dir.join("server.jsonl")
    }

    fn artifact_dir(&self, job_id: &str) -> PathBuf {
        self.opts.state_dir.join("artifacts").join(job_id)
    }

    /// Persist a successful outcome in write-ahead order: artifacts, then
    /// the journal line naming them and their checksums.
    fn persist_done(&self, job_id: &str, kind: JobKind, result: &JobResult) {
        let dir = self.artifact_dir(job_id);
        let _ = std::fs::create_dir_all(&dir);
        for a in &result.artifacts {
            let _ = write_atomic(&dir.join(&a.name), a.text.as_bytes());
        }
        let names: Vec<&str> = result.artifacts.iter().map(|a| a.name.as_str()).collect();
        let mut fields: Vec<(&str, Value)> = vec![
            ("job", job_id.into()),
            ("status", "ok".into()),
            ("kind", kind.label().into()),
            ("cached", Value::B(result.cached)),
            ("artifacts", names.join(" ").into()),
        ];
        let fnv_keys: Vec<String> = result
            .artifacts
            .iter()
            .map(|a| format!("fnv.{}", a.name))
            .collect();
        for (key, a) in fnv_keys.iter().zip(&result.artifacts) {
            fields.push((key.as_str(), a.fnv.as_str().into()));
        }
        let opt_u = |fields: &mut Vec<(&str, Value)>, k: &'static str, v: Option<u64>| {
            if let Some(v) = v {
                fields.push((k, Value::U(v)));
            }
        };
        let opt_f = |fields: &mut Vec<(&str, Value)>, k: &'static str, v: Option<f64>| {
            if let Some(v) = v {
                fields.push((k, Value::F(v)));
            }
        };
        opt_u(&mut fields, "t_app_ns", result.t_app_ns);
        opt_u(&mut fields, "t_gen_ns", result.t_gen_ns);
        opt_f(&mut fields, "err_pct", result.err_pct);
        opt_u(&mut fields, "jobs_ok", result.ok);
        opt_u(&mut fields, "jobs_failed", result.failed);
        opt_u(&mut fields, "jobs_timed_out", result.timed_out);
        opt_f(&mut fields, "mape", result.mape);
        self.journal.emit("finished", &fields);
        self.journal.flush();
    }

    fn persist_failed(&self, job_id: &str, kind: JobKind, error: &str) {
        self.journal.emit(
            "finished",
            &[
                ("job", job_id.into()),
                ("status", "failed".into()),
                ("kind", kind.label().into()),
                ("cause", "error".into()),
                ("error", error.into()),
            ],
        );
        self.journal.flush();
    }

    /// Move a job to a terminal state and wake status waiters.
    fn finish(&self, job_id: &str, client: &str, state: JobState) {
        {
            let mut table = crate::sync::lock(&self.table);
            if let Some(entry) = table.jobs.get_mut(job_id) {
                entry.state = state;
                entry.body = None;
            }
        }
        self.queue.release(client);
        self.table_cv.notify_all();
    }
}

/// Reconstruct a journaled outcome, verifying every artifact file against
/// its recorded checksum. `None` = incomplete or corrupt → rerun.
fn replay_record(
    state_dir: &Path,
    job_id: &str,
    rec: &campaign::journal::JobRecord,
) -> Option<JobEntry> {
    let kind = JobKind::from_label(rec.get("kind")?)?;
    let entry = |state: JobState| JobEntry {
        kind,
        client: String::new(),
        tag: None,
        state,
        body: None,
        replayed: true,
    };
    match rec.status.as_str() {
        "ok" => {
            let mut artifacts = Vec::new();
            let names = rec.get("artifacts")?;
            let dir = state_dir.join("artifacts").join(job_id);
            for name in names.split(' ').filter(|n| !n.is_empty()) {
                let text = std::fs::read_to_string(dir.join(name)).ok()?;
                let fnv = campaign::hash::hex(campaign::hash::fnv1a(text.as_bytes()));
                if rec.get(&format!("fnv.{name}")) != Some(fnv.as_str()) {
                    return None; // artifact corrupt on disk: rerun
                }
                artifacts.push(protocol::Artifact {
                    name: name.to_string(),
                    fnv,
                    text,
                });
            }
            Some(entry(JobState::Done(JobResult {
                kind: kind.label().to_string(),
                cached: rec.get("cached") == Some("true"),
                t_app_ns: rec.u64("t_app_ns"),
                t_gen_ns: rec.u64("t_gen_ns"),
                err_pct: rec.f64("err_pct"),
                ok: rec.u64("jobs_ok"),
                failed: rec.u64("jobs_failed"),
                timed_out: rec.u64("jobs_timed_out"),
                mape: rec.f64("mape"),
                artifacts,
            })))
        }
        "failed" => Some(entry(JobState::Failed(rec.get("error")?.to_string()))),
        _ => None,
    }
}

/// A running server: worker pool plus shared state. Connections are
/// served by [`Server::serve_stdio`], [`Server::serve_tcp`], or (for
/// in-process tests) [`Server::handle`].
pub struct Server {
    state: Arc<State>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Fleet monitor: lease expiry, reassignment, quarantine.
    monitor: std::thread::JoinHandle<()>,
}

impl Server {
    /// Open the state directory, replay the journal, and start the worker
    /// pool. Returns the server and how many journaled outcomes were
    /// restored.
    pub fn start(opts: ServerOptions) -> io::Result<(Server, usize)> {
        std::fs::create_dir_all(&opts.state_dir)?;
        let journal_path = State::journal_path(&opts);
        let journal = Journal::load(&journal_path).unwrap_or_default();

        let mut table = JobTable::default();
        let mut restored = 0;
        for (job_id, rec) in journal.jobs() {
            if let Some(entry) = replay_record(&opts.state_dir, job_id, rec) {
                table.jobs.insert(job_id.to_string(), entry);
                restored += 1;
            }
        }

        // Rebuild per-job fleet health (poison budgets) from journaled
        // lease transitions. Leases themselves died with the old process —
        // their connections are gone — so only the budgets replay.
        let fleet = Fleet::new(opts.fleet);
        if let Ok(text) = std::fs::read_to_string(&journal_path) {
            for line in text.lines() {
                if let Some(fields) = parse_line(line) {
                    if fields.get("event").map(String::as_str) == Some("lease") {
                        fleet.replay(&fields);
                    }
                }
            }
        }

        let disk = TraceCache::open(opts.state_dir.join("cache"))?;
        let mem = TraceMemCache::new(disk, opts.shards, opts.mem_bytes);
        let state = Arc::new(State {
            queue: JobQueue::new(opts.limits),
            mem,
            table: Mutex::new(table),
            table_cv: Condvar::new(),
            counters: Counters::new(),
            stats: ServerStats::default(),
            fleet,
            journal: Telemetry::append_file(&journal_path)?,
            shutdown: AtomicBool::new(false),
            opts,
        });

        let workers = (0..state.opts.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        let monitor = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || monitor_loop(&state))
        };
        Ok((
            Server {
                state,
                workers,
                monitor,
            },
            restored,
        ))
    }

    /// Serve one connection on stdin/stdout (the test and CI mode), then
    /// shut down.
    pub fn serve_stdio(self) {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.handle(stdin.lock(), stdout.lock());
        self.shutdown();
    }

    /// Bind `addr` and serve connections until a client sends `shutdown`.
    /// The bound address is announced on stderr as `listening on <addr>`
    /// (ephemeral-port callers parse it).
    pub fn serve_tcp(self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        eprintln!("listening on {}", listener.local_addr()?);
        let mut conns = Vec::new();
        while !self.state.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // A periodic read timeout lets the connection thread
                    // notice shutdown: without it, an idle-but-open client
                    // parks the thread in read_line forever and the join
                    // below never completes.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                    // A failed clone drops this connection, not the server.
                    let Ok(read_half) = stream.try_clone() else {
                        continue;
                    };
                    let state = Arc::clone(&self.state);
                    conns.push(std::thread::spawn(move || {
                        handle_conn(&state, BufReader::new(read_half), stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        for c in conns {
            let _ = c.join();
        }
        self.shutdown();
        Ok(())
    }

    /// Serve one connection over arbitrary byte streams (in-process use).
    pub fn handle(&self, reader: impl BufRead, writer: impl Write) {
        handle_conn(&self.state, reader, writer);
    }

    /// Drain the queue (including outstanding fleet leases), stop the
    /// workers and the monitor, and join them.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.monitor.join();
        self.state.counters.emit_to(&self.state.journal);
    }
}

/// Lease housekeeping: expire overdue leases, reassign matured pen
/// entries, quarantine poison jobs. Runs until shutdown has fully
/// drained both the queue and the lease table.
fn monitor_loop(state: &Arc<State>) {
    loop {
        let actions = state.fleet.tick(Instant::now(), &state.journal);
        apply_fleet_actions(state, actions);
        if state.shutdown.load(Ordering::SeqCst)
            && state.queue.closed_and_drained()
            && state.fleet.outstanding() == 0
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Apply the fleet's verdicts to the job table and queue.
fn apply_fleet_actions(state: &Arc<State>, actions: Actions) {
    for job in actions.requeue {
        let requeue = {
            let mut table = crate::sync::lock(&state.table);
            match table.jobs.get_mut(&job.id) {
                Some(entry) if matches!(entry.state, JobState::Queued | JobState::Running) => {
                    entry.state = JobState::Queued;
                    true
                }
                // Terminal (e.g. completed by a racing worker) or gone:
                // nothing left to rerun.
                _ => false,
            }
        };
        if requeue {
            state.queue.requeue(job);
        }
    }
    for (job, reason) in actions.quarantine {
        let kind = {
            let table = crate::sync::lock(&state.table);
            table.jobs.get(&job.id).map(|e| e.kind)
        };
        let Some(kind) = kind else { continue };
        state.persist_failed(&job.id, kind, &reason);
        state.stats.failed.fetch_add(1, Ordering::Relaxed);
        state.finish(&job.id, &job.client, JobState::Failed(reason));
    }
}

fn worker_loop(state: &State) {
    loop {
        // Graceful degradation in reverse: while remote fleet workers are
        // live, the in-process pool yields the queue to them and just
        // keeps watch. The moment the fleet empties (workers died or
        // never existed), this loop is today's single-process executor.
        if state.fleet.live_workers(Instant::now()) > 0 {
            if state.shutdown.load(Ordering::SeqCst)
                && state.queue.closed_and_drained()
                && state.fleet.outstanding() == 0
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
            continue;
        }
        let QueuedJob { id, client } = match state.queue.pop_timeout(Duration::from_millis(100)) {
            PopResult::Job(job) => job,
            // Re-check the fleet: workers may have appeared.
            PopResult::Empty => continue,
            PopResult::Closed => {
                // Closed and drained — but an expired lease may still
                // requeue its job here, so only exit once the fleet owes
                // nothing.
                if state.fleet.outstanding() == 0 {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let claimed = {
            let mut table = crate::sync::lock(&state.table);
            match table.jobs.get_mut(&id) {
                Some(entry) if matches!(entry.state, JobState::Queued) => {
                    entry.state = JobState::Running;
                    entry.body.clone().map(|b| (entry.kind, b))
                }
                // Cancelled (or somehow already terminal): nothing to run.
                _ => None,
            }
        };
        let Some((kind, body)) = claimed else {
            continue;
        };

        // Fault isolation: a panicking job fails the job, not the server.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match body {
            JobBody::Single(kind, spec, _params) => jobs::run_single(kind, &spec, &state.mem),
            JobBody::Campaign(matrix) => {
                let disk = TraceCache::open(state.mem.disk().dir())
                    .map_err(|e| format!("cannot open cache: {e}"))?;
                let telemetry =
                    Telemetry::to_file(&state.opts.state_dir.join(format!("{id}.campaign.jsonl")))
                        .unwrap_or_else(|_| Telemetry::sink());
                jobs::run_campaign_job(&matrix, disk, telemetry)
            }
        }));
        let outcome = match outcome {
            Ok(r) => r,
            Err(p) => {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".to_string());
                Err(format!("panic: {msg}"))
            }
        };

        match outcome {
            Ok(Executed { result, evictions }) => {
                if evictions > 0 {
                    state.counters.add(&client, "evictions", evictions);
                }
                state.persist_done(&id, kind, &result);
                state.stats.done.fetch_add(1, Ordering::Relaxed);
                state.finish(&id, &client, JobState::Done(result));
            }
            Err(error) => {
                state.persist_failed(&id, kind, &error);
                state.stats.failed.fetch_add(1, Ordering::Relaxed);
                state.finish(&id, &client, JobState::Failed(error));
            }
        }
    }
}

/// Serve one client connection: line in, line out. If the connection
/// registered as a fleet worker, its death — clean or not — expires every
/// lease it holds so the jobs reassign immediately.
fn handle_conn(state: &Arc<State>, reader: impl BufRead, writer: impl Write) {
    let mut worker: Option<String> = None;
    handle_conn_inner(state, reader, writer, &mut worker);
    if let Some(w) = worker {
        let actions = state.fleet.disconnect(&w, Instant::now(), &state.journal);
        apply_fleet_actions(state, actions);
    }
}

fn handle_conn_inner(
    state: &Arc<State>,
    mut reader: impl BufRead,
    mut writer: impl Write,
    worker: &mut Option<String>,
) {
    let mut client: Option<String> = None;
    let mut line = String::new();
    loop {
        line.clear();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return, // EOF: client hung up
                Ok(_) => break,
                // Read timeout (set by serve_tcp): check for shutdown and
                // keep waiting. read_line appends, so a partially received
                // line survives the retry intact.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if state.shutdown.load(Ordering::SeqCst) {
                        // A worker connection drains first: cutting it here
                        // would expire its leases and bounce jobs that are
                        // about to complete. Plain clients drop right away.
                        if worker.is_none() || state.fleet.outstanding() == 0 {
                            return;
                        }
                    }
                    continue;
                }
                Err(_) => return,
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::from_line(&line) {
            Ok(r) => r,
            Err(e) => {
                if let Some(c) = &client {
                    state.counters.incr(c, "errors");
                }
                if write_line(
                    &mut writer,
                    &Response::Error {
                        code: e.code().to_string(),
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let (resp, bye) = dispatch(state, &mut client, worker, req);
        if write_line(&mut writer, &resp).is_err() {
            return;
        }
        if bye {
            return;
        }
    }
}

fn write_line(writer: &mut impl Write, resp: &Response) -> io::Result<()> {
    writeln!(writer, "{}", resp.to_line())?;
    writer.flush()
}

fn error(code: &str, message: impl Into<String>) -> Response {
    Response::Error {
        code: code.to_string(),
        message: message.into(),
    }
}

/// Process one request. Returns the response and whether the connection
/// (and for `shutdown`, the server) should wind down. `worker` records
/// that this connection registered as a fleet worker, for disconnect
/// cleanup.
fn dispatch(
    state: &Arc<State>,
    client: &mut Option<String>,
    worker: &mut Option<String>,
    req: Request,
) -> (Response, bool) {
    if let Some(c) = client.as_deref() {
        state.counters.incr(c, "requests");
    }
    match req {
        Request::Hello {
            proto_version,
            client: name,
        } => {
            if proto_version != PROTO_VERSION {
                return (
                    error(
                        "proto-version",
                        format!("server speaks proto {PROTO_VERSION}, client sent {proto_version}"),
                    ),
                    false,
                );
            }
            state.counters.incr(&name, "requests");
            *client = Some(name);
            (
                Response::HelloOk {
                    proto_version: PROTO_VERSION,
                    server: SERVER_ID.to_string(),
                },
                false,
            )
        }
        _ if client.is_none() => (
            error("hello-required", "first message must be `hello`"),
            false,
        ),
        Request::Trace { params, tag } => (
            submit_single(
                state,
                client.as_deref().unwrap(),
                JobKind::Trace,
                params,
                tag,
            ),
            false,
        ),
        Request::Generate { params, tag } => (
            submit_single(
                state,
                client.as_deref().unwrap(),
                JobKind::Generate,
                params,
                tag,
            ),
            false,
        ),
        Request::Simulate { params, tag } => (
            submit_single(
                state,
                client.as_deref().unwrap(),
                JobKind::Simulate,
                params,
                tag,
            ),
            false,
        ),
        Request::Campaign { matrix, tag } => (
            submit_campaign(state, client.as_deref().unwrap(), matrix, tag),
            false,
        ),
        Request::Status { job, wait } => (status(state, &job, wait), false),
        Request::CancelJob { job } => (cancel(state, client.as_deref().unwrap(), &job), false),
        Request::Stats => (Response::Stats(stats(state)), false),
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue.close();
            (Response::Bye, true)
        }
        Request::WorkerRegister { worker: name } => {
            state.fleet.register(&name, Instant::now());
            *worker = Some(name.clone());
            (
                Response::WorkerOk {
                    worker: name,
                    lease_ttl_ms: state.fleet.lease_ttl().as_millis() as u64,
                },
                false,
            )
        }
        Request::LeaseRequest { worker: name } => (grant_lease(state, &name), false),
        Request::Heartbeat {
            worker: name,
            leases,
        } => {
            let expired = state
                .fleet
                .heartbeat(&name, &leases, Instant::now(), &state.journal);
            (
                Response::HeartbeatOk {
                    ttl_ms: state.fleet.lease_ttl().as_millis() as u64,
                    expired,
                },
                false,
            )
        }
        Request::JobComplete {
            worker: name,
            lease,
            job,
            result,
        } => (worker_complete(state, &name, &lease, &job, result), false),
        Request::JobFail {
            worker: name,
            lease,
            job,
            error,
            transient,
        } => (
            worker_fail(state, &name, &lease, &job, error, transient),
            false,
        ),
    }
}

/// Hand the queue head to a polling worker as a fresh lease.
fn grant_lease(state: &Arc<State>, worker: &str) -> Response {
    loop {
        let Some(queued) = state.queue.try_pop() else {
            return Response::NoWork {
                retry_ms: 50,
                draining: state.shutdown.load(Ordering::SeqCst),
            };
        };
        // Claim Queued → Running, exactly like the in-process pool; a job
        // cancelled while queued has no body and is skipped.
        let claimed = {
            let mut table = crate::sync::lock(&state.table);
            match table.jobs.get_mut(&queued.id) {
                Some(entry) if matches!(entry.state, JobState::Queued) => {
                    entry.state = JobState::Running;
                    entry.body.clone().map(|b| (entry.kind, b))
                }
                _ => None,
            }
        };
        let Some((kind, body)) = claimed else {
            continue;
        };
        let job_id = queued.id.clone();
        let (lease, ttl) = state
            .fleet
            .grant(worker, queued, Instant::now(), &state.journal);
        let (params, matrix) = match body {
            JobBody::Single(_, _, params) => (Some(params), None),
            JobBody::Campaign(matrix) => (None, Some(matrix)),
        };
        return Response::LeaseGrant {
            lease,
            job: job_id,
            kind: kind.label().to_string(),
            params,
            matrix,
            ttl_ms: ttl.as_millis() as u64,
        };
    }
}

/// Commit a worker's completion — or discard it idempotently if its lease
/// is no longer live (expired, reassigned, or from before a coordinator
/// restart).
fn worker_complete(
    state: &Arc<State>,
    worker: &str,
    lease: &str,
    job: &str,
    result: JobResult,
) -> Response {
    // Checksums first: a result whose artifacts do not match their own
    // FNVs was corrupted in flight and is retried as a transient failure,
    // never committed.
    for a in &result.artifacts {
        if a.fnv != campaign::hash::hex(campaign::hash::fnv1a(a.text.as_bytes())) {
            let reason = format!("artifact {} fails its checksum", a.name);
            let resp = worker_fail(state, worker, lease, job, reason.clone(), true);
            if let Response::CompleteOk { job, .. } = resp {
                return Response::CompleteOk {
                    job,
                    accepted: false,
                    reason: Some(reason),
                };
            }
            return resp;
        }
    }
    match state.fleet.complete(worker, lease, job, &state.journal) {
        Completion::Accepted { client } => {
            let kind = {
                let table = crate::sync::lock(&state.table);
                table.jobs.get(job).map(|e| e.kind)
            };
            let Some(kind) = kind else {
                return Response::CompleteOk {
                    job: job.to_string(),
                    accepted: false,
                    reason: Some("job vanished from the table".to_string()),
                };
            };
            state.persist_done(job, kind, &result);
            state.stats.done.fetch_add(1, Ordering::Relaxed);
            state.finish(job, &client, JobState::Done(result));
            Response::CompleteOk {
                job: job.to_string(),
                accepted: true,
                reason: None,
            }
        }
        Completion::Stale { reason } => Response::CompleteOk {
            job: job.to_string(),
            accepted: false,
            reason: Some(reason.to_string()),
        },
    }
}

/// Process a worker-reported failure: deterministic causes fail the job
/// for good, transient ones send it back through the backoff pen.
fn worker_fail(
    state: &Arc<State>,
    worker: &str,
    lease: &str,
    job: &str,
    error: String,
    transient: bool,
) -> Response {
    match state.fleet.fail(
        worker,
        lease,
        job,
        transient,
        Instant::now(),
        &state.journal,
    ) {
        FailVerdict::Fatal { client } => {
            let kind = {
                let table = crate::sync::lock(&state.table);
                table.jobs.get(job).map(|e| e.kind)
            };
            if let Some(kind) = kind {
                state.persist_failed(job, kind, &error);
            }
            state.stats.failed.fetch_add(1, Ordering::Relaxed);
            state.finish(job, &client, JobState::Failed(error));
            Response::CompleteOk {
                job: job.to_string(),
                accepted: true,
                reason: None,
            }
        }
        FailVerdict::Retry { delay } => {
            // The fleet penned the job; flip it back to Queued so the
            // matured requeue (or a cancel meanwhile) finds it claimable.
            {
                let mut table = crate::sync::lock(&state.table);
                if let Some(entry) = table.jobs.get_mut(job) {
                    if matches!(entry.state, JobState::Running) {
                        entry.state = JobState::Queued;
                    }
                }
            }
            Response::CompleteOk {
                job: job.to_string(),
                accepted: true,
                reason: Some(format!("transient; requeued in {}ms", delay.as_millis())),
            }
        }
        FailVerdict::Stale { reason } => Response::CompleteOk {
            job: job.to_string(),
            accepted: false,
            reason: Some(reason.to_string()),
        },
    }
}

/// Register a submission in the table (or recognise it), enforcing
/// admission control for genuinely new work.
fn admit(
    state: &Arc<State>,
    client: &str,
    job_id: String,
    kind: JobKind,
    body: JobBody,
    tag: Option<String>,
) -> Response {
    let mut table = crate::sync::lock(&state.table);
    if table.jobs.contains_key(&job_id) {
        // Known job: idempotent submit. A terminal entry is served as a
        // replay — from this process's run or from the journal of a
        // previous one — with no execution. Only a submission that carries
        // a tag retags the job; a tagless resubmit leaves the original tag
        // in place.
        if let Some(t) = &tag {
            let old = table.jobs[&job_id].tag.clone();
            if let Some(old) = old.filter(|o| o != t) {
                // Drop the superseded mapping, unless the tag has since
                // been claimed by a different job (latest submission wins).
                if table.tags.get(&old).map(String::as_str) == Some(job_id.as_str()) {
                    table.tags.remove(&old);
                }
            }
            table.tags.insert(t.clone(), job_id.clone());
        }
        let entry = table.jobs.get_mut(&job_id).expect("checked above");
        if let Some(t) = &tag {
            entry.tag = Some(t.clone());
        }
        let replayed = entry.state.terminal();
        if replayed {
            entry.replayed = true;
            state.stats.replayed.fetch_add(1, Ordering::Relaxed);
            state.counters.incr(client, "replayed");
        }
        return Response::Submitted {
            job: job_id,
            kind: kind.label().to_string(),
            tag,
            replayed,
        };
    }
    if state.shutdown.load(Ordering::SeqCst) {
        return error("shutting-down", "server is shutting down");
    }
    if let Err(reject) = state.queue.submit(client, &job_id) {
        state.counters.incr(client, "rejections");
        return error(
            reject.code(),
            format!("submission refused for client {client}"),
        );
    }
    // Register the tag only once the job entry actually exists: a mapping
    // created before admission control would dangle if the submission is
    // refused, and a later status/cancel by that tag would resolve to a
    // job id absent from the table.
    if let Some(t) = &tag {
        table.tags.insert(t.clone(), job_id.clone());
    }
    table.jobs.insert(
        job_id.clone(),
        JobEntry {
            kind,
            client: client.to_string(),
            tag: tag.clone(),
            state: JobState::Queued,
            body: Some(body),
            replayed: false,
        },
    );
    state.journal.emit(
        "submitted",
        &[
            ("job", job_id.as_str().into()),
            ("kind", kind.label().into()),
            ("client", client.into()),
        ],
    );
    Response::Submitted {
        job: job_id,
        kind: kind.label().to_string(),
        tag,
        replayed: false,
    }
}

fn submit_single(
    state: &Arc<State>,
    client: &str,
    kind: JobKind,
    params: JobParams,
    tag: Option<String>,
) -> Response {
    let spec = match jobs::spec_of(&params) {
        Ok(s) => s,
        Err(e) => {
            state.counters.incr(client, "errors");
            return error("bad-request", e);
        }
    };
    let job_id = jobs::single_job_id(kind, &spec);
    admit(
        state,
        client,
        job_id,
        kind,
        JobBody::Single(kind, spec, params),
        tag,
    )
}

fn submit_campaign(
    state: &Arc<State>,
    client: &str,
    matrix: String,
    tag: Option<String>,
) -> Response {
    // Validate the matrix up front so a syntax error is a synchronous
    // `bad-request`, not a failed job discovered later.
    if let Err(e) = campaign::CampaignSpec::parse(&matrix) {
        state.counters.incr(client, "errors");
        return error("bad-request", format!("bad matrix: {e}"));
    }
    let job_id = jobs::campaign_job_id(&matrix);
    admit(
        state,
        client,
        job_id,
        JobKind::Campaign,
        JobBody::Campaign(matrix),
        tag,
    )
}

fn status(state: &Arc<State>, job: &JobRef, wait: bool) -> Response {
    let mut table = crate::sync::lock(&state.table);
    let Some(id) = table.resolve(job) else {
        return error("unknown-job", format!("no such job: {job:?}"));
    };
    if wait {
        // Bounded waits (instead of a bare cv.wait) so a waiter survives
        // lock poisoning and re-checks liveness rather than parking on a
        // notification that might never come.
        while table.jobs.get(&id).is_some_and(|e| !e.state.terminal()) {
            let (guard, _timed_out) =
                crate::sync::wait_timeout(&state.table_cv, table, Duration::from_millis(200));
            table = guard;
        }
    }
    let Some(entry) = table.jobs.get(&id) else {
        return error("unknown-job", format!("no such job: {job:?}"));
    };
    Response::JobStatus {
        job: id.clone(),
        state: entry.state.label().to_string(),
        tag: entry.tag.clone(),
        error: match &entry.state {
            JobState::Failed(e) => Some(e.clone()),
            _ => None,
        },
        result: match &entry.state {
            JobState::Done(r) => Some(r.clone()),
            _ => None,
        },
    }
}

fn cancel(state: &Arc<State>, client: &str, job: &JobRef) -> Response {
    let id = {
        let table = crate::sync::lock(&state.table);
        match table.resolve(job) {
            Some(id) => id,
            None => return error("unknown-job", format!("no such job: {job:?}")),
        }
    };
    match state.queue.cancel(&id) {
        Some(_) => {
            // Release the slot of the client that *owns* the job (which
            // may differ from the one cancelling it).
            let owner = {
                let table = crate::sync::lock(&state.table);
                table
                    .jobs
                    .get(&id)
                    .map(|e| e.client.clone())
                    .unwrap_or_default()
            };
            state.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            state.counters.incr(client, "cancelled");
            state.finish(&id, &owner, JobState::Cancelled);
            Response::Cancelled {
                job: id,
                ok: true,
                state: "cancelled".to_string(),
            }
        }
        None => {
            let table = crate::sync::lock(&state.table);
            let current = table
                .jobs
                .get(&id)
                .map(|e| e.state.label().to_string())
                .unwrap_or_else(|| "unknown".to_string());
            Response::Cancelled {
                job: id,
                ok: false,
                state: current,
            }
        }
    }
}

fn stats(state: &Arc<State>) -> StatsReport {
    let (queued, running) = {
        let table = crate::sync::lock(&state.table);
        let queued = table
            .jobs
            .values()
            .filter(|e| matches!(e.state, JobState::Queued))
            .count() as u64;
        let running = table
            .jobs
            .values()
            .filter(|e| matches!(e.state, JobState::Running))
            .count() as u64;
        (queued, running)
    };
    let cache = state.mem.stats();
    StatsReport {
        jobs_queued: queued,
        jobs_running: running,
        jobs_done: state.stats.done.load(Ordering::Relaxed),
        jobs_failed: state.stats.failed.load(Ordering::Relaxed),
        jobs_cancelled: state.stats.cancelled.load(Ordering::Relaxed),
        jobs_replayed: state.stats.replayed.load(Ordering::Relaxed),
        mem_hits: cache.mem_hits,
        mem_misses: cache.mem_misses,
        disk_hits: cache.disk_hits,
        evictions: cache.evictions,
        mem_entries: cache.entries,
        mem_bytes: cache.bytes,
        fleet: state.fleet.snapshot(Instant::now()),
        clients: state
            .counters
            .snapshot()
            .into_iter()
            .map(|(client, counters)| ClientStats { client, counters })
            .collect(),
    }
}
