//! A small synchronous client for the commspec-server wire protocol.
//!
//! One request, one response, in order — exactly the discipline the
//! line-delimited protocol guarantees — so the client is a thin wrapper
//! over a buffered TCP stream. `commbench client` and the
//! `server_client` example are built on this.

use protocol::{JobParams, JobRef, Request, Response, PROTO_VERSION};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A connected, hello-negotiated client session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Server identity from `hello_ok`.
    pub server: String,
}

impl Client {
    /// Connect to `addr` and perform the `hello` handshake as `name`.
    pub fn connect(addr: &str, name: &str) -> Result<Client, String> {
        Client::connect_with(addr, name, 1, Duration::ZERO)
    }

    /// [`Client::connect`] with capped exponential backoff between
    /// connection attempts — for racing a server that is still binding
    /// its socket, or riding out a coordinator restart.
    pub fn connect_with(
        addr: &str,
        name: &str,
        retries: u32,
        backoff: Duration,
    ) -> Result<Client, String> {
        let stream = crate::worker::connect_with_retries(addr, retries, backoff)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        let mut client = Client {
            reader,
            writer: stream,
            server: String::new(),
        };
        match client.request(&Request::Hello {
            proto_version: PROTO_VERSION,
            client: name.to_string(),
        })? {
            Response::HelloOk { server, .. } => {
                client.server = server;
                Ok(client)
            }
            Response::Error { code, message } => {
                Err(format!("handshake refused: {code}: {message}"))
            }
            other => Err(format!("unexpected handshake reply: {}", other.type_name())),
        }
    }

    /// Send one request and read the one response it produces.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        writeln!(self.writer, "{}", req.to_line()).map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Response::from_line(&line).map_err(|e| format!("bad response: {e}"))
    }

    /// Submit a single-app job; returns `(job_id, replayed)`.
    pub fn submit(
        &mut self,
        kind: &str,
        params: JobParams,
        tag: Option<String>,
    ) -> Result<(String, bool), String> {
        let req = match kind {
            "trace" => Request::Trace { params, tag },
            "generate" => Request::Generate { params, tag },
            "simulate" => Request::Simulate { params, tag },
            other => return Err(format!("unknown job kind: {other}")),
        };
        match self.request(&req)? {
            Response::Submitted { job, replayed, .. } => Ok((job, replayed)),
            Response::Error { code, message } => Err(format!("{code}: {message}")),
            other => Err(format!("unexpected reply: {}", other.type_name())),
        }
    }

    /// Block until `job` reaches a terminal state and return its status.
    pub fn wait(&mut self, job: &str) -> Result<Response, String> {
        self.request(&Request::Status {
            job: JobRef::Id(job.to_string()),
            wait: true,
        })
    }

    /// Ask the server to shut down; expects `bye`.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(format!("unexpected reply: {}", other.type_name())),
        }
    }
}
