//! Ablations of the generator's design choices: what happens when
//! Algorithm 1 or Algorithm 2 is disabled, and what the compute-statement
//! threshold trades away. These pin down *why* the pipeline needs each
//! stage (DESIGN.md §5).

use benchgen::{generate, GenOptions};
use conceptual::printer::print;
use miniapps::{registry, AppParams, Class};
use mpisim::network;
use mpisim::time::SimDuration;
use scalatrace::trace_app;

fn params() -> AppParams {
    AppParams {
        class: Class::S,
        iterations: Some(2),
        compute_scale: 1.0,
    }
}

/// Without Algorithm 1, Sweep3D's split-call-site collectives remain
/// separate partial-communicator RSDs, and the generated program stops
/// being a valid benchmark: either it fails validation or its profile
/// diverges. With Algorithm 1 the same trace generates cleanly.
#[test]
fn without_algorithm1_split_collectives_stay_partial() {
    let app = registry::lookup("sweep3d").unwrap();
    let p = params();
    let traced = trace_app(8, network::ideal(), move |ctx| (app.run)(ctx, &p)).unwrap();
    assert!(traced.trace.has_unaligned_collectives());

    let without = generate(
        &traced.trace,
        &GenOptions {
            align_collectives: false,
            ..GenOptions::default()
        },
    )
    .expect("generation itself succeeds");
    assert!(!without.aligned);
    // the un-aligned program must contain collectives over *partial* task
    // sets: SYNCHRONIZE/REDUCE statements with SUCH THAT subjects
    let text = print(&without.program);
    let partial_colls = text
        .lines()
        .filter(|l| (l.contains("SYNCHRONIZE") || l.contains("REDUCE")) && l.contains("SUCH THAT"))
        .count();
    assert!(
        partial_colls > 0,
        "disabling Algorithm 1 must leave partial collectives:\n{text}"
    );

    let with = generate(&traced.trace, &GenOptions::default()).expect("generates");
    assert!(with.aligned);
    let text = print(&with.program);
    let partial_colls = text
        .lines()
        .filter(|l| (l.contains("SYNCHRONIZE") || l.contains("REDUCE")) && l.contains("SUCH THAT"))
        .count();
    assert_eq!(
        partial_colls, 0,
        "Algorithm 1 must leave no partial collectives:\n{text}"
    );
}

/// Without Algorithm 2, wildcard receives survive into the generated
/// program, so the benchmark's matching — and therefore its timing — is
/// schedule-dependent, defeating the reproducibility goal (§4.4).
#[test]
fn without_algorithm2_wildcards_survive() {
    let app = registry::lookup("lu").unwrap();
    let p = params();
    let traced = trace_app(8, network::ideal(), move |ctx| (app.run)(ctx, &p)).unwrap();
    assert!(traced.trace.has_wildcard_recv());

    let without = generate(
        &traced.trace,
        &GenOptions {
            resolve_wildcards: false,
            ..GenOptions::default()
        },
    )
    .expect("generates");
    assert_eq!(without.wildcards_resolved, 0);
    assert!(
        print(&without.program).contains("FROM ANY TASK"),
        "wildcards must survive when Algorithm 2 is disabled"
    );

    let with = generate(&traced.trace, &GenOptions::default()).expect("generates");
    assert!(with.wildcards_resolved > 0);
    assert!(!print(&with.program).contains("FROM ANY TASK"));
}

/// The compute threshold drops small COMPUTE statements: the program
/// shrinks, and the timing error grows — the readability/accuracy dial.
#[test]
fn compute_threshold_trades_accuracy_for_size() {
    let app = registry::lookup("bt").unwrap();
    let p = AppParams {
        class: Class::S,
        iterations: Some(6),
        compute_scale: 1.0,
    };
    let net = network::blue_gene_l();
    let traced = trace_app(9, net.clone(), move |ctx| (app.run)(ctx, &p)).unwrap();
    let t_app = traced.report.total_time.as_secs_f64();

    let mut prev_stmts = usize::MAX;
    let mut errors = Vec::new();
    for threshold_us in [0u64, 50, 10_000] {
        let generated = generate(
            &traced.trace,
            &GenOptions {
                compute_threshold: SimDuration::from_usecs(threshold_us),
                ..GenOptions::default()
            },
        )
        .expect("generates");
        let stmts = generated.program.stmt_count();
        assert!(
            stmts <= prev_stmts,
            "larger threshold must not grow the program"
        );
        prev_stmts = stmts;
        let outcome = conceptual::interp::run_program(&generated.program, 9, net.clone()).unwrap();
        errors.push((outcome.total_time.as_secs_f64() - t_app).abs() / t_app);
    }
    // dropping *all* computation must cost real accuracy
    assert!(
        errors[2] > errors[0] + 0.05,
        "threshold=10ms error {:.3} should exceed threshold=0 error {:.3}",
        errors[2],
        errors[0]
    );
}

/// Everything disabled at once still produces a printable artifact — the
/// "naive conversion" of §4.1 — demonstrating the options are independent.
#[test]
fn naive_conversion_is_still_printable() {
    let app = registry::lookup("lu").unwrap();
    let p = params();
    let traced = trace_app(8, network::ideal(), move |ctx| (app.run)(ctx, &p)).unwrap();
    let naive = generate(
        &traced.trace,
        &GenOptions {
            align_collectives: false,
            resolve_wildcards: false,
            compute_threshold: SimDuration::from_secs(3600),
            emit_comments: true,
            header: vec!["naive mode".into()],
        },
    )
    .expect("generates");
    let text = print(&naive.program);
    assert!(text.contains("naive mode"));
    let parsed = conceptual::parser::parse(&text).expect("still parses");
    assert_eq!(parsed, naive.program);
}
