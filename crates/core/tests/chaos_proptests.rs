//! Chaos differential properties: wildcard resolution (Algorithm 2) must be
//! invariant under seeded *legal* delivery reorderings — the exact
//! nondeterminism the paper says the generated benchmark has to absorb.
//!
//! A reorder-only fault plan permutes which in-flight message a wildcard
//! receive matches, but never what the application sends or receives, so
//! the resolved canonical benchmark (COMPUTE suppressed, header stripped)
//! must come out bit-identical.

use benchgen::chaos::{differential, differential_plans, ChaosVerdict};
use miniapps::{registry, AppParams, Class};
use mpisim::faults::FaultPlan;
use mpisim::network;
use mpisim::types::{Src, TagSel};
use proptest::prelude::*;
use scalatrace::trace_app;

const RANKS: usize = 4;

fn params() -> AppParams {
    AppParams {
        class: Class::S,
        iterations: Some(2),
        compute_scale: 1.0,
    }
}

/// Run `app` under `plans` and return the per-seed verdicts.
fn verdicts_of(app: &str, plans: &[FaultPlan]) -> Vec<ChaosVerdict> {
    let entry = registry::lookup(app).expect("registry app");
    let run = entry.run;
    let p = params();
    let baseline =
        trace_app(RANKS, network::blue_gene_l(), move |ctx| run(ctx, &p)).expect("baseline traces");
    let p = params();
    let report = differential(
        &baseline.trace,
        RANKS,
        network::blue_gene_l(),
        move |ctx| run(ctx, &p),
        plans,
    )
    .expect("baseline generates");
    report.outcomes.into_iter().map(|o| o.verdict).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reorder-only plans on lu (the registry app with ANY_SOURCE receives):
    /// the resolved benchmark must be *identical*, not merely equivalent —
    /// Algorithm 2 resolves from the trace, and a legal reordering cannot
    /// change the trace of an app that never branches on message metadata.
    #[test]
    fn lu_resolution_is_invariant_under_reordering(seed in 0u64..10_000) {
        let plans = vec![FaultPlan::seeded(seed).with_reorder()];
        for v in verdicts_of("lu", &plans) {
            prop_assert_eq!(v, ChaosVerdict::Invariant);
        }
    }

    /// The same holds for a synthetic fan-in that funnels every rank's
    /// messages through wildcard receives on rank 0 under full differential
    /// plans (jitter + skew + reorder + slow + stall).
    #[test]
    fn wildcard_fan_in_is_invariant_under_differential_plans(seed in 0u64..10_000) {
        let fan_in = |ctx: &mut mpisim::Ctx| {
            let w = ctx.world();
            let me = ctx.rank();
            for round in 0..3 {
                if me == 0 {
                    for _ in 1..ctx.size() {
                        let _ = ctx.recv(Src::Any, TagSel::Is(round), 128, &w);
                    }
                } else {
                    ctx.send(0, round, 128, &w);
                }
                ctx.barrier(&w);
            }
            ctx.finalize();
        };
        let baseline = trace_app(RANKS, network::blue_gene_l(), fan_in).unwrap();
        let report = differential(
            &baseline.trace,
            RANKS,
            network::blue_gene_l(),
            fan_in,
            &[FaultPlan::differential(seed, RANKS)],
        )
        .unwrap();
        for o in report.outcomes {
            prop_assert_eq!(o.verdict, ChaosVerdict::Invariant);
        }
    }
}

/// Full differential plans over the wildcard-bearing registry app: the
/// hard invariants hold for every standard seed.
#[test]
fn lu_passes_the_standard_differential_battery() {
    let verdicts = verdicts_of("lu", &differential_plans(6, RANKS));
    assert_eq!(verdicts.len(), 6);
    for v in verdicts {
        assert!(!v.is_violation(), "{}: {}", v.label(), v.detail());
    }
}
