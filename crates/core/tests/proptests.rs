//! Property-based end-to-end tests: random SPMD workloads go through the
//! full trace → align → resolve → generate pipeline, and the generated
//! benchmark must (a) validate and re-parse, (b) carry no wildcards, and
//! (c) reproduce the original mpiP profile through the Table-1 mapping.

use benchgen::verify::{compare_profiles, expected_profile};
use benchgen::{generate, GenOptions};
use mpisim::ctx::Ctx;
use mpisim::network;
use mpisim::profile::MpiP;
use mpisim::time::SimDuration;
use mpisim::types::{Src, TagSel};
use mpisim::world::World;
use proptest::prelude::*;
use scalatrace::trace_app;
use std::sync::Arc;

/// One communication phase of a synthetic SPMD application.
#[derive(Clone, Debug)]
enum Phase {
    /// Shifted ring exchange: irecv left, isend right, waitall.
    Ring { bytes: u64, tag: i32 },
    /// XOR-partner exchange.
    Butterfly { dim: u8, bytes: u64 },
    /// A collective from rank-parity-dependent call sites (Algorithm 1 bait).
    SplitBarrier,
    /// Fan-in to rank 0 with ANY_SOURCE receives (Algorithm 2 bait).
    WildcardFanIn { bytes: u64 },
    /// Pure computation.
    Compute { usecs: u64 },
    /// Allreduce.
    Allreduce { bytes: u64 },
}

fn arb_phase() -> impl Strategy<Value = Phase> {
    prop_oneof![
        ((1u64..8192), (0i32..4)).prop_map(|(bytes, tag)| Phase::Ring { bytes, tag }),
        ((0u8..3), (1u64..4096)).prop_map(|(dim, bytes)| Phase::Butterfly { dim, bytes }),
        Just(Phase::SplitBarrier),
        (1u64..1024).prop_map(|bytes| Phase::WildcardFanIn { bytes }),
        (1u64..500).prop_map(|usecs| Phase::Compute { usecs }),
        (1u64..512).prop_map(|bytes| Phase::Allreduce { bytes }),
    ]
}

fn run_phases(ctx: &mut Ctx, phases: &[Phase], reps: usize) {
    let w = ctx.world();
    let n = ctx.size();
    let me = ctx.rank();
    for _ in 0..reps {
        for p in phases {
            match p {
                Phase::Ring { bytes, tag } => {
                    let right = (me + 1) % n;
                    let left = (me + n - 1) % n;
                    let r = ctx.irecv(Src::Rank(left), TagSel::Is(*tag), *bytes, &w);
                    let s = ctx.isend(right, *tag, *bytes, &w);
                    ctx.waitall(&[r, s]);
                }
                Phase::Butterfly { dim, bytes } => {
                    let partner =
                        me ^ (1usize << (*dim as usize % n.trailing_zeros().max(1) as usize));
                    if partner < n {
                        let r = ctx.irecv(Src::Rank(partner), TagSel::Is(9), *bytes, &w);
                        let s = ctx.isend(partner, 9, *bytes, &w);
                        ctx.waitall(&[r, s]);
                    }
                }
                Phase::SplitBarrier => {
                    if me.is_multiple_of(2) {
                        ctx.barrier(&w); // call site A
                    } else {
                        ctx.barrier(&w); // call site B
                    }
                }
                Phase::WildcardFanIn { bytes } => {
                    if me == 0 {
                        for _ in 1..n {
                            let _ = ctx.recv(Src::Any, TagSel::Is(5), *bytes, &w);
                        }
                    } else {
                        ctx.send(0, 5, *bytes, &w);
                    }
                }
                Phase::Compute { usecs } => {
                    ctx.compute(SimDuration::from_usecs(*usecs));
                }
                Phase::Allreduce { bytes } => {
                    ctx.allreduce(*bytes, &w);
                }
            }
        }
    }
    ctx.finalize();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_invariants_hold_for_random_workloads(
        phases in proptest::collection::vec(arb_phase(), 1..6),
        reps in 1usize..4,
    ) {
        let n = 8;
        let phases = Arc::new(phases);

        // trace the synthetic application
        let p1 = Arc::clone(&phases);
        let traced = trace_app(n, network::ideal(), move |ctx| run_phases(ctx, &p1, reps))
            .expect("workload runs");

        // the full pipeline
        let generated = generate(&traced.trace, &GenOptions::default()).expect("generates");

        // (a) readable: re-parses exactly, validates
        let text = conceptual::printer::print(&generated.program);
        let parsed = conceptual::parser::parse(&text).expect("parses");
        prop_assert_eq!(&parsed, &generated.program);
        prop_assert!(conceptual::analyze::validate(&generated.program, n).is_empty());

        // (b) no wildcard survives generation
        prop_assert!(!text.contains("FROM ANY TASK"), "{}", text);

        // (c) mpiP profiles match through the Table-1 mapping
        let p2 = Arc::clone(&phases);
        let (_, orig_hooks) = World::new(n)
            .network(network::ideal())
            .run_hooked(|_| MpiP::new(), move |ctx| run_phases(ctx, &p2, reps))
            .expect("profiling run");
        let orig = MpiP::merge_all(orig_hooks.iter());
        let program = Arc::new(generated.program.clone());
        let (_, gen_hooks) = World::new(n)
            .network(network::ideal())
            .run_hooked(
                |_| MpiP::new(),
                move |ctx| conceptual::interp::run_rank(ctx, &program),
            )
            .expect("generated benchmark runs");
        let genp = MpiP::merge_all(gen_hooks.iter());
        let errors = compare_profiles(&expected_profile(&orig, n), &genp, 0.02);
        prop_assert!(errors.is_empty(), "profile mismatch: {:?}\n{}", errors, text);
    }

    /// Generated benchmarks are deterministic even when the source
    /// application was not: the paper's reproducibility goal (§4.4). The
    /// wildcard fan-in makes the application schedule-sensitive; the
    /// generated benchmark must give bit-identical run reports across
    /// repeated executions.
    #[test]
    fn generated_benchmarks_are_deterministic(bytes in 1u64..2048, reps in 1usize..4) {
        let n = 8;
        let traced = trace_app(n, network::ethernet_cluster(), move |ctx| {
            run_phases(
                ctx,
                &[Phase::WildcardFanIn { bytes }, Phase::Ring { bytes, tag: 1 }],
                reps,
            )
        })
        .expect("runs");
        let generated = generate(&traced.trace, &GenOptions::default()).expect("generates");
        let run = || {
            conceptual::interp::run_program(&generated.program, n, network::ethernet_cluster())
                .expect("runs")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.report.per_rank_time, b.report.per_rank_time);
        prop_assert_eq!(a.report.stats, b.report.stats);
    }
}
