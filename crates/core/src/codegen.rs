//! The trace-traversal framework and pluggable code generators.
//!
//! "We designed a trace traversal framework that walks through the trace
//! and invokes a language-dependent code generator for each RSD and PRSD.
//! A code generator is a pluggable function that conforms to a predefined
//! interface." (paper §4.1). [`CodeGenerator`] is that interface;
//! [`ConceptualGenerator`] is the primary backend, and [`CTextGenerator`]
//! demonstrates pluggability by emitting pseudo-C+MPI.

use crate::collectives::map_collective;
use crate::taskset::{p2p_groups, taskset_of};
use conceptual::ast::{Expr, Program, Stmt, TimeUnit};
use mpisim::comm::CommId;
use mpisim::time::SimDuration;
use mpisim::types::{Tag, TagSel};
use scalatrace::params::SrcParam;
use scalatrace::trace::{OpTemplate, Rsd, Trace, TraceNode};

/// The pluggable generator interface: the traversal calls these as it walks
/// RSDs and PRSDs.
pub trait CodeGenerator {
    /// Called once before traversal starts.
    fn begin(&mut self, trace: &Trace);
    /// A PRSD with `count` iterations opens.
    fn enter_loop(&mut self, count: u64);
    /// The innermost open PRSD closes.
    fn exit_loop(&mut self);
    /// One RSD, in traversal order.
    fn event(&mut self, rsd: &Rsd, trace: &Trace);
}

/// Walk the trace, invoking the generator for each node.
pub fn traverse<G: CodeGenerator>(trace: &Trace, generator: &mut G) {
    fn walk<G: CodeGenerator>(nodes: &[TraceNode], trace: &Trace, generator: &mut G) {
        for n in nodes {
            match n {
                TraceNode::Event(rsd) => generator.event(rsd, trace),
                TraceNode::Loop(p) => {
                    generator.enter_loop(p.count);
                    walk(&p.body, trace, generator);
                    generator.exit_loop();
                }
            }
        }
    }
    generator.begin(trace);
    walk(&trace.nodes, trace, generator);
}

/// Synthesise an MPI-level tag that keeps (communicator, tag) pairs
/// distinct: generated programs express all point-to-point traffic over the
/// world communicator in absolute ranks (paper §4.2), so the original
/// communicator is folded into the tag to preserve matching.
pub fn synth_tag(comm: CommId, tag: Tag) -> Tag {
    if comm == 0 {
        tag
    } else {
        ((comm as Tag) << 16) | (tag & 0xFFFF)
    }
}

// ---------------------------------------------------------------------------
// coNCePTuaL backend
// ---------------------------------------------------------------------------

/// Generates a [`Program`] from a (aligned, resolved) trace.
pub struct ConceptualGenerator {
    /// Statement stack: one frame per open loop.
    stack: Vec<Vec<Stmt>>,
    /// Pending `MPI_Comm_split` RSDs being coalesced into one PARTITION.
    pending_split: Option<PendingSplit>,
    /// Approximation notes gathered from Table 1 mappings.
    pub notes: Vec<String>,
    /// Smallest computation worth a COMPUTE statement.
    pub compute_threshold: SimDuration,
    /// Emit a provenance comment (`# MPI_Isend @sig…`) before each
    /// generated statement group.
    pub emit_comments: bool,
    nranks: usize,
}

struct PendingSplit {
    parent: CommId,
    sig: u64,
    /// (result comm id, members)
    groups: Vec<(CommId, Vec<usize>)>,
}

impl ConceptualGenerator {
    /// A generator with default options.
    pub fn new() -> ConceptualGenerator {
        ConceptualGenerator {
            stack: vec![Vec::new()],
            pending_split: None,
            notes: Vec::new(),
            compute_threshold: SimDuration::ZERO,
            emit_comments: false,
            nranks: 0,
        }
    }

    /// Finish generation and return the program.
    pub fn finish(mut self) -> (Program, Vec<String>) {
        self.flush_split();
        assert_eq!(self.stack.len(), 1, "unbalanced loop nesting");
        let stmts = self.stack.pop().unwrap();
        (Program::new(stmts), self.notes)
    }

    fn push(&mut self, s: Stmt) {
        self.stack.last_mut().expect("stack nonempty").push(s);
    }

    fn push_all(&mut self, stmts: Vec<Stmt>) {
        self.stack.last_mut().expect("stack nonempty").extend(stmts);
    }

    fn note(&mut self, note: String) {
        if !self.notes.contains(&note) {
            self.notes.push(note);
        }
    }

    /// The group name used for a recorded communicator.
    pub fn group_name(comm: CommId) -> String {
        format!("comm{comm}")
    }

    fn flush_split(&mut self) {
        let Some(split) = self.pending_split.take() else {
            return;
        };
        let parent = (split.parent != 0).then(|| Self::group_name(split.parent));
        let groups = split
            .groups
            .into_iter()
            .map(|(id, members)| {
                let ranks = scalatrace::rankset::RankSet::from_ranks(members);
                (Self::group_name(id), crate::taskset::runs_of(&ranks))
            })
            .collect();
        self.push(Stmt::Partition { parent, groups });
    }

    fn emit_compute(&mut self, rsd: &Rsd) {
        let mean = rsd.compute.mean();
        if mean > self.compute_threshold && mean > SimDuration::ZERO {
            self.push(Stmt::Compute {
                tasks: taskset_of(&rsd.ranks, self.nranks, false),
                amount: Expr::num(mean.as_nanos() as i64),
                unit: TimeUnit::Nanoseconds,
            });
        }
    }
}

impl Default for ConceptualGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl CodeGenerator for ConceptualGenerator {
    fn begin(&mut self, trace: &Trace) {
        self.nranks = trace.nranks;
    }

    fn enter_loop(&mut self, _count: u64) {
        self.flush_split();
        self.stack.push(Vec::new());
    }

    fn exit_loop(&mut self) {
        self.flush_split();
        let body = self.stack.pop().expect("loop frame");
        // the count is re-supplied by the caller through a small trick: we
        // record it when entering; see `traverse_program`
        self.push(Stmt::For {
            count: Expr::num(0), // patched by traverse_program
            body,
        });
    }

    fn event(&mut self, rsd: &Rsd, trace: &Trace) {
        // Coalesce adjacent CommSplit RSDs from one original split.
        if let OpTemplate::CommSplit { parent, result } = &rsd.op {
            let members: Vec<usize> = trace.comms.members(*result).to_vec();
            match &mut self.pending_split {
                Some(p) if p.parent == *parent && p.sig == rsd.sig => {
                    p.groups.push((*result, members));
                }
                _ => {
                    self.flush_split();
                    self.pending_split = Some(PendingSplit {
                        parent: *parent,
                        sig: rsd.sig,
                        groups: vec![(*result, members)],
                    });
                }
            }
            return;
        }
        self.flush_split();
        if self.emit_comments {
            self.push(Stmt::Comment(format!(
                "{} @{:08x} ranks {} ({} events)",
                rsd.op.mpi_name(),
                rsd.sig >> 32,
                rsd.ranks,
                rsd.compute.count().max(1),
            )));
        }
        self.emit_compute(rsd);

        match &rsd.op {
            OpTemplate::Send {
                to,
                tag,
                bytes,
                comm,
                blocking,
            } => {
                for (comm_id, sub) in comm.groups(&rsd.ranks) {
                    for g in p2p_groups(&sub, Some(to), bytes) {
                        self.push(Stmt::Send {
                            src: taskset_of(&g.ranks, self.nranks, true),
                            dst: g.peer.expect("sends have peers"),
                            bytes: g.bytes,
                            tag: synth_tag(comm_id, *tag),
                            is_async: !blocking,
                        });
                    }
                }
            }
            OpTemplate::Recv {
                from,
                tag,
                bytes,
                comm,
                blocking,
            } => {
                for (comm_id, sub) in comm.groups(&rsd.ranks) {
                    let tag = match tag {
                        TagSel::Is(t) => synth_tag(comm_id, *t),
                        // ANY_TAG degrades to tag 0 in generated code;
                        // matching by source/order is preserved.
                        TagSel::Any => {
                            self.note(
                                "MPI_ANY_TAG receives generated with a concrete tag".to_string(),
                            );
                            synth_tag(comm_id, 0)
                        }
                    };
                    match from {
                        SrcParam::Any => {
                            for g in p2p_groups(&sub, None, bytes) {
                                self.push(Stmt::Receive {
                                    dst: taskset_of(&g.ranks, self.nranks, true),
                                    src: None,
                                    bytes: g.bytes,
                                    tag,
                                    is_async: !blocking,
                                });
                            }
                        }
                        SrcParam::Rank(p) => {
                            for g in p2p_groups(&sub, Some(p), bytes) {
                                self.push(Stmt::Receive {
                                    dst: taskset_of(&g.ranks, self.nranks, true),
                                    src: Some(g.peer.expect("grouped peer")),
                                    bytes: g.bytes,
                                    tag,
                                    is_async: !blocking,
                                });
                            }
                        }
                    }
                }
            }
            OpTemplate::Wait { .. } => {
                self.push(Stmt::Await {
                    tasks: taskset_of(&rsd.ranks, self.nranks, false),
                });
            }
            OpTemplate::Coll {
                kind,
                root,
                bytes,
                comm,
            } => {
                // One original call site may cover several disjoint
                // subcommunicators (e.g. per-column allreduces): emit one
                // statement per communicator instance.
                for (comm_id, sub) in comm.groups(&rsd.ranks) {
                    let group_name;
                    let group = if comm_id != 0 {
                        group_name = Self::group_name(comm_id);
                        Some(group_name.as_str())
                    } else {
                        None
                    };
                    // MPI guarantees a single root per communicator; narrow
                    // the (possibly per-rank) root parameter to this one.
                    let narrowed_root = root.as_ref().map(|r| {
                        scalatrace::params::RankParam::Const(
                            r.eval(sub.first().expect("nonempty comm group")),
                        )
                    });
                    let mapped = map_collective(
                        *kind,
                        &sub,
                        narrowed_root.as_ref(),
                        bytes,
                        self.nranks,
                        group,
                    );
                    if let Some(note) = mapped.note {
                        self.note(note);
                    }
                    self.push_all(mapped.stmts);
                }
            }
            OpTemplate::CommSplit { .. } => unreachable!("handled above"),
        }
    }
}

/// Generate a coNCePTuaL program from a trace (which must already be
/// aligned and wildcard-resolved as requested; [`crate::generate`] wires
/// the full pipeline).
pub fn program_of(trace: &Trace, compute_threshold: SimDuration) -> (Program, Vec<String>) {
    program_of_with(trace, compute_threshold, false)
}

/// As [`program_of`], optionally emitting per-statement provenance
/// comments.
pub fn program_of_with(
    trace: &Trace,
    compute_threshold: SimDuration,
    emit_comments: bool,
) -> (Program, Vec<String>) {
    // Loop counts can't flow through the trait without clutter, so patch
    // them in a post-pass that mirrors the traversal order.
    let mut generator = ConceptualGenerator {
        compute_threshold,
        emit_comments,
        ..ConceptualGenerator::new()
    };
    traverse(trace, &mut generator);
    let (mut program, notes) = generator.finish();
    patch_loop_counts(&mut program.stmts, &trace.nodes);
    (program, notes)
}

/// Restore loop iteration counts: the statement tree's FOR nodes are in
/// one-to-one traversal correspondence with the trace's PRSDs.
fn patch_loop_counts(stmts: &mut [Stmt], nodes: &[TraceNode]) {
    let loops: Vec<&scalatrace::trace::Prsd> = nodes
        .iter()
        .filter_map(|n| match n {
            TraceNode::Loop(p) => Some(p),
            _ => None,
        })
        .collect();
    let fors: Vec<&mut Stmt> = stmts
        .iter_mut()
        .filter(|s| matches!(s, Stmt::For { .. }))
        .collect();
    assert_eq!(
        loops.len(),
        fors.len(),
        "FOR statements must mirror PRSDs one-to-one"
    );
    for (f, p) in fors.into_iter().zip(loops) {
        let Stmt::For { count, body } = f else {
            unreachable!()
        };
        *count = Expr::num(p.count as i64);
        patch_loop_counts(body, &p.body);
    }
}

// ---------------------------------------------------------------------------
// C pseudo-code backend (pluggability demonstration)
// ---------------------------------------------------------------------------

/// A second backend emitting pseudo-C+MPI, demonstrating the pluggable
/// generator interface of the paper's §4.1.
pub struct CTextGenerator {
    out: String,
    indent: usize,
    nranks: usize,
}

impl CTextGenerator {
    /// An empty pseudo-C emitter.
    pub fn new() -> CTextGenerator {
        CTextGenerator {
            out: String::new(),
            indent: 1,
            nranks: 0,
        }
    }

    /// The generated pseudo-C source.
    pub fn finish(self) -> String {
        format!(
            "/* auto-generated pseudo-C+MPI (nranks={}) */\nint main() {{\n{}}}\n",
            self.nranks, self.out
        )
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }
}

impl Default for CTextGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl CodeGenerator for CTextGenerator {
    fn begin(&mut self, trace: &Trace) {
        self.nranks = trace.nranks;
    }

    fn enter_loop(&mut self, count: u64) {
        self.line(&format!("for (int i = 0; i < {count}; i++) {{"));
        self.indent += 1;
    }

    fn exit_loop(&mut self) {
        self.indent -= 1;
        self.line("}");
    }

    fn event(&mut self, rsd: &Rsd, _trace: &Trace) {
        let guard = format!("if (rank in {}) ", rsd.ranks);
        let mean = rsd.compute.mean();
        if mean > SimDuration::ZERO {
            self.line(&format!("{guard}compute_ns({});", mean.as_nanos()));
        }
        let call = match &rsd.op {
            OpTemplate::Send { to, tag, bytes, .. } => {
                format!("MPI_Isend(to={to}, tag={tag}, bytes={bytes});")
            }
            OpTemplate::Recv {
                from, tag, bytes, ..
            } => format!("MPI_Irecv(from={from}, tag={tag}, bytes={bytes});"),
            OpTemplate::Wait { count } => format!("MPI_Waitall(n={count});"),
            OpTemplate::Coll {
                kind, bytes, comm, ..
            } => format!("{}(bytes={bytes}, comm={comm});", kind.mpi_name()),
            OpTemplate::CommSplit { parent, result } => {
                format!("MPI_Comm_split(parent={parent}) /* -> comm {result} */;")
            }
        };
        self.line(&format!("{guard}{call}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::types::Src;
    use scalatrace::trace_app;

    fn ring_trace(n: usize, iters: usize) -> Trace {
        trace_app(n, network::ideal(), move |ctx| {
            let w = ctx.world();
            let right = (ctx.rank() + 1) % ctx.size();
            let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
            for _ in 0..iters {
                let r = ctx.irecv(Src::Rank(left), TagSel::Is(0), 1024, &w);
                let s = ctx.isend(right, 0, 1024, &w);
                ctx.compute(SimDuration::from_usecs(100));
                ctx.waitall(&[r, s]);
            }
            ctx.finalize();
        })
        .unwrap()
        .trace
    }

    #[test]
    fn ring_generates_compact_readable_program() {
        let trace = ring_trace(8, 500);
        let (program, _notes) = program_of(&trace, SimDuration::ZERO);
        let text = conceptual::printer::print(&program);
        assert!(text.contains("FOR 500 REPETITIONS {"), "{text}");
        assert!(
            text.contains(
                "ALL TASKS t ASYNCHRONOUSLY RECEIVE A 1024 BYTE MESSAGE FROM TASK (t - 1) MOD 8"
            ) || text.contains("FROM TASK (t + 7) MOD 8"),
            "{text}"
        );
        assert!(
            text.contains(
                "ALL TASKS t ASYNCHRONOUSLY SEND A 1024 BYTE MESSAGE TO TASK (t + 1) MOD 8"
            ),
            "{text}"
        );
        assert!(text.contains("ALL TASKS AWAIT COMPLETION"), "{text}");
        assert!(
            text.contains("ALL TASKS COMPUTE FOR 100000 NANOSECONDS"),
            "{text}"
        );
        // program size independent of iteration count: a handful of stmts
        assert!(program.stmt_count() < 12, "{text}");
    }

    #[test]
    fn generated_program_round_trips_through_parser() {
        let trace = ring_trace(4, 50);
        let (program, _) = program_of(&trace, SimDuration::ZERO);
        let text = conceptual::printer::print(&program);
        let back = conceptual::parser::parse(&text).expect("generated text parses");
        assert_eq!(back, program);
    }

    #[test]
    fn c_backend_demonstrates_pluggability() {
        let trace = ring_trace(4, 10);
        let mut generator = CTextGenerator::new();
        traverse(&trace, &mut generator);
        let c = generator.finish();
        assert!(c.contains("for (int i = 0; i < 10; i++)"));
        assert!(c.contains("MPI_Isend"));
        assert!(c.contains("MPI_Waitall"));
    }

    #[test]
    fn comm_splits_coalesce_into_partition() {
        let traced = trace_app(8, network::ideal(), |ctx| {
            let w = ctx.world();
            let row = ctx.comm_split(&w, (ctx.rank() / 4) as i64, ctx.rank() as i64);
            ctx.allreduce(64, &row);
            ctx.finalize();
        })
        .unwrap();
        let (program, _) = program_of(&traced.trace, SimDuration::ZERO);
        let text = conceptual::printer::print(&program);
        // the original split surfaces as (possibly sibling) PARTITIONs
        assert!(text.contains("GROUP comm1 = {0-3}"), "{text}");
        assert!(text.contains("GROUP comm2 = {4-7}"), "{text}");
        assert!(
            text.contains("GROUP comm1 REDUCE A 64 BYTE MESSAGE TO ALL TASKS"),
            "{text}"
        );
        // generated program must validate and run
        let outcome = conceptual::interp::run_program(&program, 8, network::ideal()).expect("runs");
        assert!(outcome.report.stats.collectives > 0);
    }

    #[test]
    fn nested_loops_patch_counts_correctly() {
        let trace = trace_app(2, network::ideal(), |ctx| {
            let w = ctx.world();
            for _ in 0..4 {
                for _ in 0..7 {
                    ctx.allreduce(8, &w);
                }
                ctx.barrier(&w);
            }
        })
        .unwrap()
        .trace;
        let (program, _) = program_of(&trace, SimDuration::ZERO);
        let text = conceptual::printer::print(&program);
        assert!(text.contains("FOR 4 REPETITIONS {"), "{text}");
        assert!(text.contains("FOR 7 REPETITIONS {"), "{text}");
        // nesting order: the 7-loop sits inside the 4-loop
        let outer = text.find("FOR 4").unwrap();
        let inner = text.find("FOR 7").unwrap();
        assert!(inner > outer, "{text}");
    }

    #[test]
    fn per_rank_sizes_split_into_subset_statements() {
        // each rank sends a differently-sized message to rank 0 from the
        // same call site: the merged RSD has a per-rank size table, which
        // codegen must split into per-subset statements
        let trace = trace_app(4, network::ideal(), |ctx| {
            let w = ctx.world();
            if ctx.rank() > 0 {
                let sz = 100 * ctx.rank() as u64 * ctx.rank() as u64;
                ctx.send(0, 0, sz, &w);
            } else {
                for _ in 1..4 {
                    let _ = ctx.recv(mpisim::types::Src::Any, TagSel::Any, 0, &w);
                }
            }
        })
        .unwrap()
        .trace;
        let (program, _) = program_of(&trace, SimDuration::ZERO);
        let text = conceptual::printer::print(&program);
        for sz in [100u64, 400, 900] {
            assert!(
                text.contains(&format!("{sz} BYTE MESSAGE")),
                "size {sz} missing:\n{text}"
            );
        }
    }

    #[test]
    fn synth_tags_separate_communicators() {
        assert_eq!(synth_tag(0, 5), 5);
        assert_ne!(synth_tag(1, 5), synth_tag(2, 5));
        assert_ne!(synth_tag(1, 5), 5);
    }
}
