//! Chaos differential validation of the generation pipeline.
//!
//! The paper's robustness claim for Algorithm 2 (§4.1/§4.4) is that the
//! generated benchmark is *deterministic even though wildcard matches depend
//! on run-to-run message arrival order*. A single simulator run only ever
//! exhibits one arrival order, so the claim is untestable without an
//! adversary. This module is that adversary: it re-runs the application
//! under seeded [`FaultPlan`]s that perturb latency, delivery order, and
//! rank progress — every reordering a legal MPI execution could produce —
//! re-traces, re-runs the pipeline, and checks the *timing-independent*
//! invariants:
//!
//! 1. **Profile invariance** (hard): the perturbed run's mpiP profile —
//!    per-routine op counts and byte volumes — matches the baseline exactly.
//!    Timing faults must never change *what* the application communicates.
//! 2. **Benchmark invariance** (soft): the canonical generated benchmark
//!    (resolved wildcards, COMPUTE statements suppressed, provenance header
//!    stripped) is textually identical. When arrival order legitimately
//!    changes which sender a wildcard matched, this produces a *structured
//!    divergence record* rather than a failure — that is exactly the
//!    nondeterminism the paper says Algorithm 2 must absorb, and the record
//!    documents where it surfaced.
//!
//! A perturbed run that fails outright, or whose trace no longer generates,
//! is always a violation.

use crate::{generate, GenOptions};
use mpisim::ctx::Ctx;
use mpisim::faults::FaultPlan;
use mpisim::network::NetworkModel;
use mpisim::profile::MpiP;
use mpisim::time::SimDuration;
use mpisim::world::World;
use scalatrace::trace::Trace;
use scalatrace::trace_world;
use std::fmt;
use std::sync::Arc;

/// Outcome of one seeded perturbation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// Profile and canonical benchmark both match the baseline.
    Invariant,
    /// Profile matches, but the resolved benchmark differs — legitimate
    /// wildcard nondeterminism, reported structurally.
    Diverged {
        /// First differing benchmark line, `"line N: <a> | <b>"`.
        first_difference: String,
    },
    /// The perturbed run communicated differently than the baseline — a
    /// violation: timing faults must never change op counts or volumes.
    ProfileMismatch {
        /// Per-routine differences from [`MpiP::diff`].
        mismatches: Vec<String>,
    },
    /// The perturbed run failed (deadlock, budget, crash).
    RunFailed {
        /// The simulation error, rendered.
        error: String,
    },
    /// The perturbed trace no longer generates a benchmark.
    GenFailed {
        /// The generation error, rendered.
        error: String,
    },
}

impl ChaosVerdict {
    /// Is this verdict a hard invariant violation (as opposed to a pass or
    /// a legitimate, structurally reported divergence)?
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            ChaosVerdict::ProfileMismatch { .. }
                | ChaosVerdict::RunFailed { .. }
                | ChaosVerdict::GenFailed { .. }
        )
    }

    /// Short machine-friendly label (used in telemetry).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosVerdict::Invariant => "invariant",
            ChaosVerdict::Diverged { .. } => "diverged",
            ChaosVerdict::ProfileMismatch { .. } => "profile-mismatch",
            ChaosVerdict::RunFailed { .. } => "run-failed",
            ChaosVerdict::GenFailed { .. } => "gen-failed",
        }
    }

    /// One-line detail for logs (empty for [`ChaosVerdict::Invariant`]).
    pub fn detail(&self) -> String {
        match self {
            ChaosVerdict::Invariant => String::new(),
            ChaosVerdict::Diverged { first_difference } => first_difference.clone(),
            ChaosVerdict::ProfileMismatch { mismatches } => mismatches.join("; "),
            ChaosVerdict::RunFailed { error } | ChaosVerdict::GenFailed { error } => error.clone(),
        }
    }
}

/// One seeded perturbation's result.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Seed of the fault plan.
    pub seed: u64,
    /// What the differential check concluded.
    pub verdict: ChaosVerdict,
}

/// Aggregate result of a chaos differential campaign over one application.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// One outcome per fault plan, in plan order.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Seeds whose runs were fully invariant.
    pub fn invariant(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict == ChaosVerdict::Invariant)
            .count()
    }

    /// Structured divergence records (legitimate wildcard nondeterminism).
    pub fn divergences(&self) -> Vec<&ChaosOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.verdict, ChaosVerdict::Diverged { .. }))
            .collect()
    }

    /// Hard violations: profile mismatches, failed runs, failed generation.
    pub fn violations(&self) -> Vec<&ChaosOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_violation())
            .collect()
    }

    /// Did every perturbation uphold the hard invariants? (Divergences are
    /// allowed — they are the documented nondeterminism, not a failure.)
    pub fn passed(&self) -> bool {
        self.violations().is_empty()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos: {}/{} invariant, {} diverged, {} violations",
            self.invariant(),
            self.outcomes.len(),
            self.divergences().len(),
            self.violations().len()
        )
    }
}

/// The standard differential fault plans for `nseeds` seeds on `n` ranks
/// (jitter + skew + reorder + slowdown + stall, no crashes — see
/// [`FaultPlan::differential`]).
pub fn differential_plans(nseeds: usize, n: usize) -> Vec<FaultPlan> {
    (0..nseeds as u64)
        .map(|seed| FaultPlan::differential(seed, n))
        .collect()
}

/// Canonical benchmark text for differential comparison: wildcards
/// resolved, COMPUTE statements suppressed (timing faults legitimately
/// stretch compute intervals; the *communication structure* is what must
/// be invariant), provenance header stripped.
fn canonical_benchmark(trace: &Trace) -> Result<String, String> {
    let opts = GenOptions {
        // Suppress every COMPUTE: any finite duration is below this.
        compute_threshold: SimDuration::from_nanos(u64::MAX >> 1),
        emit_comments: false,
        ..GenOptions::default()
    };
    let mut generated = generate(trace, &opts).map_err(|e| e.to_string())?;
    generated.program.header.clear();
    Ok(conceptual::printer::print(&generated.program))
}

/// First differing line between two benchmark texts.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: {la:?} vs {lb:?}", i + 1);
        }
    }
    let (na, nb) = (a.lines().count(), b.lines().count());
    format!("length: {na} vs {nb} lines")
}

/// Run the chaos differential harness: re-execute `body` under each fault
/// plan, re-trace, re-generate, and compare against the `baseline` trace.
/// Returns `Err` only if the *baseline* itself cannot be profiled and
/// generated (perturbed-side problems are per-seed verdicts).
pub fn differential<F>(
    baseline: &Trace,
    n: usize,
    model: Arc<dyn NetworkModel>,
    body: F,
    plans: &[FaultPlan],
) -> Result<ChaosReport, String>
where
    F: Fn(&mut Ctx) + Send + Sync + 'static,
{
    let baseline_profile = crate::verify::profile_of_trace(baseline);
    let baseline_bench = canonical_benchmark(baseline).map_err(|e| format!("baseline: {e}"))?;
    let body = Arc::new(body);

    let mut outcomes = Vec::with_capacity(plans.len());
    for plan in plans {
        let seed = plan.seed;
        let verdict = run_one(
            &baseline_profile,
            &baseline_bench,
            n,
            Arc::clone(&model),
            Arc::clone(&body),
            plan,
        );
        outcomes.push(ChaosOutcome { seed, verdict });
    }
    Ok(ChaosReport { outcomes })
}

fn run_one<F>(
    baseline_profile: &MpiP,
    baseline_bench: &str,
    n: usize,
    model: Arc<dyn NetworkModel>,
    body: Arc<F>,
    plan: &FaultPlan,
) -> ChaosVerdict
where
    F: Fn(&mut Ctx) + Send + Sync + 'static,
{
    let world = World::new(n).network(model).faults(plan.clone());
    let b = Arc::clone(&body);
    let perturbed = match trace_world(world, n, move |ctx| b(ctx)) {
        Ok(t) => t,
        Err(e) => {
            return ChaosVerdict::RunFailed {
                error: e.to_string(),
            }
        }
    };

    // Hard invariant: identical op counts and volumes per routine.
    let profile = crate::verify::profile_of_trace(&perturbed.trace);
    let mismatches = baseline_profile.diff(&profile);
    if !mismatches.is_empty() {
        return ChaosVerdict::ProfileMismatch { mismatches };
    }

    // Soft invariant: identical resolved benchmark, else a structured
    // divergence record.
    match canonical_benchmark(&perturbed.trace) {
        Err(error) => ChaosVerdict::GenFailed { error },
        Ok(bench) if bench == baseline_bench => ChaosVerdict::Invariant,
        Ok(bench) => ChaosVerdict::Diverged {
            first_difference: first_diff(baseline_bench, &bench),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::types::{Src, TagSel};
    use scalatrace::trace_app;

    fn ring_with_wildcard(ctx: &mut Ctx) {
        let w = ctx.world();
        let right = (ctx.rank() + 1) % ctx.size();
        for _ in 0..4 {
            let r = ctx.irecv(Src::Any, TagSel::Is(0), 256, &w);
            let s = ctx.isend(right, 0, 256, &w);
            ctx.compute(SimDuration::from_usecs(10));
            ctx.waitall(&[r, s]);
        }
        ctx.finalize();
    }

    #[test]
    fn ring_is_invariant_under_differential_plans() {
        const N: usize = 4;
        let baseline = trace_app(N, network::blue_gene_l(), ring_with_wildcard).unwrap();
        let report = differential(
            &baseline.trace,
            N,
            network::blue_gene_l(),
            ring_with_wildcard,
            &differential_plans(4, N),
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.passed(), "{report}: {:?}", report.violations());
    }

    #[test]
    fn crash_plans_surface_as_run_failed_violations() {
        const N: usize = 3;
        let baseline = trace_app(N, network::ideal(), ring_with_wildcard).unwrap();
        let plans = vec![FaultPlan::seeded(0).crash_rank(1, 2)];
        let report = differential(
            &baseline.trace,
            N,
            network::ideal(),
            ring_with_wildcard,
            &plans,
        )
        .unwrap();
        assert!(!report.passed());
        assert!(matches!(
            report.outcomes[0].verdict,
            ChaosVerdict::RunFailed { .. }
        ));
        assert_eq!(report.outcomes[0].verdict.label(), "run-failed");
    }

    #[test]
    fn first_diff_pinpoints_the_line() {
        assert_eq!(first_diff("a\nb\nc", "a\nx\nc"), "line 2: \"b\" vs \"x\"");
        assert_eq!(first_diff("a", "a\nb"), "length: 1 vs 2 lines");
    }
}
