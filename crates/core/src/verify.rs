//! Verification utilities for the §5.2 correctness experiments.
//!
//! The paper links both the original application and the generated
//! benchmark against mpiP and checks that per-routine event counts and
//! volumes match. Where Table 1 substitutes a collective (Allgather →
//! REDUCE+MULTICAST, …), the generated benchmark legitimately issues
//! *different* MPI routines; [`expected_profile`] rewrites the original's
//! profile through Table 1 so the comparison remains exact for counts and
//! approximate only where the paper's own mapping averages message sizes.

use mpisim::profile::{MpiP, RoutineStats};
use scalatrace::cursor::{events_for_rank, ConcreteOp};
use scalatrace::trace::Trace;
use std::collections::BTreeMap;

/// Reconstruct the original application's mpiP profile (per-routine counts
/// and volumes) from its trace, without re-running the application.
///
/// The trace records every MPI event losslessly, so replaying each rank's
/// concrete operation stream yields exactly the aggregate profile a live
/// [`mpisim::profile::MpiP`] hook would have collected (call-site
/// breakdowns are not reconstructed — [`compare_profiles`] only consults
/// per-routine aggregates). This is what lets a campaign verify a job from
/// a cached trace.
pub fn profile_of_trace(trace: &Trace) -> MpiP {
    let mut raw: BTreeMap<&'static str, RoutineStats> = BTreeMap::new();
    let mut add = |name: &'static str, bytes: u64| {
        let e = raw.entry(name).or_default();
        e.calls += 1;
        e.bytes += bytes;
    };
    for rank in 0..trace.nranks {
        for ev in events_for_rank(trace, rank) {
            // Mirror `EventKind::mpi_name` / `EventKind::local_bytes`.
            match ev.op {
                ConcreteOp::Send {
                    bytes, blocking, ..
                } => add(if blocking { "MPI_Send" } else { "MPI_Isend" }, bytes),
                ConcreteOp::Recv {
                    bytes, blocking, ..
                } => add(if blocking { "MPI_Recv" } else { "MPI_Irecv" }, bytes),
                ConcreteOp::Wait { count } => add(
                    if count == 1 {
                        "MPI_Wait"
                    } else {
                        "MPI_Waitall"
                    },
                    0,
                ),
                ConcreteOp::Coll { kind, bytes, .. } => add(kind.mpi_name(), bytes),
                ConcreteOp::CommSplit { .. } => add("MPI_Comm_split", 0),
            }
        }
    }
    let mut p = MpiP::new();
    p.absorb_raw(raw);
    p
}

/// Rewrite an original-application profile into the profile the generated
/// benchmark is expected to produce (Table 1 plus the Finalize→barrier
/// substitution).
pub fn expected_profile(original: &MpiP, nranks: usize) -> MpiP {
    let mut out: BTreeMap<&'static str, RoutineStats> = BTreeMap::new();
    let mut add = |name: &'static str, calls: u64, bytes: u64| {
        let e = out.entry(name).or_default();
        e.calls += calls;
        e.bytes += bytes;
    };
    for (name, s) in original.routines() {
        match name {
            "MPI_Gather" | "MPI_Gatherv" => add("MPI_Reduce", s.calls, s.bytes),
            "MPI_Scatter" | "MPI_Scatterv" => add("MPI_Bcast", s.calls, s.bytes),
            "MPI_Allgather" | "MPI_Allgatherv" => {
                add("MPI_Reduce", s.calls, s.bytes);
                add("MPI_Bcast", s.calls, s.bytes);
            }
            "MPI_Alltoallv" => add("MPI_Alltoall", s.calls, s.bytes),
            "MPI_Reduce_scatter" => {
                // n many-to-one REDUCEs of 1/n volume each
                add("MPI_Reduce", s.calls * nranks as u64, s.bytes);
            }
            "MPI_Finalize" => add("MPI_Barrier", s.calls, s.bytes),
            "MPI_Send" => add("MPI_Send", s.calls, s.bytes),
            "MPI_Isend" => add("MPI_Isend", s.calls, s.bytes),
            "MPI_Recv" => add("MPI_Recv", s.calls, s.bytes),
            "MPI_Irecv" => add("MPI_Irecv", s.calls, s.bytes),
            "MPI_Wait" => add("MPI_Wait", s.calls, s.bytes),
            "MPI_Waitall" => add("MPI_Waitall", s.calls, s.bytes),
            "MPI_Barrier" => add("MPI_Barrier", s.calls, s.bytes),
            "MPI_Bcast" => add("MPI_Bcast", s.calls, s.bytes),
            "MPI_Reduce" => add("MPI_Reduce", s.calls, s.bytes),
            "MPI_Allreduce" => add("MPI_Allreduce", s.calls, s.bytes),
            "MPI_Alltoall" => add("MPI_Alltoall", s.calls, s.bytes),
            "MPI_Comm_split" => add("MPI_Comm_split", s.calls, s.bytes),
            other => panic!("unmapped routine {other}"),
        }
    }
    let mut p = MpiP::new();
    // Feed the rewritten stats through MpiP's public surface.
    p.absorb_raw(out);
    p
}

/// Routines whose byte volumes are only preserved *on average* by Table 1
/// (the v-variants collapse per-rank sizes to their mean).
const AVERAGED: &[&str] = &["MPI_Alltoall", "MPI_Reduce", "MPI_Bcast"];

/// Compare the generated benchmark's profile against the Table-1 image of
/// the original's. Returns human-readable mismatches (empty = pass).
/// Counts must match exactly; bytes must match exactly except for routines
/// affected by size averaging, which get `tol` relative slack.
pub fn compare_profiles(expected: &MpiP, generated: &MpiP, tol: f64) -> Vec<String> {
    let mut errors = Vec::new();
    let names: std::collections::BTreeSet<&str> = expected
        .routines()
        .map(|(n, _)| n)
        .chain(generated.routines().map(|(n, _)| n))
        .collect();
    for name in names {
        let e = expected.get(name);
        let g = generated.get(name);
        if e.calls != g.calls {
            errors.push(format!(
                "{name}: call count {} (expected) vs {} (generated)",
                e.calls, g.calls
            ));
        }
        if e.bytes != g.bytes {
            let rel = (e.bytes as f64 - g.bytes as f64).abs() / (e.bytes.max(1) as f64);
            if !(AVERAGED.contains(&name) && rel <= tol) {
                errors.push(format!(
                    "{name}: bytes {} (expected) vs {} (generated, rel err {:.4})",
                    e.bytes, g.bytes, rel
                ));
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::hooks::{Event, EventKind, Hook};
    use mpisim::time::SimTime;
    use mpisim::types::{CallSite, CollKind};

    fn event(kind: EventKind) -> Event {
        Event {
            rank: 0,
            kind,
            callsite: CallSite {
                file: "x.rs",
                line: 1,
                column: 1,
            },
            stack_sig: 0,
            t_enter: SimTime::ZERO,
            t_exit: SimTime::ZERO,
        }
    }

    fn coll(kind: CollKind, bytes: u64) -> Event {
        event(EventKind::Coll {
            kind,
            root: None,
            bytes,
            comm: 0,
        })
    }

    #[test]
    fn allgather_maps_to_reduce_plus_bcast() {
        let mut orig = MpiP::new();
        orig.on_event(&coll(CollKind::Allgather, 100));
        let exp = expected_profile(&orig, 4);
        assert_eq!(exp.get("MPI_Reduce").calls, 1);
        assert_eq!(exp.get("MPI_Bcast").calls, 1);
        assert_eq!(exp.get("MPI_Allgather").calls, 0);
    }

    #[test]
    fn reduce_scatter_multiplies_calls() {
        let mut orig = MpiP::new();
        orig.on_event(&coll(CollKind::ReduceScatter, 4096));
        let exp = expected_profile(&orig, 8);
        assert_eq!(exp.get("MPI_Reduce").calls, 8);
        assert_eq!(exp.get("MPI_Reduce").bytes, 4096);
    }

    #[test]
    fn identity_routines_pass_through() {
        let mut orig = MpiP::new();
        orig.on_event(&event(EventKind::Send {
            to: 1,
            tag: 0,
            bytes: 77,
            comm: 0,
            blocking: false,
        }));
        orig.on_event(&coll(CollKind::Finalize, 0));
        let exp = expected_profile(&orig, 2);
        assert_eq!(
            exp.get("MPI_Isend"),
            RoutineStats {
                calls: 1,
                bytes: 77
            }
        );
        assert_eq!(exp.get("MPI_Barrier").calls, 1);
    }

    #[test]
    fn comparison_tolerates_averaging_only_where_allowed() {
        let mut a = MpiP::new();
        a.on_event(&coll(CollKind::Alltoall, 1000));
        let mut b = MpiP::new();
        b.on_event(&coll(CollKind::Alltoall, 995));
        // within 1% on an averaged routine: pass
        assert!(compare_profiles(&a, &b, 0.01).is_empty());
        // exact routine with byte mismatch: fail
        let mut c = MpiP::new();
        c.on_event(&event(EventKind::Send {
            to: 1,
            tag: 0,
            bytes: 1000,
            comm: 0,
            blocking: true,
        }));
        let mut d = MpiP::new();
        d.on_event(&event(EventKind::Send {
            to: 1,
            tag: 0,
            bytes: 999,
            comm: 0,
            blocking: true,
        }));
        assert_eq!(compare_profiles(&c, &d, 0.01).len(), 1);
    }

    #[test]
    fn trace_profile_matches_live_profile() {
        use miniapps::{registry, AppParams};
        use mpisim::network;
        use mpisim::world::World;

        let app = registry::lookup("ring").unwrap();
        let params = AppParams::quick();
        let ranks = 4;
        let traced =
            scalatrace::trace_app(ranks, network::ideal(), move |ctx| (app.run)(ctx, &params))
                .unwrap();
        let (_, hooks) = World::new(ranks)
            .network(network::ideal())
            .run_hooked(|_| MpiP::new(), move |ctx| (app.run)(ctx, &params))
            .unwrap();
        let live = MpiP::merge_all(hooks.iter());
        let from_trace = profile_of_trace(&traced.trace);
        assert_eq!(live.diff(&from_trace), Vec::<String>::new());
    }

    #[test]
    fn call_count_mismatch_is_always_an_error() {
        let mut a = MpiP::new();
        a.on_event(&coll(CollKind::Barrier, 0));
        a.on_event(&coll(CollKind::Barrier, 0));
        let mut b = MpiP::new();
        b.on_event(&coll(CollKind::Barrier, 0));
        assert_eq!(compare_profiles(&a, &b, 0.5).len(), 1);
    }
}
