//! Conversions from trace-side representations (rank sets, rank-relative
//! parameters) to DSL-side task sets and expressions.

use conceptual::ast::{Expr, TaskRun, TaskSet};
use scalatrace::params::{RankParam, ValParam};
use scalatrace::rankset::RankSet;
use std::collections::BTreeMap;

/// The canonical task-variable binder used in generated code.
pub const TASK_VAR: &str = "t";

/// Convert a rank set to the most readable task-set form.
pub fn taskset_of(ranks: &RankSet, nranks: usize, bind: bool) -> TaskSet {
    if ranks.len() == nranks {
        return TaskSet {
            var: bind.then(|| TASK_VAR.to_string()),
            sel: conceptual::ast::TaskSel::All,
        };
    }
    if ranks.len() == 1 && !bind {
        let r = ranks.first().expect("nonempty");
        return TaskSet::single(Expr::num(r as i64));
    }
    // The SUCH THAT form always names its variable in printed text, so the
    // binder is set regardless of `bind` (round-trip exactness).
    TaskSet::runs(runs_of(ranks), Some(TASK_VAR))
}

/// Convert a `RankSet` into DSL task runs.
pub fn runs_of(ranks: &RankSet) -> Vec<TaskRun> {
    ranks
        .runs()
        .iter()
        .map(|r| TaskRun {
            start: r.start,
            stride: r.stride,
            count: r.count,
        })
        .collect()
}

/// Express a rank-relative peer parameter as an expression over the task
/// binder. Callers must have grouped `PerRank` tables and piecewise forms
/// away beforehand (see [`p2p_groups`]).
pub fn expr_of_rank_param(p: &RankParam) -> Expr {
    match p {
        RankParam::Const(c) => Expr::num(*c as i64),
        RankParam::Offset(d) => offset_expr(*d),
        RankParam::OffsetMod { offset, modulus } => Expr::modulo(
            Expr::add(Expr::var(TASK_VAR), Expr::num(*offset)),
            Expr::num(*modulus as i64),
        ),
        RankParam::Xor(mask) => Expr::xor(Expr::var(TASK_VAR), Expr::num(*mask as i64)),
        RankParam::PerRank(_) => unreachable!("PerRank peers are grouped before emission"),
        RankParam::Piecewise(_) => unreachable!("piecewise peers are grouped before emission"),
    }
}

/// Express a value parameter (bytes, counts) as an expression over the
/// task binder. Callers must have grouped `PerRank`/piecewise forms away
/// beforehand (see [`p2p_groups`]).
pub fn expr_of_val_param(v: &ValParam) -> Expr {
    match v {
        ValParam::Const(c) => Expr::num(*c as i64),
        ValParam::Linear { base, slope } => {
            let prop = if *slope == 1 {
                Expr::var(TASK_VAR)
            } else {
                Expr::mul(Expr::num(*slope), Expr::var(TASK_VAR))
            };
            match base.cmp(&0) {
                std::cmp::Ordering::Equal => prop,
                std::cmp::Ordering::Greater => Expr::add(prop, Expr::num(*base)),
                std::cmp::Ordering::Less => Expr::sub(prop, Expr::num(-base)),
            }
        }
        ValParam::PerRank(_) => unreachable!("PerRank values are grouped before emission"),
        ValParam::Piecewise(_) => unreachable!("piecewise values are grouped before emission"),
    }
}

fn offset_expr(d: i64) -> Expr {
    match d.cmp(&0) {
        std::cmp::Ordering::Equal => Expr::var(TASK_VAR),
        std::cmp::Ordering::Greater => Expr::add(Expr::var(TASK_VAR), Expr::num(d)),
        std::cmp::Ordering::Less => Expr::sub(Expr::var(TASK_VAR), Expr::num(-d)),
    }
}

/// A group of ranks that share concrete point-to-point parameters.
pub struct P2pGroup {
    /// The ranks in the group.
    pub ranks: RankSet,
    /// Peer expression for the group (rank-relative or constant).
    pub peer: Option<Expr>,
    /// Message-size expression for the group (constant or rank-relative).
    pub bytes: Expr,
}

/// Sub-domains of `ranks` over which `peer` has a single closed form, with
/// that form's expression. One entry (and no set intersection) in the
/// common single-form case.
fn peer_segments(ranks: &RankSet, peer: Option<&RankParam>) -> Vec<(RankSet, Option<Expr>)> {
    match peer {
        None => vec![(ranks.clone(), None)],
        Some(RankParam::Piecewise(ps)) => {
            let covered: usize = ps.iter().map(|(s, _)| s.len()).sum();
            ps.iter()
                .map(|(s, f)| {
                    let dom = if covered == ranks.len() {
                        s.clone()
                    } else {
                        s.intersect(ranks)
                    };
                    (dom, Some(expr_of_rank_param(&f.into_param())))
                })
                .filter(|(s, _)| !s.is_empty())
                .collect()
        }
        Some(p) if p.is_compressed() => vec![(ranks.clone(), Some(expr_of_rank_param(p)))],
        Some(p) => {
            // dense escape hatch: one segment per distinct peer value
            let mut by_val: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for r in ranks.iter() {
                by_val.entry(p.eval(r)).or_default().push(r);
            }
            by_val
                .into_iter()
                .map(|(v, members)| (RankSet::from_ranks(members), Some(Expr::num(v as i64))))
                .collect()
        }
    }
}

/// Sub-domains of `ranks` over which `bytes` has a single expression.
fn bytes_segments(ranks: &RankSet, bytes: &ValParam) -> Vec<(RankSet, Expr)> {
    match bytes {
        ValParam::Piecewise(ps) => {
            let covered: usize = ps.iter().map(|(s, _)| s.len()).sum();
            ps.iter()
                .map(|(s, v)| {
                    let dom = if covered == ranks.len() {
                        s.clone()
                    } else {
                        s.intersect(ranks)
                    };
                    (dom, Expr::num(*v as i64))
                })
                .filter(|(s, _)| !s.is_empty())
                .collect()
        }
        v if v.is_compressed() => vec![(ranks.clone(), expr_of_val_param(v))],
        v => {
            let mut by_val: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
            for r in ranks.iter() {
                by_val.entry(v.eval(r)).or_default().push(r);
            }
            by_val
                .into_iter()
                .map(|(b, members)| (RankSet::from_ranks(members), Expr::num(b as i64)))
                .collect()
        }
    }
}

/// Split a point-to-point RSD's rank set into groups with uniform emitted
/// parameters: one coNCePTuaL clause per *piece*, never per rank. If both
/// the peer and the byte count have a single closed form, a single group
/// covering all ranks results; piecewise forms contribute one group per
/// piece (intersected run-wise when both parameters are piecewise), and
/// dense tables degrade into one group per distinct value combination —
/// the paper's size/readability trade-off for irregular patterns.
pub fn p2p_groups(ranks: &RankSet, peer: Option<&RankParam>, bytes: &ValParam) -> Vec<P2pGroup> {
    let peers = peer_segments(ranks, peer);
    let sizes = bytes_segments(ranks, bytes);
    if peers.len() == 1 {
        let (_, peer) = &peers[0];
        return sizes
            .into_iter()
            .map(|(dom, b)| P2pGroup {
                ranks: dom,
                peer: peer.clone(),
                bytes: b,
            })
            .collect();
    }
    if sizes.len() == 1 {
        let (_, b) = &sizes[0];
        return peers
            .into_iter()
            .map(|(dom, peer)| P2pGroup {
                ranks: dom,
                peer,
                bytes: b.clone(),
            })
            .collect();
    }
    let mut out = Vec::new();
    for (pdom, peer) in &peers {
        for (bdom, b) in &sizes {
            let dom = pdom.intersect(bdom);
            if !dom.is_empty() {
                out.push(P2pGroup {
                    ranks: dom,
                    peer: peer.clone(),
                    bytes: b.clone(),
                });
            }
        }
    }
    out
}

/// Representative byte count for a collective RSD: exact when uniform,
/// averaged otherwise (Table 1's "averaged message size" rule). The mean
/// is closed-form on the symbolic variants.
pub fn collective_bytes(bytes: &ValParam, ranks: &RankSet) -> (u64, bool) {
    match bytes {
        ValParam::Const(c) => (*c, false),
        other => (other.mean_over(ranks), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conceptual::printer;

    #[test]
    fn full_set_is_all_tasks() {
        let ts = taskset_of(&RankSet::all(8), 8, true);
        assert_eq!(printer::task_set(&ts), "ALL TASKS t");
        let ts = taskset_of(&RankSet::all(8), 8, false);
        assert_eq!(printer::task_set(&ts), "ALL TASKS");
    }

    #[test]
    fn single_rank_unbound_is_task_n() {
        let ts = taskset_of(&RankSet::single(3), 8, false);
        assert_eq!(printer::task_set(&ts), "TASK 3");
    }

    #[test]
    fn strided_subset_prints_such_that() {
        let ts = taskset_of(&RankSet::from_ranks([0, 3, 6, 9]), 16, true);
        assert_eq!(printer::task_set(&ts), "TASKS t SUCH THAT t IS IN {0-9:3}");
    }

    #[test]
    fn rank_param_expressions() {
        assert_eq!(
            printer::expr(&expr_of_rank_param(&RankParam::Const(5))),
            "5"
        );
        assert_eq!(
            printer::expr(&expr_of_rank_param(&RankParam::Offset(1))),
            "t + 1"
        );
        assert_eq!(
            printer::expr(&expr_of_rank_param(&RankParam::Offset(-2))),
            "t - 2"
        );
        assert_eq!(
            printer::expr(&expr_of_rank_param(&RankParam::Offset(0))),
            "t"
        );
        assert_eq!(
            printer::expr(&expr_of_rank_param(&RankParam::OffsetMod {
                offset: 1,
                modulus: 8
            })),
            "(t + 1) MOD 8"
        );
    }

    #[test]
    fn xor_param_expression() {
        assert_eq!(
            printer::expr(&expr_of_rank_param(&RankParam::Xor(4))),
            "t XOR 4"
        );
    }

    #[test]
    fn compressed_params_yield_one_group() {
        let groups = p2p_groups(
            &RankSet::all(8),
            Some(&RankParam::Offset(1)),
            &ValParam::Const(1024),
        );
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].bytes, Expr::num(1024));
        assert_eq!(groups[0].ranks.len(), 8);
    }

    #[test]
    fn per_rank_bytes_split_into_groups() {
        let table: BTreeMap<usize, u64> = [(0, 100), (1, 200), (2, 100)].into();
        let groups = p2p_groups(
            &RankSet::from_ranks([0, 1, 2]),
            Some(&RankParam::Const(3)),
            &ValParam::PerRank(table),
        );
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].bytes, Expr::num(100));
        assert_eq!(groups[0].ranks.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(groups[1].bytes, Expr::num(200));
    }

    #[test]
    fn per_rank_peers_split_into_groups() {
        let table: BTreeMap<usize, usize> = [(0, 5), (1, 5), (2, 6)].into();
        let groups = p2p_groups(
            &RankSet::from_ranks([0, 1, 2]),
            Some(&RankParam::PerRank(table)),
            &ValParam::Const(64),
        );
        assert_eq!(groups.len(), 2);
        assert_eq!(printer::expr(groups[0].peer.as_ref().unwrap()), "5");
        assert_eq!(printer::expr(groups[1].peer.as_ref().unwrap()), "6");
    }

    #[test]
    fn collective_bytes_averaging() {
        let (b, avg) = collective_bytes(&ValParam::Const(512), &RankSet::all(4));
        assert_eq!((b, avg), (512, false));
        let table: BTreeMap<usize, u64> = [(0, 100), (1, 200), (2, 300), (3, 400)].into();
        let (b, avg) = collective_bytes(&ValParam::PerRank(table), &RankSet::all(4));
        assert_eq!((b, avg), (250, true));
    }
}
