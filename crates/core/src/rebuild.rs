//! Rebuilding a compressed global trace from transformed per-rank event
//! streams.
//!
//! Algorithms 1 and 2 traverse per-rank event streams and emit a new trace.
//! The paper appends RSDs to a single output queue and "compress\[es\] T_out"
//! after every append (§4.3), which guarantees that *a collective operation
//! corresponds to only one RSD in the output trace* even when the
//! surrounding per-rank control flow diverges (corner vs. interior ranks of
//! a wavefront, say). [`SegmentedRebuilder`] realises that queue with an
//! extra compression opportunity the flat queue lacks: between collectives,
//! per-rank events accumulate in per-rank buffers (tail-compressed into
//! loops as ScalaTrace does intra-node); when a collective completes, the
//! participating buffers are structurally merged across ranks (the
//! inter-node merge) and flushed to the global queue ahead of the single
//! collective RSD, and the global queue is tail-compressed so identical
//! epochs fold into loops.

use mpisim::types::Src;
use scalatrace::compress::{append_compressed, DEFAULT_MAX_WINDOW};
use scalatrace::cursor::{ConcreteEvent, ConcreteOp};
use scalatrace::merge::{merge_rsds, merge_sequences};
use scalatrace::params::{CommParam, RankParam, SrcParam, ValParam};
use scalatrace::rankset::RankSet;
use scalatrace::timestats::TimeStats;
use scalatrace::trace::{CommTable, OpTemplate, Rsd, Trace, TraceNode};

/// Window for the global output queue: must span one "epoch" (the merged
/// inter-collective segment plus the collective) for iteration structure to
/// re-fold. Segments are rank-class-sized after merging, so a generous
/// constant suffices.
const GLOBAL_WINDOW: usize = 256;

/// Convert a concrete event back into a single-rank op template.
fn template_of(op: &ConcreteOp) -> OpTemplate {
    match op {
        ConcreteOp::Send {
            to,
            tag,
            bytes,
            comm,
            blocking,
        } => OpTemplate::Send {
            to: RankParam::Const(*to),
            tag: *tag,
            bytes: ValParam::Const(*bytes),
            comm: CommParam::Const(*comm),
            blocking: *blocking,
        },
        ConcreteOp::Recv {
            from,
            tag,
            bytes,
            comm,
            blocking,
        } => OpTemplate::Recv {
            from: match from {
                Src::Any => SrcParam::Any,
                Src::Rank(r) => SrcParam::Rank(RankParam::Const(*r)),
            },
            tag: *tag,
            bytes: ValParam::Const(*bytes),
            comm: CommParam::Const(*comm),
            blocking: *blocking,
        },
        ConcreteOp::Wait { count } => OpTemplate::Wait {
            count: ValParam::Const(*count),
        },
        ConcreteOp::Coll {
            kind,
            root,
            bytes,
            comm,
        } => OpTemplate::Coll {
            kind: *kind,
            root: root.map(RankParam::Const),
            bytes: ValParam::Const(*bytes),
            comm: CommParam::Const(*comm),
        },
        ConcreteOp::CommSplit { parent, result } => OpTemplate::CommSplit {
            parent: *parent,
            result: *result,
        },
    }
}

fn rsd_of(rank: usize, ev: &ConcreteEvent) -> Rsd {
    Rsd {
        ranks: RankSet::single(rank),
        sig: ev.sig,
        op: template_of(&ev.op),
        compute: TimeStats::of(ev.compute),
    }
}

/// The paper's output queue, with per-rank buffering and cross-rank merging
/// between collectives.
pub struct SegmentedRebuilder {
    nranks: usize,
    bufs: Vec<Vec<TraceNode>>,
    out: Vec<TraceNode>,
}

impl SegmentedRebuilder {
    /// An empty rebuilder for a world of `nranks` ranks.
    pub fn new(nranks: usize) -> SegmentedRebuilder {
        SegmentedRebuilder {
            nranks,
            bufs: vec![Vec::new(); nranks],
            out: Vec::new(),
        }
    }

    /// Append a non-collective event for one rank.
    pub fn rank_event(&mut self, rank: usize, ev: &ConcreteEvent) {
        append_compressed(
            &mut self.bufs[rank],
            TraceNode::Event(rsd_of(rank, ev)),
            DEFAULT_MAX_WINDOW,
        );
    }

    /// Append one completed collective: `events` holds every participant's
    /// event (the same logical operation). Participant buffers are merged
    /// and flushed first, then the collective is emitted as a single RSD —
    /// or, for `MPI_Comm_split`, one RSD per result group.
    pub fn collective(&mut self, events: &[(usize, ConcreteEvent)]) {
        assert!(!events.is_empty());
        let mut members: Vec<usize> = events.iter().map(|&(r, _)| r).collect();
        members.sort_unstable();
        self.flush_merged(&members);

        if let ConcreteOp::CommSplit { .. } = events[0].1.op {
            // One RSD per result communicator, in ascending result order.
            let mut by_result: std::collections::BTreeMap<u32, Vec<&(usize, ConcreteEvent)>> =
                std::collections::BTreeMap::new();
            for e in events {
                let ConcreteOp::CommSplit { result, .. } = e.1.op else {
                    panic!("mixed split/non-split collective completion")
                };
                by_result.entry(result).or_default().push(e);
            }
            for (_, group) in by_result {
                self.emit_merged_rsd(&group.into_iter().cloned().collect::<Vec<_>>());
            }
        } else {
            self.emit_merged_rsd(events);
        }
    }

    fn emit_merged_rsd(&mut self, events: &[(usize, ConcreteEvent)]) {
        let mut merged: Option<Rsd> = None;
        for (rank, ev) in events {
            let rsd = rsd_of(*rank, ev);
            merged = Some(match merged {
                None => rsd,
                Some(acc) => merge_rsds(acc, rsd, self.nranks),
            });
        }
        append_compressed(
            &mut self.out,
            TraceNode::Event(merged.expect("nonempty")),
            GLOBAL_WINDOW,
        );
    }

    /// Merge the listed ranks' buffers structurally and flush them to the
    /// global queue.
    fn flush_merged(&mut self, members: &[usize]) {
        let seqs: Vec<Vec<TraceNode>> = members
            .iter()
            .map(|&m| std::mem::take(&mut self.bufs[m]))
            .filter(|s| !s.is_empty())
            .collect();
        if seqs.is_empty() {
            return;
        }
        for node in merge_sequences(seqs, self.nranks) {
            append_compressed(&mut self.out, node, GLOBAL_WINDOW);
        }
    }

    /// Flush all remaining buffers and produce the trace.
    pub fn finish(mut self, comms: CommTable) -> Trace {
        let all: Vec<usize> = (0..self.nranks).collect();
        self.flush_merged(&all);
        Trace {
            nranks: self.nranks,
            nodes: self.out,
            comms,
        }
    }
}

/// Rebuild from complete per-rank streams plus an emission log describing
/// which events were collective completions (used by Algorithm 2, which
/// patches receive events *after* emitting them and therefore cannot stream
/// into the rebuilder directly).
pub enum Emission {
    /// `streams[rank][idx]` is an ordinary event.
    Rank {
        /// Which rank's stream.
        rank: usize,
        /// Index within that stream.
        idx: usize,
    },
    /// One collective completion over `(rank, idx)` participants.
    Collective(Vec<(usize, usize)>),
}

/// Rebuild a trace from complete per-rank streams and an emission log.
pub fn rebuild_from_log(
    streams: &[Vec<ConcreteEvent>],
    log: &[Emission],
    nranks: usize,
    comms: CommTable,
) -> Trace {
    let mut rb = SegmentedRebuilder::new(nranks);
    for entry in log {
        match entry {
            Emission::Rank { rank, idx } => rb.rank_event(*rank, &streams[*rank][*idx]),
            Emission::Collective(parts) => {
                let events: Vec<(usize, ConcreteEvent)> = parts
                    .iter()
                    .map(|&(r, i)| (r, streams[r][i].clone()))
                    .collect();
                rb.collective(&events);
            }
        }
    }
    rb.finish(comms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::time::SimDuration;
    use mpisim::types::CollKind;
    use scalatrace::cursor::events_for_rank;

    fn send_ev(to: usize) -> ConcreteEvent {
        ConcreteEvent {
            op: ConcreteOp::Send {
                to,
                tag: 0,
                bytes: 512,
                comm: 0,
                blocking: true,
            },
            sig: 42,
            compute: SimDuration::from_usecs(10),
        }
    }

    fn barrier_ev() -> ConcreteEvent {
        ConcreteEvent {
            op: ConcreteOp::Coll {
                kind: CollKind::Barrier,
                root: None,
                bytes: 0,
                comm: 0,
            },
            sig: 7,
            compute: SimDuration::ZERO,
        }
    }

    #[test]
    fn per_rank_streams_merge_and_fold() {
        let n = 4;
        let mut rb = SegmentedRebuilder::new(n);
        for _ in 0..100 {
            for r in 0..n {
                rb.rank_event(r, &send_ev((r + 1) % n));
            }
        }
        let trace = rb.finish(CommTable::world(n));
        assert!(trace.node_count() <= 3, "{trace}");
        assert_eq!(trace.concrete_event_count(), 400);
        for r in 0..n {
            assert_eq!(events_for_rank(&trace, r).len(), 100);
        }
    }

    #[test]
    fn collectives_are_single_full_rsds_even_with_divergent_ranks() {
        // rank 0 sends twice per epoch, others once: divergent structure.
        let n = 3;
        let mut rb = SegmentedRebuilder::new(n);
        for _ in 0..10 {
            rb.rank_event(0, &send_ev(1));
            rb.rank_event(0, &send_ev(2));
            rb.rank_event(1, &send_ev(0));
            rb.rank_event(2, &send_ev(0));
            let parts: Vec<(usize, ConcreteEvent)> = (0..n).map(|r| (r, barrier_ev())).collect();
            rb.collective(&parts);
        }
        let trace = rb.finish(CommTable::world(n));
        // every barrier RSD covers all ranks
        fn check(nodes: &[TraceNode]) {
            for nd in nodes {
                match nd {
                    TraceNode::Event(r) => {
                        if let OpTemplate::Coll { .. } = r.op {
                            assert_eq!(r.ranks.len(), 3, "partial collective RSD");
                        }
                    }
                    TraceNode::Loop(p) => check(&p.body),
                }
            }
        }
        check(&trace.nodes);
        // and the epochs fold into a loop
        assert!(trace.node_count() < 20, "{trace}");
        assert_eq!(
            trace.concrete_event_count(),
            10 * (4 + 3) // 4 sends + 3 barrier participants per epoch
        );
    }

    #[test]
    fn emission_log_rebuild_matches_direct() {
        let n = 2;
        let streams: Vec<Vec<ConcreteEvent>> = vec![
            vec![send_ev(1), barrier_ev(), send_ev(1)],
            vec![send_ev(0), barrier_ev(), send_ev(0)],
        ];
        let log = vec![
            Emission::Rank { rank: 0, idx: 0 },
            Emission::Rank { rank: 1, idx: 0 },
            Emission::Collective(vec![(0, 1), (1, 1)]),
            Emission::Rank { rank: 0, idx: 2 },
            Emission::Rank { rank: 1, idx: 2 },
        ];
        let trace = rebuild_from_log(&streams, &log, n, CommTable::world(n));
        assert_eq!(trace.concrete_event_count(), 6);
        for (r, s) in streams.iter().enumerate() {
            let got = events_for_rank(&trace, r);
            assert_eq!(got.len(), s.len());
            for (g, e) in got.iter().zip(s) {
                assert_eq!(g.op, e.op);
            }
        }
    }
}
