//! **Algorithm 1**: aligning per-node collective RSDs.
//!
//! MPI allows the same logical collective to be invoked from different
//! source lines on different ranks (the paper's Figure 3: ranks 0 and 1
//! call `MPI_Barrier` from different lines of an `if`/`else`). ScalaTrace
//! distinguishes call sites by stack signature, so such a collective
//! appears as several RSDs, each covering only a subset of the
//! communicator. Before code generation these must be combined into a
//! single RSD whose participants are statically identifiable (§4.3).
//!
//! The implementation follows the paper's traversal scheme: a per-rank
//! traversal context (our [`scalatrace::Cursor`]) walks each rank's event
//! stream; non-collective events are appended to the output; a rank
//! arriving at a collective *blocks* until every other participant of the
//! communicator has arrived at a matching collective, at which point one
//! logical collective — with a signature unified across the contributing
//! call sites — is emitted for all participants and the blocked ranks
//! resume. `MPI_Finalize` is treated as a collective over the world so the
//! traversal only finishes when every rank is exhausted. The output queue
//! is re-compressed exactly as ScalaTrace compresses traces
//! ([`crate::rebuild`]). Complexity is O(p·e) in ranks × events, guarded
//! by the O(r) pre-check [`scalatrace::Trace::has_unaligned_collectives`].

use crate::rebuild::SegmentedRebuilder;
use crate::GenError;
use mpisim::types::{CollKind, Fnv1a};
use scalatrace::cursor::{ConcreteEvent, ConcreteOp, Cursor};
use scalatrace::trace::Trace;

/// The collective a rank is currently blocked on.
struct BlockedColl {
    event: ConcreteEvent,
    kind: CollKind,
    comm: u32,
}

fn collective_of(ev: &ConcreteEvent) -> Option<(CollKind, u32)> {
    match &ev.op {
        ConcreteOp::Coll { kind, comm, .. } => Some((*kind, *comm)),
        ConcreteOp::CommSplit { parent, .. } => Some((CollKind::CommSplit, *parent)),
        _ => None,
    }
}

/// Run Algorithm 1, producing a trace in which every collective operation
/// corresponds to exactly one RSD covering its full communicator.
pub fn align_collectives(trace: &Trace) -> Result<Trace, GenError> {
    let n = trace.nranks;
    // Per-rank traversal fan-out on the shared pool: each rank's compressed
    // stream expands independently. The alignment loop walks the expanded
    // streams by index in exactly the order the incremental cursors would
    // have produced, so the result is identical for every thread count.
    let streams: Vec<Vec<ConcreteEvent>> =
        par::par_map_indexed(par::threads(), n, |r| Cursor::new(trace, r).collect_all());
    let mut pos = vec![0usize; n];
    let mut rb = SegmentedRebuilder::new(n);
    let mut blocked: Vec<Option<BlockedColl>> = (0..n).map(|_| None).collect();
    let mut done = vec![false; n];

    loop {
        let mut progressed = false;

        // Advance every unblocked rank to its next collective (or the end).
        for r in 0..n {
            if done[r] || blocked[r].is_some() {
                continue;
            }
            loop {
                match streams[r].get(pos[r]).cloned() {
                    None => {
                        done[r] = true;
                        break;
                    }
                    Some(ev) => {
                        pos[r] += 1;
                        if let Some((kind, comm)) = collective_of(&ev) {
                            blocked[r] = Some(BlockedColl {
                                event: ev,
                                kind,
                                comm,
                            });
                            progressed = true;
                            break;
                        }
                        rb.rank_event(r, &ev);
                        progressed = true;
                    }
                }
            }
        }

        // Complete every collective whose full communicator has arrived.
        let comm_ids: Vec<u32> = trace.comms.ids().collect();
        for comm in comm_ids {
            let members = trace.comms.members(comm).to_vec();
            if members.is_empty() {
                continue;
            }
            let all_here = members
                .iter()
                .all(|&m| blocked[m].as_ref().is_some_and(|b| b.comm == comm));
            if !all_here {
                continue;
            }
            // Kinds must agree — mismatched kinds on one communicator means
            // the application's collective usage is invalid.
            let kind0 = blocked[members[0]].as_ref().unwrap().kind;
            if let Some(&bad) = members
                .iter()
                .find(|&&m| blocked[m].as_ref().unwrap().kind != kind0)
            {
                let found = blocked[bad].as_ref().unwrap().kind;
                return Err(GenError::UnalignableCollective(format!(
                    "communicator {comm}: rank {} entered {} while rank {bad} entered {found}",
                    members[0], kind0
                )));
            }
            // Unified signature across the contributing call sites.
            let mut sigs: Vec<u64> = members
                .iter()
                .map(|&m| blocked[m].as_ref().unwrap().event.sig)
                .collect();
            sigs.sort_unstable();
            sigs.dedup();
            let mut h = Fnv1a::new();
            for s in &sigs {
                h.write_u64(*s);
            }
            let unified_sig = h.finish();
            let events: Vec<(usize, ConcreteEvent)> = members
                .iter()
                .map(|&m| {
                    let b = blocked[m].take().unwrap();
                    let mut ev = b.event;
                    ev.sig = unified_sig;
                    (m, ev)
                })
                .collect();
            rb.collective(&events);
            progressed = true;
        }

        if done.iter().all(|&d| d) && blocked.iter().all(Option::is_none) {
            break;
        }
        if !progressed {
            let stuck: Vec<String> = blocked
                .iter()
                .enumerate()
                .filter_map(|(r, b)| {
                    b.as_ref()
                        .map(|b| format!("rank {r} at {} on comm {}", b.kind, b.comm))
                })
                .collect();
            return Err(GenError::UnalignableCollective(format!(
                "no progress aligning collectives; blocked: [{}]",
                stuck.join(", ")
            )));
        }
    }

    Ok(rb.finish(trace.comms.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::time::SimDuration;
    use scalatrace::trace_app;

    /// The paper's Figure 3: ranks call MPI_Barrier from *different source
    /// lines* depending on their rank.
    fn figure3_trace(n: usize) -> Trace {
        trace_app(n, network::ideal(), |ctx| {
            let w = ctx.world();
            for _ in 0..10 {
                ctx.compute(SimDuration::from_usecs(50));
                // identical branches on purpose: distinct *call sites*
                #[allow(clippy::if_same_then_else, clippy::branches_sharing_code)]
                if ctx.rank() % 2 == 0 {
                    ctx.barrier(&w); // call site A
                } else {
                    ctx.barrier(&w); // call site B
                }
            }
            ctx.finalize();
        })
        .unwrap()
        .trace
    }

    #[test]
    fn figure3_collectives_are_split_before_and_merged_after() {
        let trace = figure3_trace(8);
        assert!(
            trace.has_unaligned_collectives(),
            "two call sites must produce partial-communicator RSDs:\n{trace}"
        );
        let aligned = align_collectives(&trace).expect("aligns");
        assert!(
            !aligned.has_unaligned_collectives(),
            "all collectives must cover their communicator:\n{aligned}"
        );
        // semantics preserved: same per-rank op streams (modulo signatures)
        scalatrace::cursor::semantically_equal(&trace, &aligned).expect("semantics preserved");
    }

    #[test]
    fn aligned_trace_is_no_larger_than_exploded_input() {
        let trace = figure3_trace(8);
        let aligned = align_collectives(&trace).expect("aligns");
        // 10 iterations × (compute+barrier) + finalize → compact loop
        assert!(
            aligned.node_count() <= trace.node_count() + 4,
            "aligned {} vs input {}:\n{aligned}",
            aligned.node_count(),
            trace.node_count()
        );
    }

    #[test]
    fn already_aligned_trace_passes_through() {
        let trace = trace_app(4, network::ideal(), |ctx| {
            let w = ctx.world();
            ctx.barrier(&w);
            ctx.finalize();
        })
        .unwrap()
        .trace;
        assert!(!trace.has_unaligned_collectives());
        let aligned = align_collectives(&trace).expect("aligns");
        scalatrace::cursor::semantically_equal(&trace, &aligned).expect("unchanged semantics");
    }

    #[test]
    fn subcommunicator_collectives_align() {
        let trace = trace_app(8, network::ideal(), |ctx| {
            let w = ctx.world();
            let row = ctx.comm_split(&w, (ctx.rank() / 4) as i64, ctx.rank() as i64);
            // different call sites per row-parity within each subcomm
            // (identical branches on purpose: distinct *call sites*)
            #[allow(clippy::if_same_then_else, clippy::branches_sharing_code)]
            if ctx.rank() % 2 == 0 {
                ctx.allreduce(64, &row);
            } else {
                ctx.allreduce(64, &row);
            }
            ctx.finalize();
        })
        .unwrap()
        .trace;
        assert!(trace.has_unaligned_collectives());
        let aligned = align_collectives(&trace).expect("aligns");
        assert!(!aligned.has_unaligned_collectives(), "{aligned}");
        scalatrace::cursor::semantically_equal(&trace, &aligned).expect("semantics preserved");
    }

    #[test]
    fn mismatched_collectives_are_rejected() {
        // rank 0 enters a barrier while rank 1 enters an allreduce at the
        // same sequence point: invalid MPI. Construct the trace manually
        // (the runtime would abort such a program).
        use scalatrace::params::ValParam;
        use scalatrace::rankset::RankSet;
        use scalatrace::timestats::TimeStats;
        use scalatrace::trace::{OpTemplate, Rsd, TraceNode};
        let mut trace = Trace::new(2);
        let mk = |rank: usize, kind: CollKind, sig: u64| {
            TraceNode::Event(Rsd {
                ranks: RankSet::single(rank),
                sig,
                op: OpTemplate::Coll {
                    kind,
                    root: None,
                    bytes: ValParam::Const(0),
                    comm: scalatrace::params::CommParam::Const(0),
                },
                compute: TimeStats::new(),
            })
        };
        trace.nodes.push(mk(0, CollKind::Barrier, 1));
        trace.nodes.push(mk(1, CollKind::Allreduce, 2));
        let err = align_collectives(&trace).unwrap_err();
        assert!(matches!(err, GenError::UnalignableCollective(_)), "{err:?}");
    }
}
