#![warn(missing_docs)]
//! # benchgen — automatic generation of executable communication
//! specifications from parallel-application traces
//!
//! The paper's primary contribution: convert a compressed ScalaTrace-style
//! trace into an executable, readable coNCePTuaL program with identical
//! run-time behaviour. The pipeline ([`generate`]):
//!
//! 1. **O(r) pre-checks** — [`scalatrace::Trace::has_unaligned_collectives`]
//!    and [`scalatrace::Trace::has_wildcard_recv`] decide whether the O(p·e)
//!    algorithms need to run at all (§4.3/§4.4).
//! 2. **Algorithm 1** ([`align`]) — merge per-node collective RSDs from
//!    different call sites into single full-communicator RSDs.
//! 3. **Algorithm 2** ([`wildcard`]) — replace `MPI_ANY_SOURCE` with
//!    arbitrary-but-valid concrete sources; report potential deadlocks.
//! 4. **Code generation** ([`codegen`]) — the trace-traversal framework
//!    invokes a pluggable backend per RSD/PRSD; the coNCePTuaL backend maps
//!    point-to-point RSDs to SEND/RECEIVE, computation to COMPUTE, PRSDs to
//!    FOR loops, communicators to PARTITION groups in absolute ranks
//!    (§4.2), and collectives per Table 1 ([`collectives`]).
//!
//! ```
//! use mpisim::{network, time::SimDuration, types::{Src, TagSel}};
//!
//! let traced = scalatrace::trace_app(8, network::ideal(), |ctx| {
//!     let w = ctx.world();
//!     let right = (ctx.rank() + 1) % ctx.size();
//!     let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
//!     for _ in 0..100 {
//!         let r = ctx.irecv(Src::Rank(left), TagSel::Is(0), 1024, &w);
//!         let s = ctx.isend(right, 0, 1024, &w);
//!         ctx.compute(SimDuration::from_usecs(50));
//!         ctx.waitall(&[r, s]);
//!     }
//!     ctx.finalize();
//! }).unwrap();
//!
//! let generated = benchgen::generate(&traced.trace, &benchgen::GenOptions::default()).unwrap();
//! let text = conceptual::printer::print(&generated.program);
//! assert!(text.contains("FOR 100 REPETITIONS {"));
//!
//! // The generated benchmark is executable:
//! let outcome = conceptual::interp::run_program(&generated.program, 8,
//!                                               network::ideal()).unwrap();
//! assert_eq!(outcome.report.ranks, 8);
//! ```

pub mod align;
pub mod chaos;
pub mod codegen;
pub mod collectives;
pub mod rebuild;
pub mod taskset;
pub mod verify;
pub mod wildcard;

use conceptual::ast::Program;
use mpisim::time::SimDuration;
use scalatrace::trace::Trace;

pub use align::align_collectives;
pub use chaos::{differential_plans, ChaosOutcome, ChaosReport, ChaosVerdict};
pub use codegen::{program_of, CTextGenerator, CodeGenerator, ConceptualGenerator};
pub use wildcard::{resolve_wildcards, WildcardOutcome};

/// Generation options.
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// Run Algorithm 1 when the pre-check finds unaligned collectives.
    pub align_collectives: bool,
    /// Run Algorithm 2 when the pre-check finds wildcard receives.
    pub resolve_wildcards: bool,
    /// Suppress COMPUTE statements at or below this duration.
    pub compute_threshold: SimDuration,
    /// Emit a provenance comment before each generated statement group
    /// (routine name, call-site signature, rank set, event count).
    pub emit_comments: bool,
    /// Extra header comment lines for provenance.
    pub header: Vec<String>,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            align_collectives: true,
            resolve_wildcards: true,
            compute_threshold: SimDuration::ZERO,
            emit_comments: false,
            header: Vec::new(),
        }
    }
}

/// Generation failure.
#[derive(Clone, Debug)]
pub enum GenError {
    /// Algorithm 2's traversal cannot make progress: the original
    /// application has a potential deadlock (the paper's Figure 5). Each
    /// entry is `(rank, description of the blocking operation)`.
    PotentialDeadlock {
        /// `(rank, description of the blocking operation)` per stuck rank.
        blocked: Vec<(usize, String)>,
    },
    /// Algorithm 1 found collectives that cannot be combined (mismatched
    /// kinds on one communicator, or a stalled traversal).
    UnalignableCollective(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::PotentialDeadlock { blocked } => {
                writeln!(
                    f,
                    "potential deadlock in the traced application (wildcard resolution stalled):"
                )?;
                for (r, what) in blocked {
                    writeln!(f, "  rank {r}: {what}")?;
                }
                Ok(())
            }
            GenError::UnalignableCollective(what) => {
                write!(f, "cannot align collectives: {what}")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// The generated benchmark plus provenance about the transformations that
/// produced it.
#[derive(Clone, Debug)]
pub struct GeneratedBenchmark {
    /// The generated coNCePTuaL program.
    pub program: Program,
    /// Did Algorithm 1 run?
    pub aligned: bool,
    /// Wildcard occurrences resolved by Algorithm 2.
    pub wildcards_resolved: usize,
    /// Approximation notes (Table 1 substitutions, averaging).
    pub notes: Vec<String>,
}

/// Run the full trace-to-benchmark pipeline.
pub fn generate(trace: &Trace, opts: &GenOptions) -> Result<GeneratedBenchmark, GenError> {
    let mut work: Trace;
    let mut current = trace;

    // Algorithm 1, guarded by the O(r) pre-check.
    let mut aligned = false;
    if opts.align_collectives && current.has_unaligned_collectives() {
        work = align::align_collectives(current)?;
        aligned = true;
        current = &work;
    }

    // Algorithm 2, guarded by the O(r) pre-check.
    let mut wildcards_resolved = 0;
    if opts.resolve_wildcards && current.has_wildcard_recv() {
        let outcome = wildcard::resolve_wildcards(current)?;
        wildcards_resolved = outcome.resolved;
        work = outcome.trace;
        current = &work;
    }

    let (mut program, notes) =
        codegen::program_of_with(current, opts.compute_threshold, opts.emit_comments);

    program.header = build_header(trace, opts, aligned, wildcards_resolved, &notes);
    // Canonical form: the text grammar folds leading comment statements
    // into the header, so emit them there to keep parse(print(p)) == p.
    while matches!(
        program.stmts.first(),
        Some(conceptual::ast::Stmt::Comment(_))
    ) {
        if let conceptual::ast::Stmt::Comment(c) = program.stmts.remove(0) {
            program.header.push(c);
        }
    }
    Ok(GeneratedBenchmark {
        program,
        aligned,
        wildcards_resolved,
        notes,
    })
}

fn build_header(
    trace: &Trace,
    opts: &GenOptions,
    aligned: bool,
    wildcards_resolved: usize,
    notes: &[String],
) -> Vec<String> {
    let mut header = vec![
        "Auto-generated executable communication specification".to_string(),
        format!(
            "source trace: {} tasks, {} events ({} trace nodes)",
            trace.nranks,
            trace.concrete_event_count(),
            trace.node_count()
        ),
    ];
    if aligned {
        header.push("collectives aligned across call sites (Algorithm 1)".to_string());
    }
    if wildcards_resolved > 0 {
        header.push(format!(
            "{wildcards_resolved} wildcard receive(s) resolved deterministically (Algorithm 2)"
        ));
    }
    for n in notes {
        header.push(format!("approximation: {n}"));
    }
    header.extend(opts.header.iter().cloned());
    header
}
