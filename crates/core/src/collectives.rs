//! Table 1: mapping MPI collectives onto coNCePTuaL statements.
//!
//! coNCePTuaL is "not designed to exactly represent MPI features"
//! (paper §4.2); each unsupported MPI collective is replaced with one or
//! more statements representing a similar communication pattern (fan-in /
//! fan-out) and data volume:
//!
//! | MPI collective   | coNCePTuaL implementation                              |
//! |------------------|--------------------------------------------------------|
//! | Allgather        | REDUCE + MULTICAST                                     |
//! | Allgatherv       | REDUCE with averaged message size + MULTICAST          |
//! | Alltoallv        | MULTICAST (many-to-many) with averaged message size    |
//! | Gather           | REDUCE                                                 |
//! | Gatherv          | REDUCE with averaged message size                      |
//! | Reduce_scatter   | n many-to-one REDUCEs with different sizes and roots   |
//! | Scatter          | MULTICAST                                              |
//! | Scatterv         | MULTICAST with averaged message size                   |
//!
//! Barrier, Bcast, Reduce, Allreduce, and Alltoall have direct equivalents
//! (SYNCHRONIZE, single-root MULTICAST, REDUCE TO TASK / TO ALL TASKS,
//! many-to-many MULTICAST).

use crate::taskset::{collective_bytes, taskset_of};
use conceptual::ast::{Expr, ReduceTo, Stmt, TaskSet};
use mpisim::types::CollKind;
use scalatrace::params::{RankParam, ValParam};
use scalatrace::rankset::RankSet;

/// Outcome of mapping one collective RSD.
pub struct MappedCollective {
    /// The replacement statements, in order.
    pub stmts: Vec<Stmt>,
    /// Human-readable note when the mapping is approximate (size averaging,
    /// shape substitution) — recorded in the generated header.
    pub note: Option<String>,
}

/// Map one collective to statements. `ranks` must cover the communicator
/// (guaranteed after Algorithm 1). `group` names the communicator's task
/// group when it is a proper subset of the world.
pub fn map_collective(
    kind: CollKind,
    ranks: &RankSet,
    root: Option<&RankParam>,
    bytes: &ValParam,
    nranks: usize,
    group: Option<&str>,
) -> MappedCollective {
    let participants = || -> TaskSet {
        match group {
            Some(g) => TaskSet::group(g),
            None => taskset_of(ranks, nranks, false),
        }
    };
    let root_expr = || -> Expr {
        match root {
            Some(RankParam::Const(c)) => Expr::num(*c as i64),
            Some(other) => {
                // collective roots are rank-independent by MPI semantics;
                // a non-constant form can only arise from exotic traces.
                Expr::num(other.eval(ranks.first().unwrap_or(0)) as i64)
            }
            None => Expr::num(ranks.first().unwrap_or(0) as i64),
        }
    };
    let (vol, averaged) = collective_bytes(bytes, ranks);
    let avg_note = |what: &str| {
        averaged.then(|| format!("{what}: per-rank sizes averaged to {vol} bytes (Table 1)"))
    };

    match kind {
        CollKind::Barrier => MappedCollective {
            stmts: vec![Stmt::Sync {
                tasks: participants(),
            }],
            note: None,
        },
        CollKind::Bcast => MappedCollective {
            stmts: vec![Stmt::Multicast {
                root: Some(root_expr()),
                tasks: participants(),
                bytes: Expr::num(vol as i64),
            }],
            note: avg_note("MPI_Bcast"),
        },
        CollKind::Reduce => MappedCollective {
            stmts: vec![Stmt::Reduce {
                tasks: participants(),
                to: ReduceTo::Task(root_expr()),
                bytes: Expr::num(vol as i64),
            }],
            note: avg_note("MPI_Reduce"),
        },
        CollKind::Allreduce => MappedCollective {
            stmts: vec![Stmt::Reduce {
                tasks: participants(),
                to: ReduceTo::All,
                bytes: Expr::num(vol as i64),
            }],
            note: avg_note("MPI_Allreduce"),
        },
        CollKind::Gather | CollKind::Gatherv => MappedCollective {
            stmts: vec![Stmt::Reduce {
                tasks: participants(),
                to: ReduceTo::Task(root_expr()),
                bytes: Expr::num(vol as i64),
            }],
            note: if kind == CollKind::Gatherv {
                Some(format!(
                    "MPI_Gatherv -> REDUCE with averaged message size ({vol} bytes)"
                ))
            } else {
                Some("MPI_Gather -> REDUCE (Table 1)".to_string())
            },
        },
        CollKind::Scatter | CollKind::Scatterv => MappedCollective {
            stmts: vec![Stmt::Multicast {
                root: Some(root_expr()),
                tasks: participants(),
                bytes: Expr::num(vol as i64),
            }],
            note: if kind == CollKind::Scatterv {
                Some(format!(
                    "MPI_Scatterv -> MULTICAST with averaged message size ({vol} bytes)"
                ))
            } else {
                Some("MPI_Scatter -> MULTICAST (Table 1)".to_string())
            },
        },
        CollKind::Allgather | CollKind::Allgatherv => {
            let first = ranks.first().unwrap_or(0) as i64;
            MappedCollective {
                stmts: vec![
                    Stmt::Reduce {
                        tasks: participants(),
                        to: ReduceTo::Task(Expr::num(first)),
                        bytes: Expr::num(vol as i64),
                    },
                    Stmt::Multicast {
                        root: Some(Expr::num(first)),
                        tasks: participants(),
                        bytes: Expr::num(vol as i64),
                    },
                ],
                note: Some(if kind == CollKind::Allgatherv {
                    format!(
                        "MPI_Allgatherv -> REDUCE (averaged, {vol} bytes) + MULTICAST (Table 1)"
                    )
                } else {
                    "MPI_Allgather -> REDUCE + MULTICAST (Table 1)".to_string()
                }),
            }
        }
        CollKind::Alltoall => MappedCollective {
            stmts: vec![Stmt::Multicast {
                root: None,
                tasks: participants(),
                bytes: Expr::num(vol as i64),
            }],
            note: avg_note("MPI_Alltoall"),
        },
        CollKind::Alltoallv => MappedCollective {
            stmts: vec![Stmt::Multicast {
                root: None,
                tasks: participants(),
                bytes: Expr::num(vol as i64),
            }],
            note: Some(format!(
                "MPI_Alltoallv -> many-to-many MULTICAST with averaged message size ({vol} bytes, Table 1)"
            )),
        },
        CollKind::ReduceScatter => {
            // n many-to-one REDUCEs with different roots. With contiguous
            // participants the n statements compress into one FOR EACH loop.
            let n = ranks.len();
            let contiguous = ranks.run_count() == 1 && ranks.runs()[0].stride == 1;
            let per_root = vol / n.max(1) as u64;
            let stmts = if contiguous {
                let start = ranks.first().unwrap_or(0) as i64;
                vec![Stmt::ForEach {
                    var: "root".to_string(),
                    from: Expr::num(start),
                    to: Expr::num(start + n as i64 - 1),
                    body: vec![Stmt::Reduce {
                        tasks: participants(),
                        to: ReduceTo::Task(Expr::var("root")),
                        bytes: Expr::num(per_root as i64),
                    }],
                }]
            } else {
                ranks
                    .iter()
                    .map(|r| Stmt::Reduce {
                        tasks: participants(),
                        to: ReduceTo::Task(Expr::num(r as i64)),
                        bytes: Expr::num(per_root as i64),
                    })
                    .collect()
            };
            MappedCollective {
                stmts,
                note: Some(format!(
                    "MPI_Reduce_scatter -> {n} many-to-one REDUCEs ({per_root} bytes each, Table 1)"
                )),
            }
        }
        CollKind::Finalize => MappedCollective {
            stmts: vec![
                Stmt::Comment("MPI_Finalize".to_string()),
                Stmt::Sync {
                    tasks: participants(),
                },
            ],
            note: None,
        },
        CollKind::CommSplit => unreachable!("CommSplit handled by the generator directly"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conceptual::printer::print;
    use conceptual::Program;
    use std::collections::BTreeMap;

    fn render(m: MappedCollective) -> String {
        print(&Program::new(m.stmts))
    }

    #[test]
    fn barrier_is_synchronize() {
        let m = map_collective(
            CollKind::Barrier,
            &RankSet::all(8),
            None,
            &ValParam::Const(0),
            8,
            None,
        );
        assert_eq!(render(m).trim(), "ALL TASKS SYNCHRONIZE");
    }

    #[test]
    fn bcast_is_single_root_multicast() {
        let m = map_collective(
            CollKind::Bcast,
            &RankSet::all(4),
            Some(&RankParam::Const(2)),
            &ValParam::Const(4096),
            4,
            None,
        );
        assert_eq!(
            render(m).trim(),
            "TASK 2 MULTICASTS A 4096 BYTE MESSAGE TO ALL TASKS"
        );
    }

    #[test]
    fn allgather_is_reduce_plus_multicast() {
        let m = map_collective(
            CollKind::Allgather,
            &RankSet::all(4),
            None,
            &ValParam::Const(256),
            4,
            None,
        );
        let text = render(m);
        assert!(text.contains("REDUCE A 256 BYTE MESSAGE TO TASK 0"));
        assert!(text.contains("TASK 0 MULTICASTS A 256 BYTE MESSAGE TO ALL TASKS"));
    }

    #[test]
    fn gatherv_averages_sizes() {
        let table: BTreeMap<usize, u64> = [(0, 100), (1, 200), (2, 300), (3, 400)].into();
        let m = map_collective(
            CollKind::Gatherv,
            &RankSet::all(4),
            Some(&RankParam::Const(0)),
            &ValParam::PerRank(table),
            4,
            None,
        );
        assert!(m.note.as_deref().unwrap().contains("averaged"));
        assert!(render(m).contains("REDUCE A 250 BYTE MESSAGE TO TASK 0"));
    }

    #[test]
    fn alltoallv_is_many_to_many_multicast() {
        let m = map_collective(
            CollKind::Alltoallv,
            &RankSet::all(4),
            None,
            &ValParam::Const(1024),
            4,
            None,
        );
        assert_eq!(
            render(m).trim(),
            "ALL TASKS MULTICAST A 1024 BYTE MESSAGE TO EACH OTHER"
        );
    }

    #[test]
    fn reduce_scatter_unrolls_to_n_reduces() {
        let m = map_collective(
            CollKind::ReduceScatter,
            &RankSet::all(4),
            None,
            &ValParam::Const(4096),
            4,
            None,
        );
        let text = render(m);
        // contiguous participants compress into FOR EACH over roots
        assert!(text.contains("FOR EACH root IN {0, ..., 3}"));
        assert!(text.contains("REDUCE A 1024 BYTE MESSAGE TO TASK root"));
    }

    #[test]
    fn reduce_scatter_non_contiguous_unrolls() {
        // participants {0,2,4,6}: not a dense range, so no FOR EACH loop —
        // one REDUCE per root, each with 1/n of the volume
        let m = map_collective(
            CollKind::ReduceScatter,
            &RankSet::from_ranks([0, 2, 4, 6]),
            None,
            &ValParam::Const(4000),
            8,
            Some("g"),
        );
        assert_eq!(m.stmts.len(), 4);
        let text = render(m);
        for root in [0, 2, 4, 6] {
            assert!(
                text.contains(&format!("REDUCE A 1000 BYTE MESSAGE TO TASK {root}")),
                "{text}"
            );
        }
    }

    #[test]
    fn finalize_maps_to_barrier_with_provenance_comment() {
        let m = map_collective(
            CollKind::Finalize,
            &RankSet::all(4),
            None,
            &ValParam::Const(0),
            4,
            None,
        );
        let text = render(m);
        assert!(text.contains("# MPI_Finalize"));
        assert!(text.contains("ALL TASKS SYNCHRONIZE"));
    }

    #[test]
    fn scatterv_averages_and_notes() {
        let table: BTreeMap<usize, u64> = [(0, 10), (1, 20), (2, 30), (3, 40)].into();
        let m = map_collective(
            CollKind::Scatterv,
            &RankSet::all(4),
            Some(&RankParam::Const(1)),
            &ValParam::PerRank(table),
            4,
            None,
        );
        assert!(m.note.as_deref().unwrap().contains("averaged"));
        assert!(render(m).contains("TASK 1 MULTICASTS A 25 BYTE MESSAGE TO ALL TASKS"));
    }

    #[test]
    fn subset_collective_uses_group() {
        let m = map_collective(
            CollKind::Allreduce,
            &RankSet::from_ranks([0, 1, 2, 3]),
            None,
            &ValParam::Const(8),
            8,
            Some("g1"),
        );
        assert_eq!(
            render(m).trim(),
            "GROUP g1 REDUCE A 8 BYTE MESSAGE TO ALL TASKS"
        );
    }

    #[test]
    fn every_mapped_kind_produces_statements() {
        for &kind in CollKind::ALL {
            if matches!(kind, CollKind::CommSplit) {
                continue;
            }
            let m = map_collective(
                kind,
                &RankSet::all(4),
                kind.rooted().then_some(&RankParam::Const(0)),
                &ValParam::Const(64),
                4,
                None,
            );
            assert!(!m.stmts.is_empty(), "{kind} produced no statements");
        }
    }
}
