//! **Algorithm 2**: eliminating nondeterminism from wildcard receives, with
//! deadlock detection.
//!
//! `MPI_ANY_SOURCE` receives make a benchmark's performance depend on the
//! run-to-run message arrival order (§4.1/§4.4). The generator therefore
//! replaces each wildcard with an *arbitrary but valid* concrete source,
//! found by a virtual execution of the trace: per-rank traversal contexts
//! issue point-to-point events into per-receiver matching queues (the
//! paper's L1/L2 lists); when a send matches a wildcard receive, the
//! wildcard is resolved to that sender. Traversal for a rank stops at
//! (1) a blocking send/receive, (2) a collective, or (3) a wait whose
//! covered operations are not all matched, and resumes when matching
//! progress unblocks it.
//!
//! Because ScalaTrace does not record which sender actually matched a
//! wildcard, a trace of a *potentially deadlocking* application can make
//! this virtual execution hang (the paper's Figure 5). The scheduler
//! therefore detects global lack of progress and reports a potential
//! deadlock with per-rank diagnostics — a *sufficient* (not necessary)
//! detection, exactly as the paper describes. Unlike the paper we resolve
//! each wildcard *occurrence* (not just the first occurrence per RSD):
//! when all occurrences agree the output recompresses to the same size,
//! and when they differ the paper's first-match substitution could emit a
//! benchmark that deadlocks, which per-occurrence resolution avoids.

use crate::rebuild::{rebuild_from_log, Emission};
use crate::GenError;
use mpisim::comm::CommId;
use mpisim::types::{CollKind, Src, Tag, TagSel};
use scalatrace::cursor::{ConcreteEvent, ConcreteOp, Cursor};
use scalatrace::trace::Trace;
use std::collections::VecDeque;

/// Result of wildcard resolution.
#[derive(Debug)]
pub struct WildcardOutcome {
    /// The trace with every wildcard receive resolved.
    pub trace: Trace,
    /// Number of wildcard receive *occurrences* resolved.
    pub resolved: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Op {
    Send(usize),
    Recv(usize),
}

struct SendState {
    matched: bool,
}

struct RecvState {
    owner: usize,
    out_idx: usize,
    from: Src,
    tag: TagSel,
    comm: CommId,
    matched: Option<usize>,
}

enum Block {
    /// Blocking send awaiting a matching receive.
    Send(usize),
    /// Blocking receive awaiting a matching send.
    Recv(usize),
    /// Wait whose covered operations are not all matched.
    Wait {
        event: ConcreteEvent,
        covered: Vec<Op>,
    },
    /// Collective awaiting the rest of the communicator.
    Coll(ConcreteEvent, CollKind, CommId),
}

struct RankCtx {
    events: Vec<ConcreteEvent>,
    idx: usize,
    out: Vec<ConcreteEvent>,
    outstanding: VecDeque<Op>,
    blocked: Option<Block>,
}

/// Push an event to a rank's output stream and record it in the emission
/// log (the order the segmented rebuilder will replay).
fn emit(ranks: &mut [RankCtx], log: &mut Vec<Emission>, rank: usize, ev: ConcreteEvent) -> usize {
    ranks[rank].out.push(ev);
    let idx = ranks[rank].out.len() - 1;
    log.push(Emission::Rank { rank, idx });
    idx
}

struct Matcher {
    sends: Vec<SendState>,
    recvs: Vec<RecvState>,
    /// per destination: unmatched sends in issue order `(send_id, src, tag, comm)`
    pending_sends: Vec<VecDeque<(usize, usize, Tag, CommId)>>,
    /// per owner: unmatched posted receives in post order
    pending_recvs: Vec<VecDeque<usize>>,
    resolved: usize,
}

impl Matcher {
    fn issue_send(
        &mut self,
        src: usize,
        dst: usize,
        tag: Tag,
        comm: CommId,
        ranks: &mut [RankCtx],
    ) -> usize {
        let id = self.sends.len();
        self.sends.push(SendState { matched: false });
        // first posted receive at dst matching this send
        let pos = self.pending_recvs[dst].iter().position(|&rid| {
            let r = &self.recvs[rid];
            r.comm == comm && r.tag.matches(tag) && r.from.matches(src)
        });
        match pos {
            Some(p) => {
                let rid = self.pending_recvs[dst].remove(p).unwrap();
                self.complete_match(id, rid, src, ranks);
            }
            None => self.pending_sends[dst].push_back((id, src, tag, comm)),
        }
        id
    }

    fn issue_recv(
        &mut self,
        owner: usize,
        out_idx: usize,
        from: Src,
        tag: TagSel,
        comm: CommId,
        ranks: &mut [RankCtx],
    ) -> usize {
        let rid = self.recvs.len();
        self.recvs.push(RecvState {
            owner,
            out_idx,
            from,
            tag,
            comm,
            matched: None,
        });
        // earliest unmatched send to `owner` matching the selector
        let pos = self.pending_sends[owner]
            .iter()
            .position(|&(_, src, t, c)| c == comm && tag.matches(t) && from.matches(src));
        match pos {
            Some(p) => {
                let (sid, src, _, _) = self.pending_sends[owner].remove(p).unwrap();
                self.complete_match(sid, rid, src, ranks);
            }
            None => self.pending_recvs[owner].push_back(rid),
        }
        rid
    }

    /// Record a send↔receive match; resolve the wildcard if the receive
    /// used `MPI_ANY_SOURCE`.
    fn complete_match(&mut self, sid: usize, rid: usize, src: usize, ranks: &mut [RankCtx]) {
        self.sends[sid].matched = true;
        let r = &mut self.recvs[rid];
        r.matched = Some(src);
        if r.from.is_wildcard() {
            let ev = &mut ranks[r.owner].out[r.out_idx];
            if let ConcreteOp::Recv { from, .. } = &mut ev.op {
                *from = Src::Rank(src); // the paper's line 24: iter.peer = i
                self.resolved += 1;
            }
        }
    }

    fn op_matched(&self, op: Op) -> bool {
        match op {
            Op::Send(id) => self.sends[id].matched,
            Op::Recv(id) => self.recvs[id].matched.is_some(),
        }
    }
}

/// Run Algorithm 2 on `trace`; `Err` reports a potential deadlock in the
/// *original application* (the trace is a witness of unsafe MPI usage).
pub fn resolve_wildcards(trace: &Trace) -> Result<WildcardOutcome, GenError> {
    let n = trace.nranks;
    // Per-rank traversal fan-out: expanding each rank's compressed stream is
    // independent work, run on the shared pool. The matching loop below
    // stays sequential — resolution order is part of the algorithm's
    // contract — so the outcome is identical for every thread count.
    let streams = par::par_map_indexed(par::threads(), n, |r| Cursor::new(trace, r).collect_all());
    let mut ranks: Vec<RankCtx> = streams
        .into_iter()
        .map(|events| RankCtx {
            events,
            idx: 0,
            out: Vec::new(),
            outstanding: VecDeque::new(),
            blocked: None,
        })
        .collect();
    let mut log: Vec<Emission> = Vec::new();
    let mut m = Matcher {
        sends: Vec::new(),
        recvs: Vec::new(),
        pending_sends: (0..n).map(|_| VecDeque::new()).collect(),
        pending_recvs: (0..n).map(|_| VecDeque::new()).collect(),
        resolved: 0,
    };

    loop {
        let mut progressed = false;

        for r in 0..n {
            // Re-check blocks that matching progress may have released.
            let unblocked = match &ranks[r].blocked {
                None => true,
                Some(Block::Send(id)) => m.sends[*id].matched,
                Some(Block::Recv(id)) => m.recvs[*id].matched.is_some(),
                Some(Block::Wait { covered, .. }) => covered.iter().all(|&op| m.op_matched(op)),
                Some(Block::Coll(..)) => false, // released by the collective scan
            };
            if !unblocked {
                continue;
            }
            if let Some(Block::Wait { event, .. }) = ranks[r].blocked.take() {
                emit(&mut ranks, &mut log, r, event);
                progressed = true;
            } else if ranks[r].blocked.take().is_some() {
                progressed = true;
            }
            progressed |= advance(r, &mut ranks, &mut m, &mut log);
        }

        // Collective completion: every member of a communicator blocked at
        // a collective on it (kinds verified by Algorithm 1 / the runtime).
        for comm in trace.comms.ids().collect::<Vec<_>>() {
            let members = trace.comms.members(comm).to_vec();
            if members.is_empty() {
                continue;
            }
            let ready = members.iter().all(
                |&mem| matches!(&ranks[mem].blocked, Some(Block::Coll(_, _, c)) if *c == comm),
            );
            if !ready {
                continue;
            }
            let mut parts = Vec::with_capacity(members.len());
            for &mem in &members {
                let Some(Block::Coll(ev, _, _)) = ranks[mem].blocked.take() else {
                    unreachable!()
                };
                ranks[mem].out.push(ev);
                parts.push((mem, ranks[mem].out.len() - 1));
            }
            log.push(Emission::Collective(parts));
            progressed = true;
        }

        let all_done = ranks
            .iter()
            .all(|rc| rc.blocked.is_none() && rc.idx >= rc.events.len());
        if all_done {
            break;
        }
        if !progressed {
            let blocked: Vec<(usize, String)> = ranks
                .iter()
                .enumerate()
                .filter_map(|(r, rc)| {
                    rc.blocked.as_ref().map(|b| {
                        let what = match b {
                            Block::Send(_) => "blocking send with no matching receive".into(),
                            Block::Recv(id) => format!(
                                "blocking receive (from {}) with no matching send",
                                m.recvs[*id].from
                            ),
                            Block::Wait { covered, .. } => format!(
                                "wait on {} unmatched operation(s)",
                                covered.iter().filter(|&&op| !m.op_matched(op)).count()
                            ),
                            Block::Coll(_, kind, comm) => {
                                format!("{kind} on comm {comm} (participants missing)")
                            }
                        };
                        (r, what)
                    })
                })
                .collect();
            return Err(GenError::PotentialDeadlock { blocked });
        }
    }

    let streams: Vec<Vec<ConcreteEvent>> = ranks.into_iter().map(|rc| rc.out).collect();
    Ok(WildcardOutcome {
        trace: rebuild_from_log(&streams, &log, n, trace.comms.clone()),
        resolved: m.resolved,
    })
}

/// Advance one rank until it blocks or exhausts its stream. Returns whether
/// any event was processed.
fn advance(r: usize, ranks: &mut [RankCtx], m: &mut Matcher, log: &mut Vec<Emission>) -> bool {
    let mut progressed = false;
    loop {
        if ranks[r].idx >= ranks[r].events.len() {
            return progressed;
        }
        let ev = ranks[r].events[ranks[r].idx].clone();
        ranks[r].idx += 1;
        progressed = true;
        match &ev.op {
            ConcreteOp::Send {
                to,
                tag,
                comm,
                blocking,
                ..
            } => {
                let (to, tag, comm, blocking) = (*to, *tag, *comm, *blocking);
                emit(ranks, log, r, ev);
                let sid = m.issue_send(r, to, tag, comm, ranks);
                if blocking {
                    if !m.sends[sid].matched {
                        ranks[r].blocked = Some(Block::Send(sid));
                        return progressed;
                    }
                } else {
                    ranks[r].outstanding.push_back(Op::Send(sid));
                }
            }
            ConcreteOp::Recv {
                from,
                tag,
                comm,
                blocking,
                ..
            } => {
                let (from, tag, comm, blocking) = (*from, *tag, *comm, *blocking);
                let out_idx = emit(ranks, log, r, ev);
                let rid = m.issue_recv(r, out_idx, from, tag, comm, ranks);
                if blocking {
                    if m.recvs[rid].matched.is_none() {
                        ranks[r].blocked = Some(Block::Recv(rid));
                        return progressed;
                    }
                } else {
                    ranks[r].outstanding.push_back(Op::Recv(rid));
                }
            }
            ConcreteOp::Wait { count } => {
                let k = (*count as usize).min(ranks[r].outstanding.len());
                let covered: Vec<Op> = ranks[r].outstanding.drain(..k).collect();
                if covered.iter().all(|&op| m.op_matched(op)) {
                    emit(ranks, log, r, ev);
                } else {
                    ranks[r].blocked = Some(Block::Wait { event: ev, covered });
                    return progressed;
                }
            }
            ConcreteOp::Coll { kind, comm, .. } => {
                let (kind, comm) = (*kind, *comm);
                ranks[r].blocked = Some(Block::Coll(ev, kind, comm));
                return progressed;
            }
            ConcreteOp::CommSplit { parent, .. } => {
                let parent = *parent;
                ranks[r].blocked = Some(Block::Coll(ev, CollKind::CommSplit, parent));
                return progressed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::time::SimDuration;
    use scalatrace::cursor::events_for_rank;
    use scalatrace::params::{SrcParam, ValParam};
    use scalatrace::rankset::RankSet;
    use scalatrace::timestats::TimeStats;
    use scalatrace::trace::{OpTemplate, Rsd, TraceNode};
    use scalatrace::trace_app;

    #[test]
    fn lu_style_wildcards_resolve_to_neighbors() {
        // every rank > 0 sends to rank-1, receivers use ANY_SOURCE
        let trace = trace_app(4, network::ideal(), |ctx| {
            let w = ctx.world();
            for _ in 0..20 {
                if ctx.rank() + 1 < ctx.size() {
                    let _ = ctx.recv(Src::Any, TagSel::Is(0), 64, &w);
                }
                if ctx.rank() > 0 {
                    ctx.compute(SimDuration::from_usecs(10));
                    ctx.send(ctx.rank() - 1, 0, 64, &w);
                }
            }
            ctx.finalize();
        })
        .unwrap()
        .trace;
        assert!(trace.has_wildcard_recv());
        let out = resolve_wildcards(&trace).expect("resolves");
        assert_eq!(out.resolved, 3 * 20);
        assert!(!out.trace.has_wildcard_recv(), "{}", out.trace);
        // resolution is the only valid one: rank r receives from r+1
        for r in 0..3 {
            for ev in events_for_rank(&out.trace, r) {
                if let ConcreteOp::Recv { from, .. } = ev.op {
                    assert_eq!(from, Src::Rank(r + 1));
                }
            }
        }
    }

    #[test]
    fn uniform_resolution_keeps_trace_compressed() {
        let trace = trace_app(6, network::ideal(), |ctx| {
            let w = ctx.world();
            let right = (ctx.rank() + 1) % ctx.size();
            for _ in 0..100 {
                let h = ctx.irecv(Src::Any, TagSel::Is(1), 256, &w);
                ctx.send(right, 1, 256, &w);
                ctx.wait(h);
            }
            ctx.finalize();
        })
        .unwrap()
        .trace;
        let before = trace.node_count();
        let out = resolve_wildcards(&trace).expect("resolves");
        assert!(!out.trace.has_wildcard_recv());
        assert!(
            out.trace.node_count() <= before + 4,
            "resolved trace should stay compressed: {} vs {}\n{}",
            out.trace.node_count(),
            before,
            out.trace
        );
        assert_eq!(
            out.trace.concrete_event_count(),
            trace.concrete_event_count()
        );
    }

    #[test]
    fn figure5_deadlock_is_detected() {
        // the paper's Figure 5(b) trace:
        //   RSD1: {1, MPI_Recv, ANY_SOURCE}
        //   RSD2: {1, MPI_Recv, 0}
        //   RSD3: {0, MPI_Send, 1}
        //   RSD4: {2, MPI_Send, 1}
        // traversal order matches the wildcard with node 0's send, leaving
        // node 1's Recv(0) unmatched forever.
        let mut trace = Trace::new(3);
        let ev = |rank: usize, op: OpTemplate, sig: u64| {
            TraceNode::Event(Rsd {
                ranks: RankSet::single(rank),
                sig,
                op,
                compute: TimeStats::new(),
            })
        };
        trace.nodes.push(ev(
            1,
            OpTemplate::Recv {
                from: SrcParam::Any,
                tag: TagSel::Any,
                bytes: ValParam::Const(8),
                comm: scalatrace::params::CommParam::Const(0),
                blocking: true,
            },
            1,
        ));
        trace.nodes.push(ev(
            1,
            OpTemplate::Recv {
                from: SrcParam::Rank(scalatrace::params::RankParam::Const(0)),
                tag: TagSel::Any,
                bytes: ValParam::Const(8),
                comm: scalatrace::params::CommParam::Const(0),
                blocking: true,
            },
            2,
        ));
        trace.nodes.push(ev(
            0,
            OpTemplate::Send {
                to: scalatrace::params::RankParam::Const(1),
                tag: 0,
                bytes: ValParam::Const(8),
                comm: scalatrace::params::CommParam::Const(0),
                blocking: true,
            },
            3,
        ));
        trace.nodes.push(ev(
            2,
            OpTemplate::Send {
                to: scalatrace::params::RankParam::Const(1),
                tag: 0,
                bytes: ValParam::Const(8),
                comm: scalatrace::params::CommParam::Const(0),
                blocking: true,
            },
            4,
        ));
        let err = resolve_wildcards(&trace).unwrap_err();
        let GenError::PotentialDeadlock { blocked } = err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert!(
            blocked
                .iter()
                .any(|(r, what)| *r == 1 && what.contains("receive")),
            "{blocked:?}"
        );
    }

    #[test]
    fn collectives_gate_matching_order() {
        // rank 1 sends before and after a barrier; rank 0's wildcard recvs
        // are separated by the same barrier: first recv must resolve to the
        // pre-barrier send.
        let trace = trace_app(2, network::ideal(), |ctx| {
            let w = ctx.world();
            if ctx.rank() == 1 {
                ctx.send(0, 5, 16, &w);
            } else {
                let _ = ctx.recv(Src::Any, TagSel::Any, 16, &w);
            }
            ctx.barrier(&w);
            if ctx.rank() == 1 {
                ctx.send(0, 6, 16, &w);
            } else {
                let _ = ctx.recv(Src::Any, TagSel::Any, 16, &w);
            }
            ctx.finalize();
        })
        .unwrap()
        .trace;
        let out = resolve_wildcards(&trace).expect("resolves");
        assert_eq!(out.resolved, 2);
        assert!(!out.trace.has_wildcard_recv());
    }

    #[test]
    fn trace_without_wildcards_is_preserved() {
        let trace = trace_app(4, network::ideal(), |ctx| {
            let w = ctx.world();
            let right = (ctx.rank() + 1) % ctx.size();
            let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
            for _ in 0..10 {
                let h = ctx.irecv(Src::Rank(left), TagSel::Is(0), 64, &w);
                ctx.send(right, 0, 64, &w);
                ctx.wait(h);
            }
            ctx.finalize();
        })
        .unwrap()
        .trace;
        let out = resolve_wildcards(&trace).expect("resolves");
        assert_eq!(out.resolved, 0);
        scalatrace::cursor::semantically_equal(&trace, &out.trace).expect("unchanged semantics");
    }
}
