//! Ablation for DESIGN.md decision 2: the on-the-fly tail-compression
//! window. Larger windows discover longer loop bodies (better compression)
//! at higher per-append cost; this bench quantifies the trade-off, plus the
//! binary-tree inter-rank merge cost (decision 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::time::SimDuration;
use scalatrace::compress::append_compressed;
use scalatrace::merge::merge_sequences;
use scalatrace::params::{CommParam, RankParam, ValParam};
use scalatrace::rankset::RankSet;
use scalatrace::timestats::TimeStats;
use scalatrace::trace::{OpTemplate, Rsd, TraceNode};

fn event(sig: u64, rank: usize) -> TraceNode {
    TraceNode::Event(Rsd {
        ranks: RankSet::single(rank),
        sig,
        op: OpTemplate::Send {
            to: RankParam::Const((rank + 1) % 64),
            tag: 0,
            bytes: ValParam::Const(1024),
            comm: CommParam::Const(0),
            blocking: false,
        },
        compute: TimeStats::of(SimDuration::from_usecs(10)),
    })
}

/// Period-`period` event stream of `n` events.
fn stream(n: usize, period: u64) -> Vec<TraceNode> {
    (0..n).map(|i| event(i as u64 % period, 0)).collect()
}

fn bench_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("compression_window");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for window in [4usize, 8, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let mut seq = Vec::new();
                for ev in stream(5_000, 6) {
                    append_compressed(&mut seq, ev, w);
                }
                seq.len()
            })
        });
    }
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("inter_rank_merge");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for p in [8usize, 16, 32, 64] {
        // identical compressed per-rank sequences: the SPMD common case
        let seqs: Vec<Vec<TraceNode>> = (0..p)
            .map(|r| {
                let mut seq = Vec::new();
                for i in 0..200u64 {
                    append_compressed(&mut seq, event(i % 5, r), 32);
                }
                seq
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(p), &seqs, |b, s| {
            b.iter(|| merge_sequences(s.clone(), 128).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_window, bench_merge);
criterion_main!(benches);
