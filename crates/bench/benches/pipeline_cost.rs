//! End-to-end pipeline cost: tracing overhead, generation (pre-checks +
//! Algorithms 1/2 + codegen), and benchmark execution, per application.
//! These are the "tooling costs" a user of the framework pays.

use benchgen::{generate, GenOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use miniapps::{registry, AppParams, Class};
use mpisim::network;
use scalatrace::trace_app;

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate_from_trace");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for name in ["ring", "bt", "cg", "lu", "sweep3d"] {
        let app = registry::lookup(name).unwrap();
        let ranks = [16, 9, 8]
            .into_iter()
            .find(|&n| (app.valid_ranks)(n))
            .unwrap();
        let params = AppParams {
            class: Class::W,
            iterations: Some(5),
            compute_scale: 1.0,
        };
        let trace = trace_app(ranks, network::ideal(), move |ctx| (app.run)(ctx, &params))
            .unwrap()
            .trace;
        g.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| generate(t, &GenOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_trace_collection(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_collection");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for name in ["ring", "bt", "lu"] {
        let app = registry::lookup(name).unwrap();
        let ranks = [16, 9, 8]
            .into_iter()
            .find(|&n| (app.valid_ranks)(n))
            .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &ranks, |b, &n| {
            b.iter(|| {
                let params = AppParams::quick();
                trace_app(n, network::ideal(), move |ctx| (app.run)(ctx, &params))
                    .unwrap()
                    .trace
                    .node_count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generate, bench_trace_collection);
criterion_main!(benches);
