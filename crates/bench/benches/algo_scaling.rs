//! E7: empirical complexity of Algorithm 1 (collective alignment) and
//! Algorithm 2 (wildcard resolution), which the paper states are O(p·e)
//! (ranks × events per rank), with O(r) pre-checks.
//!
//! Synthetic traces let `p` and `e` vary independently: sweeping ranks at
//! fixed per-rank events and vice versa should both scale ~linearly.

use benchgen::{align_collectives, resolve_wildcards};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::types::{CollKind, TagSel};
use scalatrace::params::{CommParam, RankParam, SrcParam, ValParam};
use scalatrace::rankset::RankSet;
use scalatrace::timestats::TimeStats;
use scalatrace::trace::{OpTemplate, Prsd, Rsd, Trace, TraceNode};

/// A trace with `iters` iterations of (wildcard recv + ring send + barrier
/// from per-parity call sites) on `p` ranks: exercises both algorithms.
fn synthetic_trace(p: usize, iters: u64) -> Trace {
    let mut t = Trace::new(p);
    let recv = TraceNode::Event(Rsd {
        ranks: RankSet::all(p),
        sig: 1,
        op: OpTemplate::Recv {
            from: SrcParam::Any,
            tag: TagSel::Is(0),
            bytes: ValParam::Const(512),
            comm: CommParam::Const(0),
            blocking: false,
        },
        compute: TimeStats::new(),
    });
    let send = TraceNode::Event(Rsd {
        ranks: RankSet::all(p),
        sig: 2,
        op: OpTemplate::Send {
            to: RankParam::OffsetMod {
                offset: 1,
                modulus: p,
            },
            tag: 0,
            bytes: ValParam::Const(512),
            comm: CommParam::Const(0),
            blocking: false,
        },
        compute: TimeStats::new(),
    });
    let wait = TraceNode::Event(Rsd {
        ranks: RankSet::all(p),
        sig: 3,
        op: OpTemplate::Wait {
            count: ValParam::Const(2),
        },
        compute: TimeStats::new(),
    });
    // barrier from two call sites (per parity): needs Algorithm 1
    let evens = RankSet::from_ranks((0..p).step_by(2));
    let odds = RankSet::from_ranks((1..p).step_by(2));
    let barrier = |ranks: RankSet, sig: u64| {
        TraceNode::Event(Rsd {
            ranks,
            sig,
            op: OpTemplate::Coll {
                kind: CollKind::Barrier,
                root: None,
                bytes: ValParam::Const(0),
                comm: CommParam::Const(0),
            },
            compute: TimeStats::new(),
        })
    };
    t.nodes.push(TraceNode::Loop(Prsd {
        count: iters,
        body: vec![recv, send, wait, barrier(evens, 4), barrier(odds, 5)],
    }));
    t
}

fn bench_alignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1_align");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    // sweep ranks at fixed events/rank
    for p in [8, 16, 32] {
        let trace = synthetic_trace(p, 25);
        g.bench_with_input(BenchmarkId::new("ranks", p), &trace, |b, t| {
            b.iter(|| align_collectives(t).expect("aligns"))
        });
    }
    // sweep events/rank at fixed ranks
    for iters in [10u64, 20, 40] {
        let trace = synthetic_trace(16, iters);
        g.bench_with_input(BenchmarkId::new("events", iters), &trace, |b, t| {
            b.iter(|| align_collectives(t).expect("aligns"))
        });
    }
    g.finish();
}

fn bench_wildcards(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm2_wildcards");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for p in [8, 16, 32] {
        let trace = align_collectives(&synthetic_trace(p, 25)).expect("aligns");
        g.bench_with_input(BenchmarkId::new("ranks", p), &trace, |b, t| {
            b.iter(|| resolve_wildcards(t).expect("resolves"))
        });
    }
    for iters in [10u64, 20, 40] {
        let trace = align_collectives(&synthetic_trace(16, iters)).expect("aligns");
        g.bench_with_input(BenchmarkId::new("events", iters), &trace, |b, t| {
            b.iter(|| resolve_wildcards(t).expect("resolves"))
        });
    }
    g.finish();
}

fn bench_prechecks(c: &mut Criterion) {
    // the O(r) pre-checks must be orders of magnitude cheaper than the
    // O(p·e) algorithms they guard
    let trace = synthetic_trace(64, 100);
    c.bench_function("precheck_unaligned_collectives", |b| {
        b.iter(|| trace.has_unaligned_collectives())
    });
    c.bench_function("precheck_wildcards", |b| {
        b.iter(|| trace.has_wildcard_recv())
    });
}

criterion_group!(benches, bench_alignment, bench_wildcards, bench_prechecks);
criterion_main!(benches);
