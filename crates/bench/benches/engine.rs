//! Engine throughput: simulated-MPI operations per second of the
//! discrete-event runtime, and the overhead of tracing interposition. These
//! bound the cost of every experiment in the suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::network;
use mpisim::time::SimDuration;
use mpisim::types::{Src, TagSel};
use mpisim::world::World;
use scalatrace::Tracer;

fn ring_body(iters: usize) -> impl Fn(&mut mpisim::ctx::Ctx) + Send + Sync + Clone {
    move |ctx: &mut mpisim::ctx::Ctx| {
        let w = ctx.world();
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        for _ in 0..iters {
            let r = ctx.irecv(Src::Rank(left), TagSel::Is(0), 1024, &w);
            let s = ctx.isend(right, 0, 1024, &w);
            ctx.compute(SimDuration::from_usecs(10));
            ctx.waitall(&[r, s]);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_ring");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for ranks in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |b, &n| {
            let body = ring_body(100);
            b.iter(|| {
                World::new(n)
                    .network(network::ethernet_cluster())
                    .run(body.clone())
                    .unwrap()
                    .stats
                    .operations
            })
        });
    }
    g.finish();
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing_overhead");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let n = 16;
    g.bench_function("untraced", |b| {
        let body = ring_body(200);
        b.iter(|| {
            World::new(n)
                .network(network::ideal())
                .run(body.clone())
                .unwrap()
        })
    });
    g.bench_function("traced", |b| {
        let body = ring_body(200);
        b.iter(|| {
            World::new(n)
                .network(network::ideal())
                .run_hooked(|r| Tracer::new(r, n), body.clone())
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_tracing_overhead);
criterion_main!(benches);
