//! **Figure 7 (E4)** — the §5.4 what-if study: communication performance of
//! BT under scaled computation.
//!
//! A benchmark is generated from BT on 64 ranks, then its COMPUTE
//! statements are programmatically scaled from 100% down to 0% (the
//! editability the paper demonstrates by hand-modifying the coNCePTuaL
//! text) and each variant runs on the simulated Ethernet cluster. The paper
//! observes a sublinear decrease followed by an *increase* near 0% — the
//! messaging layer's unexpected-receive copies and flow-control stalls
//! dominating once computation no longer paces the senders.
//!
//! Usage: `fig7 [--ranks N] [--class S|W|A|B|C]`

use bench_suite::{print_table, trace_of};
use benchgen::{generate, GenOptions};
use conceptual::interp::run_program;
use conceptual::transform::scale_compute;
use miniapps::{registry, AppParams, Class};
use mpisim::network;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ranks: usize = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let class = match args
        .iter()
        .position(|a| a == "--class")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("S") => Class::S,
        Some("W") => Class::W,
        Some("B") => Class::B,
        Some("C") => Class::C,
        _ => Class::C,
    };

    println!("Figure 7 reproduction: BT what-if compute scaling on {ranks} ranks");
    println!(
        "network: Ethernet cluster (simulated); class {}\n",
        class.name()
    );

    let app = registry::lookup("bt").expect("bt registered");
    let traced = trace_of(
        app,
        ranks,
        AppParams::class(class),
        network::ethernet_cluster(),
    )
    .expect("BT runs");
    let generated = generate(&traced.trace, &GenOptions::default()).expect("generates");

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for pct in (0..=100).rev().step_by(10) {
        let factor = pct as f64 / 100.0;
        let variant = scale_compute(&generated.program, factor);
        let outcome = run_program(&variant, ranks, network::ethernet_cluster())
            .expect("scaled benchmark runs");
        let secs = outcome.total_time.as_secs_f64();
        let stalls = outcome.report.stats.flow_control_stalls;
        let unexpected = outcome.report.stats.unexpected_messages;
        rows.push(vec![
            format!("{pct}%"),
            format!("{secs:.4}"),
            unexpected.to_string(),
            stalls.to_string(),
        ]);
        series.push((pct, secs));
    }
    print_table(
        &["compute", "time [s]", "unexpected msgs", "fc stalls"],
        &rows,
    );

    // The paper's qualitative claims.
    let at = |p: i32| series.iter().find(|&&(q, _)| q == p).unwrap().1;
    let drop_to_30 = 100.0 * (1.0 - at(30) / at(100));
    println!(
        "\n100% -> 30% compute gives {drop_to_30:.0}% total-time reduction \
         (paper: ~21% for a 3.3x compute speedup)"
    );
    let min_pct = series.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    println!(
        "minimum at {min_pct}% compute; time at 0% is {:.2}x the minimum \
         (paper: rises again below ~30%, no speedup at 0%)",
        at(0) / series.iter().map(|&(_, s)| s).fold(f64::MAX, f64::min)
    );
}
