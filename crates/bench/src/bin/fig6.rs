//! **Figure 6 (E3)** — time accuracy of generated benchmarks.
//!
//! For every application of the paper's suite and every rank count in its
//! sweep: run the original on the simulated Blue Gene/L, generate its
//! coNCePTuaL benchmark, run the benchmark on the same machine, and report
//! both total times plus the per-point and mean absolute percentage error
//! (the paper reports 2.9% MAPE overall, with LU@256 at 22% and SP@16 at
//! 10% as the only points above 10%).
//!
//! With `--replay`, a ScalaReplay column is added: the trace replayed
//! directly (the paper's baseline execution vehicle) vs. the generated
//! benchmark, separating trace-level from generation-level error.
//!
//! Usage: `fig6 [--class S|W|A|B|C] [--max-ranks N] [--replay]`

use bench_suite::{mape, measure_accuracy, print_table, AccuracyRow};
use miniapps::{registry, AppParams, Class};
use mpisim::network;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let class = match args
        .iter()
        .position(|a| a == "--class")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("S") => Class::S,
        Some("W") => Class::W,
        Some("B") => Class::B,
        Some("C") => Class::C,
        _ => Class::A,
    };
    let max_ranks: usize = args
        .iter()
        .position(|a| a == "--max-ranks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let with_replay = args.iter().any(|a| a == "--replay");

    println!("Figure 6 reproduction: time accuracy for generated benchmarks");
    println!("network: BlueGene/L (simulated); class {}\n", class.name());

    let network = network::blue_gene_l();
    let mut rows: Vec<AccuracyRow> = Vec::new();
    let mut printable: Vec<Vec<String>> = Vec::new();
    for app in registry::paper_suite() {
        for &ranks in app.fig6_ranks {
            if ranks > max_ranks {
                continue;
            }
            let params = AppParams::class(class);
            match measure_accuracy(app, ranks, params, network.clone()) {
                Ok((row, generated)) => {
                    let mut cells = vec![
                        row.app.to_string(),
                        row.ranks.to_string(),
                        format!("{:.4}", row.t_app.as_secs_f64()),
                        format!("{:.4}", row.t_gen.as_secs_f64()),
                        format!("{:.2}", row.err_pct()),
                        generated.program.stmt_count().to_string(),
                    ];
                    if with_replay {
                        let traced = bench_suite::trace_of(app, ranks, params, network.clone())
                            .expect("traced above already");
                        let replayed = scalatrace::replay::replay(&traced.trace, network.clone())
                            .expect("replays");
                        cells.insert(4, format!("{:.4}", replayed.total_time.as_secs_f64()));
                    }
                    printable.push(cells);
                    rows.push(row);
                }
                Err(e) => {
                    eprintln!("SKIP {e}");
                }
            }
        }
    }
    if with_replay {
        print_table(
            &[
                "app",
                "ranks",
                "T_app [s]",
                "T_gen [s]",
                "T_replay [s]",
                "err %",
                "stmts",
            ],
            &printable,
        );
    } else {
        print_table(
            &["app", "ranks", "T_app [s]", "T_gen [s]", "err %", "stmts"],
            &printable,
        );
    }
    println!(
        "\nmean absolute percentage error: {:.2}%  (paper: 2.9%)",
        mape(&rows)
    );
    let worst = rows
        .iter()
        .max_by(|a, b| a.err_pct().total_cmp(&b.err_pct()));
    if let Some(w) = worst {
        println!(
            "worst point: {} @ {} ranks: {:.2}%  (paper: LU@256 at 22%)",
            w.app,
            w.ranks,
            w.err_pct()
        );
    }
}
