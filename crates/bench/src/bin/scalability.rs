//! **E6** — the size-scalability claim of §1/§2: the generated benchmark
//! grows *sublinearly* in both the number of processes and the number of
//! communication events, unlike flat trace formats.
//!
//! Sweeps (a) rank count at fixed iterations and (b) iteration count at
//! fixed ranks, reporting: concrete MPI events (what a flat trace would
//! store), compressed trace nodes, serialised trace bytes, and generated
//! program statements.

use bench_suite::{print_table, size_summary, trace_of};
use benchgen::{generate, GenOptions};
use miniapps::{registry, AppParams, Class};
use mpisim::network;

fn row(app_name: &str, ranks: usize, iterations: usize) -> Vec<String> {
    let app = registry::lookup(app_name).expect("registered");
    let params = AppParams {
        class: Class::W,
        iterations: Some(iterations),
        compute_scale: 1.0,
    };
    let traced = trace_of(app, ranks, params, network::ideal()).expect("runs");
    let (nodes, events, bytes) = size_summary(&traced.trace);
    let flat = scalatrace::text::flat_size(&traced.trace);
    let generated = generate(&traced.trace, &GenOptions::default()).expect("generates");
    vec![
        app_name.to_string(),
        ranks.to_string(),
        iterations.to_string(),
        events.to_string(),
        flat.to_string(),
        nodes.to_string(),
        bytes.to_string(),
        generated.program.stmt_count().to_string(),
    ]
}

fn main() {
    println!("E6: trace/benchmark size scalability (sublinear growth claim)\n");

    println!("(a) rank sweep at fixed 200 iterations (ring):");
    let mut rows = Vec::new();
    for ranks in [8, 16, 32, 64, 128, 256] {
        rows.push(row("ring", ranks, 200));
    }
    print_table(
        &[
            "app",
            "ranks",
            "iters",
            "MPI events",
            "flat bytes",
            "trace nodes",
            "trace bytes",
            "stmts",
        ],
        &rows,
    );

    println!("\n(b) iteration sweep at fixed 32 ranks (ring):");
    let mut rows = Vec::new();
    for iters in [10, 100, 1_000, 10_000] {
        rows.push(row("ring", 32, iters));
    }
    print_table(
        &[
            "app",
            "ranks",
            "iters",
            "MPI events",
            "flat bytes",
            "trace nodes",
            "trace bytes",
            "stmts",
        ],
        &rows,
    );

    println!("\n(c) the paper suite at 16 ranks, class W defaults:");
    let mut rows = Vec::new();
    for app in registry::paper_suite() {
        let ranks = [16, 9, 8]
            .into_iter()
            .find(|&n| (app.valid_ranks)(n))
            .unwrap();
        let params = AppParams::class(Class::W);
        let traced = trace_of(app, ranks, params, network::ideal()).expect("runs");
        let (nodes, events, bytes) = size_summary(&traced.trace);
        let flat = scalatrace::text::flat_size(&traced.trace);
        let generated = generate(&traced.trace, &GenOptions::default()).expect("generates");
        rows.push(vec![
            app.name.to_string(),
            ranks.to_string(),
            "-".to_string(),
            events.to_string(),
            flat.to_string(),
            nodes.to_string(),
            bytes.to_string(),
            generated.program.stmt_count().to_string(),
        ]);
    }
    print_table(
        &[
            "app",
            "ranks",
            "iters",
            "MPI events",
            "flat bytes",
            "trace nodes",
            "trace bytes",
            "stmts",
        ],
        &rows,
    );
}
