//! **§5.2 (E1/E2)** — communication correctness of generated benchmarks.
//!
//! E1: per-routine MPI event counts and volumes of the generated benchmark
//! match the (Table-1 image of the) original application's mpiP profile.
//! E2: the generated benchmark's own ScalaTrace trace is semantically
//! equivalent to the original's, after replay-style normalisation.
//!
//! The paper reports both checks passing for all NPB codes and Sweep3D
//! ("results not presented"); this binary presents the table.

use bench_suite::print_table;
use benchgen::verify::{compare_profiles, expected_profile};
use benchgen::{generate, GenOptions};
use miniapps::{registry, AppParams, Class};
use mpisim::network;
use mpisim::profile::MpiP;
use mpisim::types::CollKind;
use mpisim::world::World;
use scalatrace::{trace_app, ConcreteOp, Tracer};
use std::sync::Arc;

fn main() {
    let n_default = 16;
    println!("Section 5.2 reproduction: communication correctness\n");
    let mut rows = Vec::new();
    for app in registry::paper_suite() {
        let ranks = [n_default, 16, 9, 8]
            .into_iter()
            .find(|&n| (app.valid_ranks)(n))
            .unwrap();
        let params = AppParams {
            class: Class::W,
            iterations: None,
            compute_scale: 1.0,
        };

        let traced = trace_app(ranks, network::ideal(), move |ctx| (app.run)(ctx, &params))
            .expect("app runs");
        let generated = generate(&traced.trace, &GenOptions::default()).expect("generates");

        // E1: mpiP profiles
        let (_, orig_hooks) = World::new(ranks)
            .network(network::ideal())
            .run_hooked(|_| MpiP::new(), move |ctx| (app.run)(ctx, &params))
            .unwrap();
        let orig_prof = MpiP::merge_all(orig_hooks.iter());
        let program = Arc::new(generated.program.clone());
        let p2 = Arc::clone(&program);
        let (_, gen_hooks) = World::new(ranks)
            .network(network::ideal())
            .run_hooked(
                |_| MpiP::new(),
                move |ctx| conceptual::interp::run_rank(ctx, &p2),
            )
            .unwrap();
        let gen_prof = MpiP::merge_all(gen_hooks.iter());
        let e1 = compare_profiles(&expected_profile(&orig_prof, ranks), &gen_prof, 0.02);

        // E2: trace the generated benchmark, compare normalised event
        // streams per rank
        let p3 = Arc::clone(&program);
        let (_, tracers) = World::new(ranks)
            .network(network::ideal())
            .run_hooked(
                move |r| Tracer::new(r, ranks),
                move |ctx| conceptual::interp::run_rank(ctx, &p3),
            )
            .unwrap();
        let regen = scalatrace::merge::merge_tracers(tracers);
        let mut e2_ok = true;
        let mut e2_detail = String::new();
        'outer: for r in 0..ranks {
            let a = normalised(&traced.trace, r);
            let b = normalised(&regen, r);
            if a.len() != b.len() {
                e2_ok = false;
                e2_detail = format!("rank {r}: {} vs {} events", a.len(), b.len());
                break;
            }
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                if !events_match(x, y) {
                    e2_ok = false;
                    e2_detail = format!("rank {r} event {i}: {x} vs {y}");
                    break 'outer;
                }
            }
        }

        rows.push(vec![
            app.name.to_string(),
            ranks.to_string(),
            orig_prof.total_calls().to_string(),
            gen_prof.total_calls().to_string(),
            if e1.is_empty() {
                "match".to_string()
            } else {
                format!("MISMATCH ({})", e1.len())
            },
            if e2_ok {
                "equivalent".to_string()
            } else {
                format!("DIFFERS: {e2_detail}")
            },
        ]);
        if !e1.is_empty() {
            for e in &e1 {
                eprintln!("  {}: {e}", app.name);
            }
        }
    }
    print_table(
        &[
            "app",
            "ranks",
            "orig calls",
            "gen calls",
            "E1 counts+volumes",
            "E2 semantics",
        ],
        &rows,
    );
}

/// Event equivalence: identical, or an `MPI_ANY_SOURCE` receive in the
/// original resolved to a concrete source in the generated benchmark —
/// exactly Algorithm 2's transformation (§4.4).
fn events_match(orig: &str, generated: &str) -> bool {
    if orig == generated {
        return true;
    }
    if let (Some(o), Some(g)) = (
        orig.strip_prefix("recv:Any:"),
        generated.strip_prefix("recv:"),
    ) {
        // generated must be a concrete receive with the same size/blocking
        if let Some((_, rest)) = g.split_once(':') {
            return rest == o && g.starts_with("Rank(");
        }
    }
    false
}

/// Per-rank op stream with the substitutions E1 tolerates normalised away:
/// collective kinds map through Table 1 (shape only) and Finalize → Barrier.
fn normalised(trace: &scalatrace::Trace, rank: usize) -> Vec<String> {
    scalatrace::events_for_rank(trace, rank)
        .into_iter()
        .map(|e| match e.op {
            ConcreteOp::Send {
                to,
                bytes,
                blocking,
                ..
            } => format!("send:{to}:{bytes}:{blocking}"),
            ConcreteOp::Recv {
                from,
                bytes,
                blocking,
                ..
            } => format!("recv:{from:?}:{bytes}:{blocking}"),
            ConcreteOp::Wait { count } => format!("wait:{count}"),
            ConcreteOp::CommSplit { .. } => "split".to_string(),
            ConcreteOp::Coll { kind, .. } => match kind {
                CollKind::Finalize | CollKind::Barrier => "barrier".to_string(),
                CollKind::Gather | CollKind::Gatherv | CollKind::Reduce => "reduce".to_string(),
                CollKind::Scatter | CollKind::Scatterv | CollKind::Bcast => "bcast".to_string(),
                CollKind::Alltoall | CollKind::Alltoallv => "alltoall".to_string(),
                CollKind::Allgather | CollKind::Allgatherv => "allgather".to_string(),
                other => format!("{other:?}"),
            },
        })
        .collect()
}
