//! **Table 1 (E5)** — MPI-collective → coNCePTuaL mapping check.
//!
//! For every MPI collective, a tiny application issuing that collective is
//! traced and generated; the table reports which statements the mapping
//! produced and verifies that the generated benchmark's per-routine MPI
//! volume matches the Table-1 image of the original's (exactly, or on
//! average for the v-variants).

use bench_suite::print_table;
use benchgen::verify::{compare_profiles, expected_profile};
use benchgen::{generate, GenOptions};
use conceptual::ast::Stmt;
use miniapps::util::jittered;
use mpisim::network;
use mpisim::profile::MpiP;
use mpisim::time::SimDuration;
use mpisim::types::CollKind;
use mpisim::world::World;
use scalatrace::trace_app;
use std::sync::Arc;

fn stmt_kinds(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Sync { .. } => out.push("SYNCHRONIZE".into()),
                Stmt::Multicast { root: Some(_), .. } => out.push("MULTICAST".into()),
                Stmt::Multicast { root: None, .. } => out.push("MULTICAST(many-to-many)".into()),
                Stmt::Reduce { to, .. } => out.push(
                    match to {
                        conceptual::ast::ReduceTo::All => "REDUCE TO ALL",
                        conceptual::ast::ReduceTo::Task(_) => "REDUCE",
                    }
                    .into(),
                ),
                Stmt::For { body, .. } | Stmt::ForEach { body, .. } => walk(body, out),
                Stmt::If { then_, else_, .. } => {
                    walk(then_, out);
                    walk(else_, out);
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out.dedup();
    out
}

fn issue(ctx: &mut mpisim::ctx::Ctx, kind: CollKind) {
    let w = ctx.world();
    // v-variants use rank-varying sizes to exercise the averaging rule
    let varied = jittered(
        SimDuration::from_nanos(1024),
        kind as u64,
        ctx.rank(),
        0,
        0.5,
    )
    .as_nanos();
    match kind {
        CollKind::Barrier => ctx.barrier(&w),
        CollKind::Bcast => ctx.bcast(0, 4096, &w),
        CollKind::Reduce => ctx.reduce(0, 1024, &w),
        CollKind::Allreduce => ctx.allreduce(1024, &w),
        CollKind::Gather => ctx.gather(0, 1024, &w),
        CollKind::Gatherv => ctx.gatherv(0, varied, &w),
        CollKind::Scatter => ctx.scatter(0, 1024, &w),
        CollKind::Scatterv => ctx.scatterv(0, varied, &w),
        CollKind::Allgather => ctx.allgather(1024, &w),
        CollKind::Allgatherv => ctx.allgatherv(varied, &w),
        CollKind::Alltoall => ctx.alltoall(4096, &w),
        CollKind::Alltoallv => ctx.alltoallv(varied * 4, &w),
        CollKind::ReduceScatter => ctx.reduce_scatter(4096, &w),
        CollKind::Finalize | CollKind::CommSplit => unreachable!(),
    }
}

fn main() {
    let n = 8;
    println!("Table 1 reproduction: MPI collective -> coNCePTuaL mapping\n");
    let mut rows = Vec::new();
    for &kind in CollKind::ALL {
        if matches!(kind, CollKind::Finalize | CollKind::CommSplit) {
            continue;
        }
        // trace a 3-iteration app issuing just this collective
        let traced = trace_app(n, network::ideal(), move |ctx| {
            for _ in 0..3 {
                issue(ctx, kind);
            }
            ctx.finalize();
        })
        .expect("collective app runs");
        let generated = generate(&traced.trace, &GenOptions::default()).expect("generates");

        // profile original and generated
        let (_, orig_hooks) = World::new(n)
            .network(network::ideal())
            .run_hooked(
                |_| MpiP::new(),
                move |ctx| {
                    for _ in 0..3 {
                        issue(ctx, kind);
                    }
                    ctx.finalize();
                },
            )
            .unwrap();
        let orig = MpiP::merge_all(orig_hooks.iter());
        let program = Arc::new(generated.program.clone());
        let (_, gen_hooks) = World::new(n)
            .network(network::ideal())
            .run_hooked(
                |_| MpiP::new(),
                move |ctx| conceptual::interp::run_rank(ctx, &program),
            )
            .unwrap();
        let genp = MpiP::merge_all(gen_hooks.iter());
        let errors = compare_profiles(&expected_profile(&orig, n), &genp, 0.02);

        rows.push(vec![
            kind.mpi_name().to_string(),
            stmt_kinds(&generated.program.stmts).join(" + "),
            if errors.is_empty() {
                "volume OK".to_string()
            } else {
                format!("MISMATCH: {}", errors.join("; "))
            },
            if generated.notes.is_empty() {
                "exact".to_string()
            } else {
                "averaged/substituted".to_string()
            },
        ]);
    }
    print_table(
        &[
            "MPI collective",
            "coNCePTuaL statements",
            "check",
            "fidelity",
        ],
        &rows,
    );
}
