//! # bench-suite — experiment harness
//!
//! Shared machinery for the binaries that regenerate the paper's tables and
//! figures (see DESIGN.md §4 for the experiment index):
//!
//! | binary               | paper artifact |
//! |----------------------|----------------|
//! | `sec52_correctness`  | §5.2 event-count/volume and semantic equivalence (E1/E2) |
//! | `fig6`               | Figure 6 — time accuracy per app × rank count (E3) |
//! | `fig7`               | Figure 7 — BT what-if compute scaling (E4) |
//! | `table1`             | Table 1 — collective mapping check (E5) |
//! | `scalability`        | §2 — trace/benchmark size vs ranks & events (E6) |
//!
//! Criterion benches (`cargo bench`) cover E7: O(p·e) scaling of
//! Algorithms 1 and 2, compression-window cost, and engine throughput.

use benchgen::{generate, GenOptions, GeneratedBenchmark};
use conceptual::interp::run_program;
use miniapps::{App, AppParams};
use mpisim::error::SimError;
use mpisim::network::NetworkModel;
use mpisim::time::SimTime;
use scalatrace::{trace_app, Trace};
use std::sync::Arc;

/// One end-to-end measurement: original application vs generated benchmark
/// on the same simulated machine.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    pub app: &'static str,
    pub ranks: usize,
    /// Original application total time.
    pub t_app: SimTime,
    /// Generated benchmark total time.
    pub t_gen: SimTime,
}

impl AccuracyRow {
    /// The paper's error metric: `100% * |T_gen - T_app| / T_app`.
    pub fn err_pct(&self) -> f64 {
        let a = self.t_app.as_secs_f64();
        let g = self.t_gen.as_secs_f64();
        if a == 0.0 {
            0.0
        } else {
            100.0 * (g - a).abs() / a
        }
    }
}

/// Trace, generate, and re-run one application configuration.
pub fn measure_accuracy(
    app: &'static App,
    ranks: usize,
    params: AppParams,
    network: Arc<dyn NetworkModel>,
) -> Result<(AccuracyRow, GeneratedBenchmark), String> {
    let traced = trace_app(ranks, Arc::clone(&network), move |ctx| {
        (app.run)(ctx, &params)
    })
    .map_err(|e| format!("{}@{ranks}: trace failed: {e}", app.name))?;
    let generated = generate(&traced.trace, &GenOptions::default())
        .map_err(|e| format!("{}@{ranks}: generation failed: {e}", app.name))?;
    let outcome = run_program(&generated.program, ranks, network)
        .map_err(|e| format!("{}@{ranks}: generated benchmark failed: {e}", app.name))?;
    Ok((
        AccuracyRow {
            app: app.name,
            ranks,
            t_app: traced.report.total_time,
            t_gen: outcome.total_time,
        },
        generated,
    ))
}

/// Trace an application only.
pub fn trace_of(
    app: &'static App,
    ranks: usize,
    params: AppParams,
    network: Arc<dyn NetworkModel>,
) -> Result<scalatrace::TracedRun, SimError> {
    trace_app(ranks, network, move |ctx| (app.run)(ctx, &params))
}

/// Mean absolute percentage error over a set of rows (the paper's summary
/// statistic: 2.9% across all of Figure 6).
pub fn mape(rows: &[AccuracyRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(AccuracyRow::err_pct).sum::<f64>() / rows.len() as f64
}

/// Compressed/uncompressed size summary of a trace:
/// `(trace nodes, concrete events, serialised bytes)`.
pub fn size_summary(trace: &Trace) -> (usize, u64, usize) {
    (
        trace.node_count(),
        trace.concrete_event_count(),
        scalatrace::text::serialized_size(trace),
    )
}

/// Print a fixed-width table: header then rows of equal arity.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniapps::registry;
    use mpisim::network;

    #[test]
    fn accuracy_row_math() {
        let row = AccuracyRow {
            app: "x",
            ranks: 4,
            t_app: SimTime::from_nanos(1_000),
            t_gen: SimTime::from_nanos(1_100),
        };
        assert!((row.err_pct() - 10.0).abs() < 1e-9);
        let rows = vec![
            row.clone(),
            AccuracyRow {
                t_gen: SimTime::from_nanos(900),
                ..row
            },
        ];
        assert!((mape(&rows) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn measure_accuracy_runs_end_to_end() {
        let app = registry::lookup("ring").unwrap();
        let (row, generated) =
            measure_accuracy(app, 4, AppParams::quick(), network::ethernet_cluster()).unwrap();
        assert!(row.t_app.as_nanos() > 0);
        assert!(row.t_gen.as_nanos() > 0);
        assert!(generated.program.stmt_count() > 0);
        // generated ring should track the original closely
        assert!(row.err_pct() < 15.0, "ring error {:.1}%", row.err_pct());
    }
}
