//! NPB CG (Conjugate Gradient) communication skeleton.
//!
//! CG distributes the sparse matrix over a 2-D grid of `nprows x npcols`
//! processes (powers of two). Each iteration performs a sparse
//! matrix-vector product — reduced across each process *row* via a
//! butterfly of point-to-point exchanges and a transpose exchange — plus
//! two dot-product `MPI_Allreduce`s over row/column subcommunicators
//! created by `MPI_Comm_split`. CG is memory-bound in the original suite
//! (§5.1), so the compute model is bandwidth-based.

use crate::util::{compute_phase, is_pow2, mem_time};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;
use mpisim::types::{Src, TagSel};

struct Config {
    /// matrix dimension (S=1400, W=7000, A=14000, B=75000, C=150000)
    na: usize,
    /// published iterations (15 or 75), scaled /3 for B and C
    iters: usize,
    nonzeros_per_row: usize,
}

fn config(class: Class) -> Config {
    match class {
        Class::S => Config {
            na: 1_400,
            iters: 15,
            nonzeros_per_row: 7,
        },
        Class::W => Config {
            na: 7_000,
            iters: 15,
            nonzeros_per_row: 8,
        },
        Class::A => Config {
            na: 14_000,
            iters: 15,
            nonzeros_per_row: 11,
        },
        Class::B => Config {
            na: 75_000,
            iters: 25,
            nonzeros_per_row: 13,
        },
        Class::C => Config {
            na: 150_000,
            iters: 25,
            nonzeros_per_row: 15,
        },
    }
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let cfg = config(params.class);
    let iters = params.iters(cfg.iters);
    let w = ctx.world();
    let p = ctx.size();
    let me = ctx.rank();

    // process grid: npcols = 2^ceil(log2(p)/2), nprows = p / npcols
    let log2p = p.trailing_zeros() as usize;
    let npcols = 1usize << log2p.div_ceil(2);
    let nprows = p / npcols;
    let (row, col) = (me / npcols, me % npcols);

    // row and column subcommunicators (MPI_Comm_split in the original)
    let row_comm = ctx.comm_split(&w, row as i64, col as i64);
    let col_comm = ctx.comm_split(&w, 1000 + col as i64, row as i64);

    // vector segment held per process
    let seg = cfg.na / npcols.max(1);
    let seg_bytes = (seg * 8) as u64;
    let spmv_work = mem_time((cfg.na / nprows.max(1) * cfg.nonzeros_per_row * 20) as f64);
    let axpy_work = mem_time((seg * 8 * 6) as f64);

    for iter in 0..iters {
        // sparse mat-vec
        compute_phase(ctx, params, spmv_work, 0xc600, iter as u64);
        // row-wise butterfly sum-reduction of the partial result vector
        let mut d = 1;
        while d < npcols {
            let partner_col = col ^ d;
            let partner = row * npcols + partner_col;
            let r = ctx.irecv(Src::Rank(partner), TagSel::Is(1), seg_bytes, &w);
            let s = ctx.isend(partner, 1, seg_bytes, &w);
            ctx.waitall(&[r, s]);
            compute_phase(ctx, params, axpy_work, 0xc610, (iter * 32 + d) as u64);
            d <<= 1;
        }
        // transpose exchange on square grids: (row,col) <-> (col,row) is an
        // involution, so the pairing is symmetric
        if nprows == npcols && nprows > 1 {
            let transpose = col * npcols + row;
            if transpose != me {
                let r = ctx.irecv(Src::Rank(transpose), TagSel::Is(2), seg_bytes, &w);
                let s = ctx.isend(transpose, 2, seg_bytes, &w);
                ctx.waitall(&[r, s]);
            }
        }
        // two dot products per iteration
        ctx.allreduce(8, &row_comm);
        compute_phase(ctx, params, axpy_work, 0xc620, iter as u64);
        ctx.allreduce(8, &col_comm);
    }
    // final residual norm
    ctx.allreduce(8, &w);
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "cg",
    description: "NPB CG: row-butterfly reductions, transpose exchange, split communicators",
    run,
    valid_ranks: is_pow2,
    fig6_ranks: &[16, 32, 64, 128],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn runs_on_powers_of_two() {
        for n in [2, 4, 8, 16] {
            let params = AppParams::quick();
            let report = World::new(n)
                .network(network::blue_gene_l())
                .run(move |ctx| run(ctx, &params))
                .unwrap();
            assert!(report.stats.collectives > 0, "n={n}");
        }
    }
}
