//! Sweep3D (discrete-ordinates neutron transport) communication skeleton.
//!
//! Sweep3D performs wavefront sweeps over a 2-D process grid, one per
//! octant pair of the angular domain: data flows from a corner across the
//! grid in pipelined k-blocks, with blocking face sends/receives to the
//! downstream neighbours (Koch/Baker/Alcouffe; Wasserman et al.). After
//! the sweeps, convergence is checked with an `MPI_Allreduce` that the
//! original source invokes from *different code paths* on different ranks
//! — the paper lists Sweep3D as the code that "require\[s\] collective
//! alignment (Section 4.3)", so this skeleton deliberately calls the final
//! collectives from distinct call sites depending on the rank.

use crate::util::{compute_phase, flops_time, near_square_grid, Grid2d};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;
use mpisim::types::{Src, TagSel};

struct Config {
    /// global grid (classes map onto the published 50^3..1000^3 range)
    n: usize,
    /// k-blocking factor (pipeline depth)
    mk: usize,
    iters: usize,
}

fn config(class: Class) -> Config {
    match class {
        Class::S => Config {
            n: 20,
            mk: 2,
            iters: 2,
        },
        Class::W => Config {
            n: 50,
            mk: 4,
            iters: 3,
        },
        Class::A => Config {
            n: 100,
            mk: 5,
            iters: 4,
        },
        Class::B => Config {
            n: 200,
            mk: 5,
            iters: 4,
        },
        Class::C => Config {
            n: 400,
            mk: 10,
            iters: 4,
        },
    }
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let cfg = config(params.class);
    let iters = params.iters(cfg.iters);
    let w = ctx.world();
    let (rows, cols) = near_square_grid(ctx.size());
    let grid = Grid2d::new(rows, cols);
    let me = ctx.rank();

    let tile_i = cfg.n / rows.max(1);
    let tile_j = cfg.n / cols.max(1);
    let kblocks = (cfg.n / cfg.mk).max(1);
    // faces per k-block: angular flux on the tile boundary
    let face_i = ((tile_j * cfg.mk * 6 * 8) as u64).max(64);
    let face_j = ((tile_i * cfg.mk * 6 * 8) as u64).max(64);
    let block_work = flops_time((tile_i * tile_j * cfg.mk) as f64 * 60.0);

    ctx.bcast(0, 8 * 8, &w); // input deck

    // Octant sweep directions: the wavefront origin corner.
    let octants: [(isize, isize); 4] = [(1, 1), (1, -1), (-1, 1), (-1, -1)];

    for iter in 0..iters {
        for (o, (di, dj)) in octants.iter().enumerate() {
            let up_i = if *di > 0 {
                grid.north(me)
            } else {
                grid.south(me)
            };
            let down_i = if *di > 0 {
                grid.south(me)
            } else {
                grid.north(me)
            };
            let up_j = if *dj > 0 {
                grid.west(me)
            } else {
                grid.east(me)
            };
            let down_j = if *dj > 0 {
                grid.east(me)
            } else {
                grid.west(me)
            };
            let tag_i = (o * 2) as i32;
            let tag_j = (o * 2 + 1) as i32;
            for kb in 0..kblocks {
                if let Some(src) = up_i {
                    let _ = ctx.recv(Src::Rank(src), TagSel::Is(tag_i), face_i, &w);
                }
                if let Some(src) = up_j {
                    let _ = ctx.recv(Src::Rank(src), TagSel::Is(tag_j), face_j, &w);
                }
                compute_phase(
                    ctx,
                    params,
                    block_work,
                    0x53d0 + o as u64,
                    (iter * kblocks + kb) as u64,
                );
                if let Some(dst) = down_i {
                    ctx.send(dst, tag_i, face_i, &w);
                }
                if let Some(dst) = down_j {
                    ctx.send(dst, tag_j, face_j, &w);
                }
            }
        }
        // Convergence check: the collective is reached through different
        // call sites depending on the rank — the paper's Figure 3
        // situation, exercising Algorithm 1.
        if me == 0 {
            ctx.allreduce(8, &w); // call site A (master path)
        } else if me.is_multiple_of(2) {
            ctx.allreduce(8, &w); // call site B (even workers)
        } else {
            ctx.allreduce(8, &w); // call site C (odd workers)
        }
    }
    // final flux balance, again from split call sites (the branches are
    // deliberately identical: what differs is the *call site*)
    #[allow(clippy::if_same_then_else, clippy::branches_sharing_code)]
    if me < ctx.size() / 2 {
        ctx.barrier(&w);
    } else {
        ctx.barrier(&w);
    }
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "sweep3d",
    description: "Sweep3D: 8-octant pipelined wavefronts, split-call-site collectives",
    run,
    valid_ranks: |n| n >= 2,
    fig6_ranks: &[16, 32, 64, 128],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn sweeps_complete_on_rectangular_grids() {
        for n in [4, 6, 8, 12] {
            let params = AppParams::quick();
            let report = World::new(n)
                .network(network::blue_gene_l())
                .run(move |ctx| run(ctx, &params))
                .unwrap();
            assert!(report.stats.messages > 0, "n={n}");
        }
    }
}
