#![warn(missing_docs)]
//! # miniapps — communication skeletons of the paper's evaluation codes
//!
//! The paper evaluates on the NAS Parallel Benchmarks 3.3 (BT, CG, EP, FT,
//! IS, LU, MG, SP) with class C inputs and the Sweep3D neutron-transport
//! kernel. We cannot run the Fortran/C originals inside the simulator, so
//! each application is reproduced as a *communication skeleton*: the
//! published communication structure (message pattern, counts, sizes and
//! collective usage as functions of problem size and rank count) plus an
//! analytic computation-time model. The trace/generate/replay pipeline only
//! observes MPI events and inter-event times, so skeletons exercise exactly
//! the same code paths the original applications would (substitution
//! documented in DESIGN.md).
//!
//! Properties deliberately preserved because the paper's algorithms depend
//! on them:
//! * **LU** uses `MPI_ANY_SOURCE` receives in its wavefront sweeps — the
//!   paper's motivating case for Algorithm 2 (§4.4).
//! * **Sweep3D** invokes collectives from *different call sites* on
//!   different ranks — the motivating case for Algorithm 1 (§4.3).
//! * **CG** splits communicators (row/column groups); **IS** uses
//!   `MPI_Alltoallv` with rank-dependent volumes (Table 1 averaging).
//! * **EP** is compute-dominated; **CG/FT/MG** are memory-bound in the
//!   original suite, which the paper notes stresses the spin-loop compute
//!   replay — here compute is virtual time, so the equivalent stress is
//!   large `compute` fractions.
//!
//! Problem classes follow the NPB naming (S, W, A, B, C) with sizes taken
//! from the published class tables; iteration counts are scaled down by a
//! fixed per-app factor (documented in each module) so that simulations
//! finish in seconds — the *per-iteration* structure is unchanged.

pub mod bt;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod is_sort;
pub mod lu;
pub mod mg;
pub mod ring;
pub mod sp;
pub mod sweep3d;
pub mod util;

use mpisim::ctx::Ctx;

/// NPB problem classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Class {
    /// Sample (tiny).
    S,
    /// Workstation.
    W,
    /// Class A.
    A,
    /// Class B.
    B,
    /// Class C — the paper's evaluation size.
    C,
}

impl Class {
    /// One-letter class name.
    pub fn name(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
        }
    }
}

/// Run parameters for a skeleton.
#[derive(Clone, Copy, Debug)]
pub struct AppParams {
    /// Problem class.
    pub class: Class,
    /// Override the class's (already scaled) iteration count.
    pub iterations: Option<usize>,
    /// Scale factor applied to all computation times (1.0 = unmodified);
    /// the knob behind the paper's §5.4 what-if experiment.
    pub compute_scale: f64,
}

impl AppParams {
    /// Defaults for `class` (class iteration counts, unscaled compute).
    pub fn class(class: Class) -> AppParams {
        AppParams {
            class,
            iterations: None,
            compute_scale: 1.0,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> AppParams {
        AppParams {
            class: Class::S,
            iterations: Some(3),
            compute_scale: 1.0,
        }
    }

    pub(crate) fn iters(&self, class_default: usize) -> usize {
        self.iterations.unwrap_or(class_default)
    }
}

/// A runnable application skeleton.
#[derive(Clone, Copy)]
pub struct App {
    /// Registry name (e.g. `"lu"`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The skeleton entry point, run on every rank.
    pub run: fn(&mut Ctx, &AppParams),
    /// Is `n` a valid rank count for this app's decomposition?
    pub valid_ranks: fn(usize) -> bool,
    /// Rank counts used by the Figure 6 sweep (ascending).
    pub fig6_ranks: &'static [usize],
}

/// The application registry.
pub mod registry {
    use super::*;

    /// All bundled applications.
    pub fn all() -> &'static [App] {
        &[
            ring::APP,
            bt::APP,
            cg::APP,
            ep::APP,
            ft::APP,
            is_sort::APP,
            lu::APP,
            mg::APP,
            sp::APP,
            sweep3d::APP,
        ]
    }

    /// The paper's evaluation suite (NPB + Sweep3D, without the ring demo).
    pub fn paper_suite() -> Vec<&'static App> {
        all().iter().filter(|a| a.name != "ring").collect()
    }

    /// Find an application by registry name.
    pub fn lookup(name: &str) -> Option<&'static App> {
        all().iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_paper_suite() {
        let names: Vec<&str> = registry::paper_suite().iter().map(|a| a.name).collect();
        for expected in ["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "sweep3d"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert!(registry::lookup("ring").is_some());
        assert!(registry::lookup("nope").is_none());
    }

    #[test]
    fn fig6_ranks_are_valid_for_each_app() {
        for app in registry::all() {
            for &n in app.fig6_ranks {
                assert!(
                    (app.valid_ranks)(n),
                    "{}: fig6 rank count {n} is invalid",
                    app.name
                );
            }
        }
    }
}
