//! NPB MG (Multigrid) communication skeleton.
//!
//! MG runs V-cycles over a hierarchy of grids. At each level, every rank
//! exchanges halo faces with its neighbours in the (hypercube-factored)
//! process layout; face sizes shrink by 4x per coarser level until the
//! grid is coarser than the process count, after which fewer ranks stay
//! active. Each iteration ends with an `MPI_Allreduce` residual norm.
//! Memory-bound in the original (§5.1).

use crate::util::{compute_phase, is_pow2, mem_time};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;
use mpisim::types::{Src, TagSel};

struct Config {
    /// grid dimension (S=32, W=128, A/B=256, C=512)
    n: usize,
    iters: usize,
}

fn config(class: Class) -> Config {
    match class {
        Class::S => Config { n: 32, iters: 4 },
        Class::W => Config { n: 128, iters: 4 },
        Class::A => Config { n: 256, iters: 4 },
        Class::B => Config { n: 256, iters: 10 },
        Class::C => Config { n: 512, iters: 10 },
    }
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let cfg = config(params.class);
    let iters = params.iters(cfg.iters);
    let w = ctx.world();
    let p = ctx.size();
    let me = ctx.rank();
    let log2p = p.trailing_zeros() as usize;
    let levels = (cfg.n.trailing_zeros() as usize).min(8);

    ctx.bcast(0, 4 * 8, &w);

    for iter in 0..iters {
        // V-cycle: restrict down the hierarchy, then prolongate back up.
        for half in 0..2usize {
            for step in 0..levels {
                let level = if half == 0 { step } else { levels - 1 - step };
                // local grid at this level
                let local_n = (cfg.n >> level).max(2) / (1 << (log2p / 3).min(4));
                let face_bytes = ((local_n * local_n * 8) as u64).max(64);
                let smooth = mem_time((local_n * local_n * local_n * 8 * 4) as f64);
                compute_phase(
                    ctx,
                    params,
                    smooth,
                    0x3600 + half as u64,
                    (iter * levels + level) as u64,
                );
                // halo exchange with hypercube neighbours, one per
                // dimension that is still distributed at this level
                let dims = log2p.min(3);
                for d in 0..dims {
                    // coarser levels deactivate dimensions
                    if level >= levels.saturating_sub(d) {
                        continue;
                    }
                    let partner = me ^ (1 << d);
                    let tag = (half * 8 + d) as i32;
                    let r = ctx.irecv(Src::Rank(partner), TagSel::Is(tag), face_bytes, &w);
                    let s = ctx.isend(partner, tag, face_bytes, &w);
                    ctx.waitall(&[r, s]);
                }
            }
        }
        ctx.allreduce(8, &w);
    }
    ctx.allreduce(8, &w);
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "mg",
    description: "NPB MG: V-cycle halo exchanges with level-dependent sizes",
    run,
    valid_ranks: is_pow2,
    fig6_ranks: &[16, 32, 64, 128],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn v_cycles_run() {
        let params = AppParams::quick();
        let report = World::new(8)
            .network(network::blue_gene_l())
            .run(move |ctx| run(ctx, &params))
            .unwrap();
        assert!(report.stats.messages > 0);
        assert!(report.stats.collectives >= 5);
    }
}
