//! NPB EP (Embarrassingly Parallel) communication skeleton.
//!
//! EP generates Gaussian deviates independently on every rank; the only
//! communication is a handful of `MPI_Allreduce` calls collecting the sums
//! and annulus counts at the end. It anchors the compute-dominated end of
//! Figure 6.

use crate::util::{compute_phase, flops_time, is_pow2};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;

fn pairs_log2(class: Class) -> u32 {
    // published M parameter: S=24, W=25, A=28, B=30, C=32 — scaled down by
    // 2^6 so a simulated run takes seconds, not hours
    match class {
        Class::S => 18,
        Class::W => 19,
        Class::A => 22,
        Class::B => 24,
        Class::C => 26,
    }
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let w = ctx.world();
    let m = pairs_log2(params.class);
    let pairs_per_rank = (1u64 << m) / ctx.size() as u64;
    // ~30 flops per random pair (generation + rejection test)
    let work = flops_time(pairs_per_rank as f64 * 30.0);
    // EP batches in 2^10-pair chunks; model as a handful of phases so the
    // trace carries loop structure rather than one opaque delay
    let chunks = params.iters(16);
    for c in 0..chunks {
        compute_phase(ctx, params, work / chunks as u64, 0xe900, c as u64);
    }
    // global sums: sx, sy, and the 10 annulus counts
    ctx.allreduce(8, &w);
    ctx.allreduce(8, &w);
    ctx.allreduce(10 * 8, &w);
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "ep",
    description: "NPB EP: embarrassingly parallel, three final allreduces",
    run,
    valid_ranks: is_pow2,
    fig6_ranks: &[16, 32, 64, 128],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn communication_is_only_collectives() {
        let params = AppParams::quick();
        let report = World::new(8)
            .network(network::blue_gene_l())
            .run(move |ctx| run(ctx, &params))
            .unwrap();
        assert_eq!(report.stats.messages, 0);
        assert_eq!(report.stats.collectives, 4); // 3 allreduce + finalize
    }
}
