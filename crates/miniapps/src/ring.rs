//! Ring demo — the paper's Figure 2 example: every rank asynchronously
//! receives from the left and sends to the right, 1000 iterations.

use crate::util::compute_phase;
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;
use mpisim::time::SimDuration;
use mpisim::types::{Src, TagSel};

fn config(class: Class) -> (u64, usize) {
    // (message bytes, iterations)
    match class {
        Class::S => (256, 50),
        Class::W => (512, 200),
        Class::A => (1024, 500),
        Class::B => (1024, 1000),
        Class::C => (2048, 1000),
    }
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let (bytes, iters) = config(params.class);
    let iters = params.iters(iters);
    let w = ctx.world();
    let right = (ctx.rank() + 1) % ctx.size();
    let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
    for i in 0..iters {
        let r = ctx.irecv(Src::Rank(left), TagSel::Is(0), bytes, &w);
        let s = ctx.isend(right, 0, bytes, &w);
        compute_phase(ctx, params, SimDuration::from_usecs(50), 0x1107, i as u64);
        ctx.waitall(&[r, s]);
    }
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "ring",
    description: "nearest-neighbour ring (the paper's Figure 2 example)",
    run,
    valid_ranks: |n| n >= 2,
    fig6_ranks: &[16, 32, 64, 128],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn runs_and_message_count_matches() {
        let params = AppParams::quick();
        let report = World::new(4)
            .network(network::ideal())
            .run(move |ctx| run(ctx, &params))
            .unwrap();
        assert_eq!(report.stats.messages, 4 * 3);
    }
}
