//! NPB IS (Integer Sort) communication skeleton.
//!
//! IS bucket-sorts integer keys: every iteration computes local key
//! histograms, `MPI_Allreduce`s the bucket sizes, then redistributes keys
//! with `MPI_Alltoallv` — with *rank-dependent* volumes, since bucket
//! occupancy varies across processes. That exercises the generator's
//! Table 1 rule "Alltoallv → MULTICAST with averaged message size" and the
//! per-rank parameter tables of the trace layer.

use crate::util::{compute_phase, is_pow2, jittered, mem_time};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;

struct Config {
    /// log2 of total keys (published: S=16, W=20, A=23, B=25, C=27)
    total_keys_log2: u32,
    iters: usize,
}

fn config(class: Class) -> Config {
    match class {
        Class::S => Config {
            total_keys_log2: 16,
            iters: 10,
        },
        Class::W => Config {
            total_keys_log2: 20,
            iters: 10,
        },
        Class::A => Config {
            total_keys_log2: 23,
            iters: 10,
        },
        Class::B => Config {
            total_keys_log2: 25,
            iters: 10,
        },
        Class::C => Config {
            total_keys_log2: 27,
            iters: 10,
        },
    }
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let cfg = config(params.class);
    let iters = params.iters(cfg.iters);
    let w = ctx.world();
    let p = ctx.size() as u64;
    let keys_per_rank = (1u64 << cfg.total_keys_log2) / p;
    let key_bytes = keys_per_rank * 4;
    let rank = ctx.rank();

    let count_work = mem_time((key_bytes * 3) as f64);
    let sort_work = mem_time((key_bytes * 5) as f64);

    for iter in 0..iters {
        // local histogram
        compute_phase(ctx, params, count_work, 0x1500, iter as u64);
        // global bucket sizes (1024 buckets x 4 bytes)
        ctx.allreduce(1024 * 4, &w);
        // key redistribution: volume varies per rank with bucket skew
        let skew = jittered(
            mpisim::time::SimDuration::from_nanos(key_bytes),
            0x1510,
            rank,
            iter as u64,
            0.25,
        )
        .as_nanos();
        ctx.alltoallv(skew, &w);
        // local ranking of received keys
        compute_phase(ctx, params, sort_work, 0x1520, iter as u64);
    }
    // full verification
    ctx.allreduce(8, &w);
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "is",
    description: "NPB IS: bucket sort with alltoallv of rank-dependent volumes",
    run,
    valid_ranks: is_pow2,
    fig6_ranks: &[16, 32, 64, 128],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::profile::MpiP;
    use mpisim::world::World;

    #[test]
    fn alltoallv_volumes_differ_across_ranks() {
        let params = AppParams::quick();
        let (_, hooks) = World::new(4)
            .network(network::blue_gene_l())
            .run_hooked(|_| MpiP::new(), move |ctx| run(ctx, &params))
            .unwrap();
        let volumes: Vec<u64> = hooks.iter().map(|h| h.get("MPI_Alltoallv").bytes).collect();
        assert!(
            volumes.windows(2).any(|v| v[0] != v[1]),
            "per-rank alltoallv volumes should differ: {volumes:?}"
        );
    }
}
