//! NPB BT (Block Tridiagonal) communication skeleton.
//!
//! BT uses the *multipartition* decomposition on a square process grid:
//! each ADI iteration performs three directional line-solve sweeps, each a
//! *pipelined wavefront* — a rank receives the incoming face for a k-block,
//! solves it, and forwards the outgoing face downstream, so ranks along the
//! sweep direction run staggered by one block — plus a copy-faces halo
//! exchange. "BT is a stencil code consisting almost exclusively of
//! asynchronous point-to-point communication operations, with only a few
//! collectives at the beginning and end of the execution" (paper §5.4).
//!
//! The staggering matters for the paper's Figure 7: receives are posted as
//! the pipeline needs them, so when computation shrinks, upstream ranks run
//! ahead and messages land in the receiver's unexpected queue (extra copy)
//! and eventually exhaust its buffering (flow-control stalls) — the
//! mechanisms behind the non-monotonic what-if curve.
//!
//! Class sizes use the published mesh dimensions; iteration counts are the
//! published counts divided by 5 (documented scaling).

use crate::util::{compute_phase, flops_time, Grid2d};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;
use mpisim::types::{ReqHandle, Src, TagSel};

struct Config {
    /// global mesh dimension (class table: S=12, W=24, A=64, B=102, C=162)
    n: usize,
    iters: usize,
}

fn config(class: Class) -> Config {
    match class {
        Class::S => Config { n: 12, iters: 12 },
        Class::W => Config { n: 24, iters: 20 },
        Class::A => Config { n: 64, iters: 40 },
        Class::B => Config { n: 102, iters: 40 },
        Class::C => Config { n: 162, iters: 40 },
    }
}

/// Solve-sweep faces carry 5 variables per point of one k-plane of the
/// tile; per-plane flop counts follow the 5x5 block solves.
pub(crate) struct SweepDims {
    pub cell: usize,
    pub face: u64,
    pub blocks: usize,
}

pub(crate) fn sweep_dims(n: usize, c: usize, vars: u64) -> SweepDims {
    let cell = (n / c.max(1)).max(2);
    SweepDims {
        cell,
        face: (cell * cell) as u64 * vars * 8,
        blocks: cell,
    }
}

/// One pipelined directional sweep: receive the incoming face per k-block
/// (posted when needed, as the solve does), solve, forward downstream.
/// Returns outstanding send handles to be completed by the caller.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipelined_sweep(
    ctx: &mut Ctx,
    params: &AppParams,
    up: Option<usize>,
    down: Option<usize>,
    tag: i32,
    face: u64,
    blocks: usize,
    block_work: mpisim::time::SimDuration,
    salt: u64,
    step_base: u64,
) -> Vec<ReqHandle> {
    let w = ctx.world();
    let mut sends = Vec::new();
    for blk in 0..blocks {
        if let Some(src) = up {
            let _ = ctx.recv(Src::Rank(src), TagSel::Is(tag), face, &w);
        }
        compute_phase(ctx, params, block_work, salt, step_base + blk as u64);
        if let Some(dst) = down {
            sends.push(ctx.isend(dst, tag, face, &w));
        }
    }
    sends
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let cfg = config(params.class);
    let iters = params.iters(cfg.iters);
    let w = ctx.world();
    let grid = Grid2d::square(ctx.size());
    let me = ctx.rank();
    let dims = sweep_dims(cfg.n, grid.rows, 5);
    // per-k-block solve work: 5x5 block tridiagonal over one plane
    let block_work = flops_time((dims.cell * dims.cell) as f64 * 250.0);
    let rhs_work = flops_time((dims.cell * dims.cell * dims.cell) as f64 * 350.0);

    // initialization: parameter broadcast from rank 0
    ctx.bcast(0, 3 * 8, &w);
    ctx.bcast(0, 5 * 8, &w);

    for iter in 0..iters {
        // compute_rhs
        compute_phase(ctx, params, rhs_work, 0xb700, iter as u64);

        // copy faces: halo exchange with the four torus neighbours
        let mut reqs = Vec::new();
        for (d, (dr, dc)) in [(0isize, 1isize), (1, 0)].into_iter().enumerate() {
            let next = grid.torus(me, dr, dc);
            let prev = grid.torus(me, -dr, -dc);
            reqs.push(ctx.irecv(Src::Rank(prev), TagSel::Is(20 + d as i32), dims.face, &w));
            reqs.push(ctx.isend(next, 20 + d as i32, dims.face, &w));
        }
        ctx.waitall(&reqs);

        // three pipelined solve sweeps: west→east, north→south, east→west
        let dirs: [(Option<usize>, Option<usize>); 3] = [
            (grid.west(me), grid.east(me)),
            (grid.north(me), grid.south(me)),
            (grid.east(me), grid.west(me)),
        ];
        for (d, (up, down)) in dirs.into_iter().enumerate() {
            let sends = pipelined_sweep(
                ctx,
                params,
                up,
                down,
                d as i32,
                dims.face,
                dims.blocks,
                block_work,
                0xb710 + d as u64,
                (iter * dims.blocks) as u64,
            );
            if !sends.is_empty() {
                ctx.waitall(&sends);
            }
        }
    }
    // verification
    ctx.allreduce(5 * 8, &w);
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "bt",
    description: "NPB BT: multipartition ADI, pipelined wavefront solves",
    run,
    valid_ranks: crate::util::is_square,
    fig6_ranks: &[16, 36, 64, 121],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn runs_on_square_grids() {
        for n in [4, 9, 16] {
            let params = AppParams::quick();
            let report = World::new(n)
                .network(network::blue_gene_l())
                .run(move |ctx| run(ctx, &params))
                .unwrap();
            assert!(report.stats.messages > 0, "n={n}");
        }
    }

    #[test]
    fn compute_scaling_reduces_time_monotonically_at_high_scales() {
        let time_at = |scale: f64| {
            let params = AppParams {
                class: crate::Class::S,
                iterations: Some(3),
                compute_scale: scale,
            };
            World::new(9)
                .network(network::blue_gene_l())
                .run(move |ctx| run(ctx, &params))
                .unwrap()
                .total_time
        };
        assert!(
            time_at(1.0) > time_at(0.5),
            "less compute must be faster here"
        );
    }
}
