//! Shared helpers: process grids, deterministic compute-time models.

use crate::AppParams;
use mpisim::ctx::Ctx;
use mpisim::time::SimDuration;
use mpisim::types::Fnv1a;

/// Is `n` a perfect square?
pub fn is_square(n: usize) -> bool {
    let r = (n as f64).sqrt().round() as usize;
    r * r == n
}

/// Is `n` a power of two?
pub fn is_pow2(n: usize) -> bool {
    n > 0 && n & (n - 1) == 0
}

/// Integer square root of a perfect square.
pub fn isqrt(n: usize) -> usize {
    let r = (n as f64).sqrt().round() as usize;
    debug_assert_eq!(r * r, n);
    r
}

/// Factor `n` into the most square `(rows, cols)` grid with `rows <= cols`.
pub fn near_square_grid(n: usize) -> (usize, usize) {
    let mut rows = (n as f64).sqrt().floor() as usize;
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), n / rows.max(1))
}

/// A 2-D process grid with row-major rank placement.
#[derive(Clone, Copy, Debug)]
pub struct Grid2d {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Grid2d {
    /// A `rows x cols` grid.
    pub fn new(rows: usize, cols: usize) -> Grid2d {
        Grid2d { rows, cols }
    }

    /// The square grid for a perfect-square rank count.
    pub fn square(n: usize) -> Grid2d {
        let c = isqrt(n);
        Grid2d { rows: c, cols: c }
    }

    /// `(row, col)` of `rank` (row-major).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at `(row, col)`.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// Neighbour above, if any.
    pub fn north(&self, rank: usize) -> Option<usize> {
        let (r, c) = self.coords(rank);
        (r > 0).then(|| self.rank_of(r - 1, c))
    }

    /// Neighbour below, if any.
    pub fn south(&self, rank: usize) -> Option<usize> {
        let (r, c) = self.coords(rank);
        (r + 1 < self.rows).then(|| self.rank_of(r + 1, c))
    }

    /// Neighbour to the left, if any.
    pub fn west(&self, rank: usize) -> Option<usize> {
        let (r, c) = self.coords(rank);
        (c > 0).then(|| self.rank_of(r, c - 1))
    }

    /// Neighbour to the right, if any.
    pub fn east(&self, rank: usize) -> Option<usize> {
        let (r, c) = self.coords(rank);
        (c + 1 < self.cols).then(|| self.rank_of(r, c + 1))
    }

    /// Wrapping (torus) neighbour at offset `(dr, dc)`.
    pub fn torus(&self, rank: usize, dr: isize, dc: isize) -> usize {
        let (r, c) = self.coords(rank);
        let r = (r as isize + dr).rem_euclid(self.rows as isize) as usize;
        let c = (c as isize + dc).rem_euclid(self.cols as isize) as usize;
        self.rank_of(r, c)
    }
}

/// Deterministic per-rank jitter: scales `base` by `1 ± pct` using a hash of
/// `(salt, rank, step)`. Gives the computation-time *variance* that
/// ScalaTrace's histograms exist to absorb, without host-dependent noise.
pub fn jittered(base: SimDuration, salt: u64, rank: usize, step: u64, pct: f64) -> SimDuration {
    let mut h = Fnv1a::new();
    h.write_u64(salt);
    h.write_u64(rank as u64);
    h.write_u64(step);
    let unit = (h.finish() % 10_000) as f64 / 10_000.0; // [0,1)
    let factor = 1.0 + pct * (2.0 * unit - 1.0);
    base.scale(factor)
}

/// Perform one computation phase: `base` jittered per (rank, step), then
/// scaled by the what-if knob.
pub fn compute_phase(ctx: &mut Ctx, params: &AppParams, base: SimDuration, salt: u64, step: u64) {
    let rank = ctx.rank();
    let d = jittered(base, salt, rank, step, 0.10).scale(params.compute_scale);
    ctx.compute(d);
}

/// Nanoseconds for `flops` floating-point operations at a fixed simulated
/// core speed (1 GFLOP/s — a deliberately slow early-2010s core, matching
/// the paper's Blue Gene/L era).
pub fn flops_time(flops: f64) -> SimDuration {
    SimDuration::from_secs_f64(flops / 1.0e9)
}

/// Nanoseconds for touching `bytes` of memory at a fixed simulated
/// bandwidth (2 GB/s) — the model for the memory-bound kernels.
pub fn mem_time(bytes: f64) -> SimDuration {
    SimDuration::from_secs_f64(bytes / 2.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squares_and_powers() {
        assert!(is_square(1) && is_square(64) && !is_square(48));
        assert!(is_pow2(1) && is_pow2(64) && !is_pow2(48));
        assert_eq!(isqrt(64), 8);
    }

    #[test]
    fn near_square_factors() {
        assert_eq!(near_square_grid(12), (3, 4));
        assert_eq!(near_square_grid(16), (4, 4));
        assert_eq!(near_square_grid(7), (1, 7));
        assert_eq!(near_square_grid(24), (4, 6));
    }

    #[test]
    fn grid_neighbors() {
        let g = Grid2d::new(3, 4);
        assert_eq!(g.coords(5), (1, 1));
        assert_eq!(g.north(5), Some(1));
        assert_eq!(g.south(5), Some(9));
        assert_eq!(g.west(5), Some(4));
        assert_eq!(g.east(5), Some(6));
        assert_eq!(g.north(2), None);
        assert_eq!(g.west(4), None);
        assert_eq!(g.torus(0, -1, -1), g.rank_of(2, 3));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base = SimDuration::from_usecs(100);
        let a = jittered(base, 1, 3, 7, 0.1);
        let b = jittered(base, 1, 3, 7, 0.1);
        assert_eq!(a, b);
        assert!(a.as_nanos() >= 90_000 && a.as_nanos() <= 110_000);
        let c = jittered(base, 1, 4, 7, 0.1);
        assert_ne!(a, c, "different ranks get different jitter (almost surely)");
    }

    #[test]
    fn time_models() {
        assert_eq!(flops_time(1e9).as_nanos(), 1_000_000_000);
        assert_eq!(mem_time(2e9).as_nanos(), 1_000_000_000);
    }
}
