//! NPB SP (Scalar Pentadiagonal) communication skeleton.
//!
//! Same multipartition layout and pipelined wavefront solves as BT
//! (see [`crate::bt`]) but with scalar (not 5x5 block) line solves:
//! smaller messages, less computation per k-block, and roughly twice the
//! iteration count — which is why SP is more communication-sensitive than
//! BT in the paper's Figure 6.

use crate::bt::{pipelined_sweep, sweep_dims};
use crate::util::{compute_phase, flops_time, Grid2d};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;
use mpisim::types::{Src, TagSel};

struct Config {
    n: usize,
    iters: usize,
}

fn config(class: Class) -> Config {
    // published sizes (S=12, W=36, A=64, B=102, C=162); iterations /5
    match class {
        Class::S => Config { n: 12, iters: 20 },
        Class::W => Config { n: 36, iters: 40 },
        Class::A => Config { n: 64, iters: 80 },
        Class::B => Config { n: 102, iters: 80 },
        Class::C => Config { n: 162, iters: 80 },
    }
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let cfg = config(params.class);
    let iters = params.iters(cfg.iters);
    let w = ctx.world();
    let grid = Grid2d::square(ctx.size());
    let me = ctx.rank();
    // scalar solves: 2 variables per face point
    let dims = sweep_dims(cfg.n, grid.rows, 2);
    let block_work = flops_time((dims.cell * dims.cell) as f64 * 60.0);
    let rhs_work = flops_time((dims.cell * dims.cell * dims.cell) as f64 * 180.0);

    ctx.bcast(0, 3 * 8, &w);

    for iter in 0..iters {
        compute_phase(ctx, params, rhs_work, 0x5b00, iter as u64);

        // copy faces
        let mut reqs = Vec::new();
        for (d, (dr, dc)) in [(0isize, 1isize), (1, 0)].into_iter().enumerate() {
            let next = grid.torus(me, dr, dc);
            let prev = grid.torus(me, -dr, -dc);
            reqs.push(ctx.irecv(Src::Rank(prev), TagSel::Is(20 + d as i32), dims.face, &w));
            reqs.push(ctx.isend(next, 20 + d as i32, dims.face, &w));
        }
        ctx.waitall(&reqs);

        let dirs: [(Option<usize>, Option<usize>); 3] = [
            (grid.west(me), grid.east(me)),
            (grid.north(me), grid.south(me)),
            (grid.east(me), grid.west(me)),
        ];
        for (d, (up, down)) in dirs.into_iter().enumerate() {
            let sends = pipelined_sweep(
                ctx,
                params,
                up,
                down,
                d as i32,
                dims.face,
                dims.blocks,
                block_work,
                0x5b10 + d as u64,
                (iter * dims.blocks) as u64,
            );
            if !sends.is_empty() {
                ctx.waitall(&sends);
            }
        }
    }
    ctx.allreduce(5 * 8, &w);
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "sp",
    description: "NPB SP: multipartition ADI with scalar pentadiagonal solves",
    run,
    valid_ranks: crate::util::is_square,
    fig6_ranks: &[16, 36, 64, 121],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn runs_and_is_deterministic() {
        let go = || {
            let params = AppParams::quick();
            World::new(9)
                .network(network::blue_gene_l())
                .run(move |ctx| run(ctx, &params))
                .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.total_time, b.total_time);
        assert!(a.stats.messages > 0);
    }
}
