//! NPB FT (3-D FFT) communication skeleton.
//!
//! FT solves a PDE with forward/inverse 3-D FFTs; the distributed
//! transpose between FFT stages is a global `MPI_Alltoall` moving the
//! entire complex grid every iteration — the heaviest collective user in
//! the suite. Each iteration also computes a checksum via `MPI_Allreduce`.
//! Memory-bound in the original (§5.1).

use crate::util::{compute_phase, is_pow2, mem_time};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;

struct Config {
    nx: usize,
    ny: usize,
    nz: usize,
    iters: usize,
}

fn config(class: Class) -> Config {
    // published grids: S=64^3, W=128x128x32, A=256x256x128, B=512x256x256,
    // C=512^3; grid scaled /2 per dimension for B and C, iterations as
    // published (6..20)
    match class {
        Class::S => Config {
            nx: 64,
            ny: 64,
            nz: 64,
            iters: 6,
        },
        Class::W => Config {
            nx: 128,
            ny: 128,
            nz: 32,
            iters: 6,
        },
        Class::A => Config {
            nx: 256,
            ny: 256,
            nz: 128,
            iters: 6,
        },
        Class::B => Config {
            nx: 256,
            ny: 128,
            nz: 128,
            iters: 20,
        },
        Class::C => Config {
            nx: 256,
            ny: 256,
            nz: 256,
            iters: 20,
        },
    }
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let cfg = config(params.class);
    let iters = params.iters(cfg.iters);
    let w = ctx.world();
    let p = ctx.size() as u64;
    let points = (cfg.nx * cfg.ny * cfg.nz) as u64;
    // complex doubles: 16 bytes per point; each rank holds points/p
    let local_bytes = points * 16 / p;
    // FFT work: ~5 N log2 N flops over the local slab, memory-bound model
    let fft_work = mem_time((local_bytes * 6) as f64);

    // parameter broadcast
    ctx.bcast(0, 6 * 8, &w);
    // initial forward transform
    compute_phase(ctx, params, fft_work, 0xf700, 0);
    ctx.alltoall(local_bytes, &w);

    for iter in 0..iters {
        // evolve + inverse FFT stage 1 (local)
        compute_phase(ctx, params, fft_work, 0xf710, iter as u64);
        // distributed transpose
        ctx.alltoall(local_bytes, &w);
        // FFT stage 2 (local)
        compute_phase(ctx, params, fft_work, 0xf720, iter as u64);
        // checksum
        ctx.allreduce(16, &w);
    }
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "ft",
    description: "NPB FT: 3-D FFT with global alltoall transposes",
    run,
    valid_ranks: is_pow2,
    fig6_ranks: &[16, 32, 64, 128],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn alltoall_dominates() {
        let params = AppParams::quick();
        let report = World::new(8)
            .network(network::blue_gene_l())
            .run(move |ctx| run(ctx, &params))
            .unwrap();
        // bcast + initial alltoall + 3x(alltoall+allreduce) + finalize
        assert_eq!(report.stats.collectives, 1 + 1 + 3 * 2 + 1);
    }
}
