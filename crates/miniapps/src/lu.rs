//! NPB LU (SSOR for Navier-Stokes) communication skeleton.
//!
//! LU decomposes the grid over a 2-D process mesh and performs, per SSOR
//! iteration, a *lower-triangular* wavefront sweep (data flows from the
//! north-west corner) followed by an *upper-triangular* sweep (flowing
//! back). The published implementation receives the incoming north/west
//! faces with **`MPI_ANY_SOURCE`** — "nodes use MPI_ANY_SOURCE to receive
//! messages in arbitrary order from their neighbors in a 2-D stencil"
//! (paper §4.4) — making LU the motivating application for Algorithm 2.

use crate::util::{compute_phase, flops_time, is_pow2, Grid2d};
use crate::{App, AppParams, Class};
use mpisim::ctx::Ctx;
use mpisim::types::{Src, TagSel};

struct Config {
    n: usize,
    iters: usize,
}

fn config(class: Class) -> Config {
    // published sizes (S=12, W=33, A=64, B=102, C=162); iterations are the
    // published counts (50..250) divided by 10
    match class {
        Class::S => Config { n: 12, iters: 5 },
        Class::W => Config { n: 33, iters: 15 },
        Class::A => Config { n: 64, iters: 25 },
        Class::B => Config { n: 102, iters: 25 },
        Class::C => Config { n: 162, iters: 25 },
    }
}

/// LU's process grid: npcols = 2^(log2(p)/2), rows get the remainder.
fn lu_grid(p: usize) -> Grid2d {
    let log2p = p.trailing_zeros() as usize;
    let cols = 1usize << (log2p / 2);
    Grid2d::new(p / cols, cols)
}

/// Run the skeleton on one rank (called by the registry).
pub fn run(ctx: &mut Ctx, params: &AppParams) {
    let cfg = config(params.class);
    let iters = params.iters(cfg.iters);
    let w = ctx.world();
    let grid = lu_grid(ctx.size());
    let me = ctx.rank();

    // faces carry 5 variables per boundary point of the local tile
    let tile = cfg.n / grid.cols.max(1);
    let face = (tile * 5 * 8) as u64;
    let cell_work = flops_time((tile * tile) as f64 * 150.0);

    ctx.bcast(0, 5 * 8, &w); // parameters

    for iter in 0..iters {
        // lower-triangular sweep: wait for north+west, compute, send
        // south+east. Receives use MPI_ANY_SOURCE as in the original.
        let upstream_lower =
            usize::from(grid.north(me).is_some()) + usize::from(grid.west(me).is_some());
        for _ in 0..upstream_lower {
            let _ = ctx.recv(Src::Any, TagSel::Is(10), face, &w);
        }
        compute_phase(ctx, params, cell_work, 0x1a00, iter as u64);
        if let Some(s) = grid.south(me) {
            ctx.send(s, 10, face, &w);
        }
        if let Some(e) = grid.east(me) {
            ctx.send(e, 10, face, &w);
        }

        // upper-triangular sweep: the wavefront flows back from south-east
        let upstream_upper =
            usize::from(grid.south(me).is_some()) + usize::from(grid.east(me).is_some());
        for _ in 0..upstream_upper {
            let _ = ctx.recv(Src::Any, TagSel::Is(11), face, &w);
        }
        compute_phase(ctx, params, cell_work, 0x1a01, iter as u64);
        if let Some(n) = grid.north(me) {
            ctx.send(n, 11, face, &w);
        }
        if let Some(wst) = grid.west(me) {
            ctx.send(wst, 11, face, &w);
        }

        // residual norm every 5 iterations (the original checks every
        // inorm steps)
        if iter % 5 == 4 {
            ctx.allreduce(5 * 8, &w);
        }
    }
    ctx.allreduce(5 * 8, &w);
    ctx.finalize();
}

/// Registry entry for this application.
pub const APP: App = App {
    name: "lu",
    description: "NPB LU: SSOR wavefront sweeps with MPI_ANY_SOURCE receives",
    run,
    valid_ranks: is_pow2,
    fig6_ranks: &[16, 32, 64, 128],
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::network;
    use mpisim::world::World;

    #[test]
    fn wavefront_completes_with_wildcards() {
        for n in [4, 8, 16] {
            let params = AppParams::quick();
            let report = World::new(n)
                .network(network::blue_gene_l())
                .run(move |ctx| run(ctx, &params))
                .unwrap();
            assert!(report.stats.messages > 0, "n={n}");
        }
    }

    #[test]
    fn traced_lu_contains_wildcards() {
        let params = AppParams::quick();
        let traced = scalatrace_probe(4, move |ctx| run(ctx, &params));
        assert!(traced);
    }

    /// Small helper to avoid a dev-dependency cycle: trace via hooks and
    /// look for ANY_SOURCE events directly.
    fn scalatrace_probe(n: usize, body: impl Fn(&mut Ctx) + Send + Sync + 'static) -> bool {
        use mpisim::hooks::{EventKind, RecordingHook};
        let (_, hooks) = World::new(n)
            .network(network::ideal())
            .run_hooked(|_| RecordingHook::default(), body)
            .unwrap();
        hooks.iter().any(|h| {
            h.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Recv { from: Src::Any, .. }))
        })
    }
}
