//! Every application must run at every problem class (with bounded
//! iterations) and respect its rank-count constraints and the compute-scale
//! knob.

use miniapps::{registry, AppParams, Class};
use mpisim::network;
use mpisim::world::World;

const CLASSES: [Class; 5] = [Class::S, Class::W, Class::A, Class::B, Class::C];

#[test]
fn every_app_runs_at_every_class() {
    for app in registry::all() {
        let ranks = [16, 9, 8]
            .into_iter()
            .find(|&n| (app.valid_ranks)(n))
            .unwrap();
        for class in CLASSES {
            let params = AppParams {
                class,
                iterations: Some(2), // bound the work; sizes still vary by class
                compute_scale: 1.0,
            };
            let report = World::new(ranks)
                .network(network::blue_gene_l())
                .run(move |ctx| (app.run)(ctx, &params))
                .unwrap_or_else(|e| panic!("{} class {} failed: {e}", app.name, class.name()));
            assert!(
                report.total_time.as_nanos() > 0,
                "{} class {}",
                app.name,
                class.name()
            );
        }
    }
}

#[test]
fn larger_classes_move_more_bytes() {
    // message volume must grow with the problem class (sanity of the class
    // tables); checked on a communication-heavy app
    let app = registry::lookup("ft").unwrap();
    let volume = |class: Class| {
        let params = AppParams {
            class,
            iterations: Some(2),
            compute_scale: 1.0,
        };
        let (_, hooks) = World::new(8)
            .network(network::ideal())
            .run_hooked(
                |_| mpisim::profile::MpiP::new(),
                move |ctx| (app.run)(ctx, &params),
            )
            .unwrap();
        mpisim::profile::MpiP::merge_all(hooks.iter()).total_bytes()
    };
    assert!(volume(Class::A) > volume(Class::S));
    assert!(volume(Class::C) > volume(Class::A));
}

#[test]
fn compute_scale_zero_still_completes() {
    // the Figure 7 workflow drives compute to 0; every app must tolerate it
    for app in registry::all() {
        let ranks = [16, 9, 8]
            .into_iter()
            .find(|&n| (app.valid_ranks)(n))
            .unwrap();
        let params = AppParams {
            class: Class::S,
            iterations: Some(2),
            compute_scale: 0.0,
        };
        World::new(ranks)
            .network(network::ethernet_cluster())
            .run(move |ctx| (app.run)(ctx, &params))
            .unwrap_or_else(|e| panic!("{} at compute_scale=0 failed: {e}", app.name));
    }
}

#[test]
fn invalid_rank_counts_are_rejected_by_metadata() {
    let bt = registry::lookup("bt").unwrap();
    assert!(!(bt.valid_ranks)(7), "bt needs square counts");
    assert!((bt.valid_ranks)(49));
    let cg = registry::lookup("cg").unwrap();
    assert!(!(cg.valid_ranks)(12), "cg needs powers of two");
    assert!((cg.valid_ranks)(64));
}

#[test]
fn deterministic_across_identical_runs_all_apps() {
    for app in registry::all() {
        let ranks = [8, 9].into_iter().find(|&n| (app.valid_ranks)(n)).unwrap();
        let go = || {
            let params = AppParams::quick();
            World::new(ranks)
                .network(network::blue_gene_l())
                .run(move |ctx| (app.run)(ctx, &params))
                .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.total_time, b.total_time, "{}", app.name);
        assert_eq!(a.stats, b.stats, "{}", app.name);
    }
}
