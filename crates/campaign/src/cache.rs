//! Disk cache of application traces, keyed by trace-config hash.
//!
//! Layout (one triple of files per entry, names are the 16-hex-digit key):
//!
//! ```text
//! <dir>/<key>.stbs   STBS binary trace (scalatrace::stream) — authoritative
//! <dir>/<key>.st     ScalaTrace-style text view (scalatrace::text)
//! <dir>/<key>.meta   key=value sidecar: stbs_fnv, trace_fnv, t_app_ns, …
//! ```
//!
//! The STBS file is the authoritative copy: self-checksummed, lossless
//! (timing histograms survive verbatim where the text view summarises them
//! to count × mean), and what [`TraceCache::load`] decodes. The text file
//! is the human-readable view of the same trace, kept in lockstep so
//! `less <key>.st` always shows what the binary holds. The sidecar records
//! the traced application's simulated wall-clock time (`t_app_ns`) plus
//! FNV-1a checksums of both representations, so silent corruption is
//! detected rather than replayed. All files are written atomically
//! (tmp + rename) and the sidecar last, so a crash mid-store leaves a
//! miss, not a lie. Corrupt or partially written entries are treated as
//! misses on load; [`TraceCache::fsck`] goes further and quarantines them
//! (including stranded `*.stbs.*.tmp` partial writes) so the wreckage is
//! visible and the next campaign run regenerates the entry. Entries from
//! before the binary format (text + sidecar only) still load.

use crate::hash;
use crate::journal::write_atomic;
use mpisim::time::SimTime;
use scalatrace::trace::Trace;
use std::io;
use std::path::{Path, PathBuf};

/// A trace cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct TraceCache {
    dir: PathBuf,
}

/// A successfully loaded cache entry.
#[derive(Clone, Debug)]
pub struct CachedTrace {
    /// The cached trace.
    pub trace: Trace,
    /// Simulated wall-clock time of the original traced run.
    pub t_app: SimTime,
    /// Was this entry stored as a *salvaged prefix* (recovered from an
    /// interrupted streamed capture via [`TraceCache::store_salvaged`])
    /// rather than a complete capture? Salvaged entries are valid traces
    /// of a shorter run: usable as evidence, but a resume should rerun
    /// the job to replace them with the full capture.
    pub salvaged: bool,
}

/// One entry quarantined by [`TraceCache::fsck`].
#[derive(Clone, Debug)]
pub struct QuarantinedEntry {
    /// The entry's hex key (file stem).
    pub key: String,
    /// Why it was condemned.
    pub reason: String,
}

/// Result of a cache integrity sweep.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Entries that passed every check.
    pub ok: usize,
    /// Entries moved aside as corrupt (they will regenerate as misses).
    pub quarantined: Vec<QuarantinedEntry>,
    /// Stranded `.tmp` files (crash mid-write) swept away.
    pub tmp_removed: usize,
    /// Stranded binary-trace `*.stbs.*.tmp` partial writes moved aside as
    /// `*.quarantined` (kept for forensics rather than deleted: a torn
    /// binary write is evidence of the crash that produced it).
    pub tmp_quarantined: usize,
}

impl FsckReport {
    /// Did every entry check out?
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} ok, {} quarantined, {} stranded tmp file(s) removed, {} torn binary write(s) quarantined",
            self.ok,
            self.quarantined.len(),
            self.tmp_removed,
            self.tmp_quarantined
        )?;
        for q in &self.quarantined {
            writeln!(f, "quarantined {}: {}", q.key, q.reason)?;
        }
        Ok(())
    }
}

impl TraceCache {
    /// Open (and create if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<TraceCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn trace_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.st", hash::hex(key)))
    }

    fn stbs_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.stbs", hash::hex(key)))
    }

    fn meta_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.meta", hash::hex(key)))
    }

    /// Look up a trace by key. Any read, parse, or integrity failure —
    /// missing files, truncated trace, malformed sidecar, checksum
    /// mismatch — is a miss. The STBS binary is authoritative when
    /// present (lossless timing histograms); entries from before the
    /// binary format fall back to the checksummed text view.
    pub fn load(&self, key: u64) -> Option<CachedTrace> {
        let meta = std::fs::read_to_string(self.meta_path(key)).ok()?;
        let (fnv, t_app_ns) = parse_meta(&meta)?;
        let t_app = SimTime::from_nanos(t_app_ns);
        if let Ok(bytes) = std::fs::read(self.stbs_path(key)) {
            // Sidecar cross-check on top of the file's internal checksum:
            // a swapped or stale .stbs file hashes clean internally but
            // not against its own entry's sidecar.
            let stbs_fnv = parse_meta_key(&meta, "stbs_fnv")?;
            if stbs_fnv != hash::fnv1a(&bytes) {
                return None;
            }
            let trace = scalatrace::stream::trace_from_bytes(&bytes).ok()?;
            return Some(CachedTrace {
                trace,
                t_app,
                salvaged: meta_is_salvaged(&meta),
            });
        }
        let text = std::fs::read_to_string(self.trace_path(key)).ok()?;
        if fnv != hash::fnv1a(text.as_bytes()) {
            return None;
        }
        let trace = scalatrace::text::from_text(&text).ok()?;
        Some(CachedTrace {
            trace,
            t_app,
            salvaged: meta_is_salvaged(&meta),
        })
    }

    /// Store a trace under `key`. `pairs` (the job's trace config) is
    /// recorded in the sidecar for human inspection. All files go through
    /// tmp + rename — binary first, text view, then the checksum-bearing
    /// sidecar last — so no interleaving of a crash with this call can
    /// produce a loadable lie.
    pub fn store(
        &self,
        key: u64,
        trace: &Trace,
        t_app: SimTime,
        pairs: &[(String, String)],
    ) -> io::Result<()> {
        self.store_impl(key, trace, t_app, pairs, false)
    }

    /// Store a trace recovered by segment salvage: a verified *prefix* of
    /// an interrupted streamed capture. Identical to [`TraceCache::store`]
    /// except the sidecar carries a `salvaged=true` marker, which
    /// [`TraceCache::load`] surfaces so a campaign resume knows to rerun
    /// the job and upgrade the entry to a complete capture.
    pub fn store_salvaged(
        &self,
        key: u64,
        trace: &Trace,
        t_app: SimTime,
        pairs: &[(String, String)],
    ) -> io::Result<()> {
        self.store_impl(key, trace, t_app, pairs, true)
    }

    fn store_impl(
        &self,
        key: u64,
        trace: &Trace,
        t_app: SimTime,
        pairs: &[(String, String)],
        salvaged: bool,
    ) -> io::Result<()> {
        let bytes = scalatrace::stream::trace_to_bytes(trace);
        let text = scalatrace::text::to_text(trace);
        write_atomic(&self.stbs_path(key), &bytes)?;
        write_atomic(&self.trace_path(key), text.as_bytes())?;
        let mut meta = String::from("format=stbs\n");
        meta.push_str(&format!("stbs_fnv={}\n", hash::hex(hash::fnv1a(&bytes))));
        meta.push_str(&format!(
            "trace_fnv={}\n",
            hash::hex(hash::fnv1a(text.as_bytes()))
        ));
        meta.push_str(&format!("t_app_ns={}\n", t_app.as_nanos()));
        if salvaged {
            meta.push_str("salvaged=true\n");
        }
        for (k, v) in pairs {
            meta.push_str(&format!("{k}={v}\n"));
        }
        write_atomic(&self.meta_path(key), meta.as_bytes())
    }

    /// Remove an entry (all three files) from the cache. Missing files
    /// are fine — evicting a partial or absent entry is a no-op, not an
    /// error. Used by campaign resume to drop a salvaged prefix so the
    /// rerun re-traces the application and stores the complete capture.
    pub fn evict(&self, key: u64) {
        for path in [
            self.stbs_path(key),
            self.trace_path(key),
            self.meta_path(key),
        ] {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Number of complete entries currently in the cache.
    pub fn len(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "st"))
            .count()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Integrity sweep: verify every entry's checksums (the STBS binary's
    /// internal frame, the sidecar's hashes of both representations, and
    /// the text view's syntax); rename corrupt entries to `*.quarantined`
    /// (making them invisible to [`TraceCache::load`], so the next run
    /// regenerates them); delete stranded generic `.tmp` files from
    /// interrupted writes and quarantine torn `*.stbs.*.tmp` binary
    /// writes.
    pub fn fsck(&self) -> io::Result<FsckReport> {
        let mut report = FsckReport::default();
        let mut stems: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                if name.contains(".stbs.") {
                    // A torn binary write: keep the bytes for forensics,
                    // but move them out of the namespace load scans.
                    std::fs::rename(&path, path.with_file_name(format!("{name}.quarantined")))?;
                    report.tmp_quarantined += 1;
                } else {
                    std::fs::remove_file(&path)?;
                    report.tmp_removed += 1;
                }
            } else if let Some(stem) = name.strip_suffix(".stbs") {
                stems.push(stem.to_string());
            } else if let Some(stem) = name.strip_suffix(".st") {
                stems.push(stem.to_string());
            } else if let Some(stem) = name.strip_suffix(".meta") {
                // An orphaned sidecar (trace gone) is condemned below when
                // its stem has no trace partner.
                if !self.dir.join(format!("{stem}.st")).exists()
                    && !self.dir.join(format!("{stem}.stbs")).exists()
                {
                    stems.push(stem.to_string());
                }
            }
        }
        stems.sort();
        stems.dedup();
        for stem in stems {
            match self.check_entry(&stem) {
                Ok(()) => report.ok += 1,
                Err(reason) => {
                    self.quarantine(&stem)?;
                    report
                        .quarantined
                        .push(QuarantinedEntry { key: stem, reason });
                }
            }
        }
        Ok(report)
    }

    /// Every invariant `load` relies on, as a named verdict.
    fn check_entry(&self, stem: &str) -> Result<(), String> {
        let trace_path = self.dir.join(format!("{stem}.st"));
        let stbs_path = self.dir.join(format!("{stem}.stbs"));
        let meta_path = self.dir.join(format!("{stem}.meta"));
        let text =
            std::fs::read_to_string(&trace_path).map_err(|e| format!("unreadable trace: {e}"))?;
        let meta = std::fs::read_to_string(&meta_path)
            .map_err(|e| format!("missing or unreadable sidecar: {e}"))?;
        let (fnv, _) = parse_meta(&meta).ok_or("sidecar lacks trace_fnv/t_app_ns")?;
        if fnv != hash::fnv1a(text.as_bytes()) {
            return Err(format!(
                "checksum mismatch: sidecar says {}, trace hashes to {}",
                hash::hex(fnv),
                hash::hex(hash::fnv1a(text.as_bytes()))
            ));
        }
        let parsed =
            scalatrace::text::from_text(&text).map_err(|e| format!("unparsable trace: {e}"))?;
        if stbs_path.exists() {
            let bytes =
                std::fs::read(&stbs_path).map_err(|e| format!("unreadable binary trace: {e}"))?;
            let stbs_fnv =
                parse_meta_key(&meta, "stbs_fnv").ok_or("sidecar lacks stbs_fnv for binary")?;
            if stbs_fnv != hash::fnv1a(&bytes) {
                return Err(format!(
                    "binary checksum mismatch: sidecar says {}, file hashes to {}",
                    hash::hex(stbs_fnv),
                    hash::hex(hash::fnv1a(&bytes))
                ));
            }
            let trace = scalatrace::stream::trace_from_bytes(&bytes)
                .map_err(|e| format!("corrupt binary trace: {e}"))?;
            // The text file is a *view* of the binary; the two drifting
            // apart means one of them lies about the entry's contents.
            if scalatrace::text::to_text(&trace) != text {
                return Err("text view disagrees with binary trace".into());
            }
            let _ = parsed; // binary is authoritative; text already verified
        } else if parse_meta_key(&meta, "stbs_fnv").is_some() {
            return Err("sidecar names a binary trace but the .stbs file is missing".into());
        }
        Ok(())
    }

    /// Move all files of an entry aside (best-effort: any may already
    /// be missing, which is part of why it was condemned).
    fn quarantine(&self, stem: &str) -> io::Result<()> {
        for ext in ["stbs", "st", "meta"] {
            let from = self.dir.join(format!("{stem}.{ext}"));
            if from.exists() {
                std::fs::rename(&from, self.dir.join(format!("{stem}.{ext}.quarantined")))?;
            }
        }
        Ok(())
    }
}

/// Extract one hex-valued sidecar key.
/// Does the sidecar mark this entry as a salvaged prefix?
fn meta_is_salvaged(meta: &str) -> bool {
    meta.lines().any(|l| l.trim() == "salvaged=true")
}

fn parse_meta_key(meta: &str, key: &str) -> Option<u64> {
    meta.lines()
        .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
}

/// Extract `(trace_fnv, t_app_ns)` from sidecar text.
fn parse_meta(meta: &str) -> Option<(u64, u64)> {
    let fnv = meta
        .lines()
        .find_map(|l| l.strip_prefix("trace_fnv="))
        .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())?;
    let t_app_ns = meta
        .lines()
        .find_map(|l| l.strip_prefix("t_app_ns="))
        .and_then(|v| v.trim().parse().ok())?;
    Some((fnv, t_app_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniapps::{registry, AppParams};
    use mpisim::network;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "campaign-cache-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace() -> (Trace, SimTime) {
        let app = registry::lookup("ring").unwrap();
        let params = AppParams::quick();
        let traced =
            scalatrace::trace_app(4, network::ideal(), move |ctx| (app.run)(ctx, &params)).unwrap();
        (traced.trace, traced.report.total_time)
    }

    #[test]
    fn salvaged_marker_roundtrips_and_eviction_clears_the_entry() {
        let cache = TraceCache::open(temp_dir("salvaged")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store_salvaged(7, &trace, t_app, &[]).unwrap();
        let hit = cache.load(7).expect("salvaged entry loads");
        assert!(hit.salvaged, "the marker must survive the round-trip");
        assert_eq!(hit.trace, trace);
        // An ordinary store is not flagged, and the salvaged entry still
        // passes fsck — it is valid data, just known-partial.
        cache.store(8, &trace, t_app, &[]).unwrap();
        assert!(!cache.load(8).unwrap().salvaged);
        assert!(cache.fsck().unwrap().clean());
        // Eviction removes all three files; evicting again is a no-op.
        cache.evict(7);
        assert!(cache.load(7).is_none());
        cache.evict(7);
        assert_eq!(cache.len(), 1);
        assert!(cache.fsck().unwrap().clean(), "no orphans left behind");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn roundtrips_trace_and_timing() {
        let cache = TraceCache::open(temp_dir("roundtrip")).unwrap();
        let (trace, t_app) = sample_trace();
        assert!(cache.load(42).is_none());
        cache
            .store(42, &trace, t_app, &[("app".into(), "ring".into())])
            .unwrap();
        let hit = cache.load(42).expect("entry just stored");
        assert_eq!(hit.t_app, t_app);
        scalatrace::semantically_equal(&trace, &hit.trace).unwrap();
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = TraceCache::open(temp_dir("corrupt")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(7, &trace, t_app, &[]).unwrap();

        // Truncated binary trace (the frame checksum catches it).
        std::fs::write(cache.stbs_path(7), b"STBS-but-not-really").unwrap();
        assert!(cache.load(7).is_none());

        // Valid traces, mangled sidecar.
        cache.store(7, &trace, t_app, &[]).unwrap();
        std::fs::write(cache.meta_path(7), "t_app_ns=notanumber\n").unwrap();
        assert!(cache.load(7).is_none());

        // Valid traces, missing sidecar.
        cache.store(7, &trace, t_app, &[]).unwrap();
        std::fs::remove_file(cache.meta_path(7)).unwrap();
        assert!(cache.load(7).is_none());

        // Legacy path (no binary): garbage text is a miss.
        cache.store(7, &trace, t_app, &[]).unwrap();
        std::fs::remove_file(cache.stbs_path(7)).unwrap();
        std::fs::write(cache.trace_path(7), "nranks 4\ngarbage").unwrap();
        assert!(cache.load(7).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn single_flipped_byte_is_detected() {
        let cache = TraceCache::open(temp_dir("bitflip")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(9, &trace, t_app, &[]).unwrap();
        // Flip one byte mid-payload in the authoritative binary: only the
        // checksum can tell it is not the trace that was stored.
        let mut bytes = std::fs::read(cache.stbs_path(9)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(cache.stbs_path(9), &bytes).unwrap();
        assert!(cache.load(9).is_none(), "corrupt entry must not load");

        // Same property on the legacy text-only path: flip a numeric digit
        // (still parses as a trace, so only the sidecar hash catches it).
        cache.store(9, &trace, t_app, &[]).unwrap();
        std::fs::remove_file(cache.stbs_path(9)).unwrap();
        let mut bytes = std::fs::read(cache.trace_path(9)).unwrap();
        let pos = bytes
            .iter()
            .position(|b| b.is_ascii_digit())
            .expect("traces contain numbers");
        bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
        std::fs::write(cache.trace_path(9), &bytes).unwrap();
        assert!(cache.load(9).is_none(), "corrupt entry must not load");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn swapped_binaries_between_entries_are_detected() {
        // Each entry's .stbs is internally checksum-clean; only the sidecar
        // cross-check can notice the files were exchanged.
        let cache = TraceCache::open(temp_dir("swap")).unwrap();
        let (trace, t_app) = sample_trace();
        let mut other = trace.clone();
        other.nodes.truncate(other.nodes.len().saturating_sub(1));
        cache.store(1, &trace, t_app, &[]).unwrap();
        cache.store(2, &other, t_app, &[]).unwrap();
        let a = std::fs::read(cache.stbs_path(1)).unwrap();
        let b = std::fs::read(cache.stbs_path(2)).unwrap();
        std::fs::write(cache.stbs_path(1), &b).unwrap();
        std::fs::write(cache.stbs_path(2), &a).unwrap();
        assert!(cache.load(1).is_none(), "swapped binary must not load");
        assert!(cache.load(2).is_none(), "swapped binary must not load");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn legacy_text_only_entries_still_load() {
        let cache = TraceCache::open(temp_dir("legacy-load")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(4, &trace, t_app, &[]).unwrap();
        // Simulate an entry written before the binary format existed.
        std::fs::remove_file(cache.stbs_path(4)).unwrap();
        let meta = std::fs::read_to_string(cache.meta_path(4)).unwrap();
        let stripped: String = meta
            .lines()
            .filter(|l| !l.starts_with("stbs_fnv=") && !l.starts_with("format="))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(cache.meta_path(4), stripped).unwrap();
        let hit = cache.load(4).expect("legacy entry loads");
        assert_eq!(hit.t_app, t_app);
        scalatrace::semantically_equal(&trace, &hit.trace).unwrap();
        let report = cache.fsck().unwrap();
        assert!(report.clean(), "{report}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TraceCache::open(temp_dir("keys")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(1, &trace, t_app, &[]).unwrap();
        assert!(cache.load(2).is_none());
        assert!(cache.load(1).is_some());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn store_leaves_no_tmp_files() {
        let cache = TraceCache::open(temp_dir("atomic")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(3, &trace, t_app, &[]).unwrap();
        for entry in std::fs::read_dir(cache.dir()).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(!name.ends_with(".tmp"), "tmp residue: {name}");
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fsck_quarantines_corruption_and_next_load_misses() {
        let cache = TraceCache::open(temp_dir("fsck")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(1, &trace, t_app, &[]).unwrap();
        cache.store(2, &trace, t_app, &[]).unwrap();
        cache.store(3, &trace, t_app, &[]).unwrap();

        // Entry 2: flip a byte. Entry 3: orphan the sidecar. Plus a
        // stranded tmp file from a hypothetical crash mid-write.
        let mut bytes = std::fs::read(cache.trace_path(2)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(cache.trace_path(2), &bytes).unwrap();
        std::fs::remove_file(cache.trace_path(3)).unwrap();
        std::fs::write(cache.dir().join("0000.st.12345.tmp"), "partial").unwrap();

        let report = cache.fsck().unwrap();
        assert!(!report.clean());
        assert_eq!(report.ok, 1);
        assert_eq!(report.tmp_removed, 1);
        let keys: Vec<&str> = report.quarantined.iter().map(|q| q.key.as_str()).collect();
        assert_eq!(keys, vec![hash::hex(2).as_str(), hash::hex(3).as_str()]);
        assert!(report.quarantined[0].reason.contains("checksum"));

        // Quarantined entries are invisible: the campaign regenerates.
        assert!(cache.load(2).is_none());
        assert!(cache.load(1).is_some(), "healthy entries survive fsck");
        cache.store(2, &trace, t_app, &[]).unwrap();
        assert!(cache.load(2).is_some());

        // A second sweep over the repaired cache is clean.
        let report2 = cache.fsck().unwrap();
        assert!(report2.clean(), "{report2}");
        assert_eq!(report2.ok, 2);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fsck_quarantines_torn_binary_writes_and_binary_corruption() {
        let cache = TraceCache::open(temp_dir("fsck-stbs")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(1, &trace, t_app, &[]).unwrap();
        cache.store(2, &trace, t_app, &[]).unwrap();
        cache.store(3, &trace, t_app, &[]).unwrap();

        // A torn binary write stranded by a crash mid-store: quarantined
        // (kept for forensics), not deleted like generic tmp files.
        let torn = cache.dir().join("0001.stbs.4242.tmp");
        std::fs::write(&torn, b"half a frame").unwrap();
        // Entry 2: flip one byte mid-payload in the binary. The text view
        // and its checksum stay pristine, so only the binary checks see it.
        let mut bytes = std::fs::read(cache.stbs_path(2)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(cache.stbs_path(2), &bytes).unwrap();
        // Entry 3: text view drifts from the binary (both individually
        // checksum-clean — regenerate the sidecar to match the new text).
        let mut other = trace.clone();
        other.nodes.truncate(other.nodes.len().saturating_sub(1));
        let drifted = scalatrace::text::to_text(&other);
        std::fs::write(cache.trace_path(3), &drifted).unwrap();
        let meta = std::fs::read_to_string(cache.meta_path(3)).unwrap();
        let patched: String = meta
            .lines()
            .map(|l| {
                if l.starts_with("trace_fnv=") {
                    format!("trace_fnv={}\n", hash::hex(hash::fnv1a(drifted.as_bytes())))
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        std::fs::write(cache.meta_path(3), patched).unwrap();

        let report = cache.fsck().unwrap();
        assert_eq!(report.tmp_quarantined, 1, "{report}");
        assert_eq!(report.tmp_removed, 0);
        assert_eq!(report.ok, 1);
        assert!(!torn.exists(), "torn tmp must be moved aside");
        assert!(
            cache.dir().join("0001.stbs.4242.tmp.quarantined").exists(),
            "torn tmp is kept under a .quarantined name"
        );
        let keys: Vec<&str> = report.quarantined.iter().map(|q| q.key.as_str()).collect();
        assert_eq!(keys, vec![hash::hex(2).as_str(), hash::hex(3).as_str()]);
        assert!(report.quarantined[0].reason.contains("binary checksum"));
        assert!(report.quarantined[1].reason.contains("disagrees"));
        assert!(cache.load(2).is_none());
        assert!(cache.load(3).is_none());
        assert!(cache.load(1).is_some(), "healthy entry survives");

        // A second sweep finds nothing further to condemn.
        let report2 = cache.fsck().unwrap();
        assert!(report2.clean(), "{report2}");
        assert_eq!(report2.tmp_quarantined, 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn entries_without_checksum_are_not_trusted() {
        // A sidecar from before checksums (or hand-edited) must not load.
        let cache = TraceCache::open(temp_dir("legacy")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(5, &trace, t_app, &[]).unwrap();
        let meta = std::fs::read_to_string(cache.meta_path(5)).unwrap();
        let stripped: String = meta
            .lines()
            .filter(|l| !l.starts_with("trace_fnv="))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(cache.meta_path(5), stripped).unwrap();
        assert!(cache.load(5).is_none());
        let report = cache.fsck().unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].reason.contains("trace_fnv"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
