//! Disk cache of application traces, keyed by trace-config hash.
//!
//! Layout (one pair of files per entry, names are the 16-hex-digit key):
//!
//! ```text
//! <dir>/<key>.st     ScalaTrace-style text trace (scalatrace::text)
//! <dir>/<key>.meta   key=value sidecar: t_app_ns plus the config pairs
//! ```
//!
//! The sidecar records the traced application's simulated wall-clock time
//! (`t_app_ns`), so a cache hit can verify timing accuracy without
//! re-running the application. Corrupt or partially written entries are
//! treated as misses — the campaign re-traces and overwrites them.

use crate::hash;
use mpisim::time::SimTime;
use scalatrace::trace::Trace;
use std::io;
use std::path::{Path, PathBuf};

/// A trace cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct TraceCache {
    dir: PathBuf,
}

/// A successfully loaded cache entry.
#[derive(Clone, Debug)]
pub struct CachedTrace {
    /// The cached trace.
    pub trace: Trace,
    /// Simulated wall-clock time of the original traced run.
    pub t_app: SimTime,
}

impl TraceCache {
    /// Open (and create if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<TraceCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn trace_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.st", hash::hex(key)))
    }

    fn meta_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.meta", hash::hex(key)))
    }

    /// Look up a trace by key. Any read or parse failure — missing files,
    /// truncated trace, malformed sidecar — is a miss.
    pub fn load(&self, key: u64) -> Option<CachedTrace> {
        let text = std::fs::read_to_string(self.trace_path(key)).ok()?;
        let trace = scalatrace::text::from_text(&text).ok()?;
        let meta = std::fs::read_to_string(self.meta_path(key)).ok()?;
        let t_app_ns: u64 = meta
            .lines()
            .find_map(|l| l.strip_prefix("t_app_ns="))
            .and_then(|v| v.trim().parse().ok())?;
        Some(CachedTrace {
            trace,
            t_app: SimTime::from_nanos(t_app_ns),
        })
    }

    /// Store a trace under `key`. `pairs` (the job's trace config) is
    /// recorded in the sidecar for human inspection. The sidecar is written
    /// last so a crash mid-store leaves a miss, not a lie.
    pub fn store(
        &self,
        key: u64,
        trace: &Trace,
        t_app: SimTime,
        pairs: &[(String, String)],
    ) -> io::Result<()> {
        std::fs::write(self.trace_path(key), scalatrace::text::to_text(trace))?;
        let mut meta = format!("t_app_ns={}\n", t_app.as_nanos());
        for (k, v) in pairs {
            meta.push_str(&format!("{k}={v}\n"));
        }
        std::fs::write(self.meta_path(key), meta)
    }

    /// Number of complete entries currently in the cache.
    pub fn len(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "st"))
            .count()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniapps::{registry, AppParams};
    use mpisim::network;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "campaign-cache-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace() -> (Trace, SimTime) {
        let app = registry::lookup("ring").unwrap();
        let params = AppParams::quick();
        let traced =
            scalatrace::trace_app(4, network::ideal(), move |ctx| (app.run)(ctx, &params)).unwrap();
        (traced.trace, traced.report.total_time)
    }

    #[test]
    fn roundtrips_trace_and_timing() {
        let cache = TraceCache::open(temp_dir("roundtrip")).unwrap();
        let (trace, t_app) = sample_trace();
        assert!(cache.load(42).is_none());
        cache
            .store(42, &trace, t_app, &[("app".into(), "ring".into())])
            .unwrap();
        let hit = cache.load(42).expect("entry just stored");
        assert_eq!(hit.t_app, t_app);
        scalatrace::semantically_equal(&trace, &hit.trace).unwrap();
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = TraceCache::open(temp_dir("corrupt")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(7, &trace, t_app, &[]).unwrap();

        // Truncated trace body.
        std::fs::write(cache.trace_path(7), "nranks 4\ngarbage").unwrap();
        assert!(cache.load(7).is_none());

        // Valid trace, mangled sidecar.
        cache.store(7, &trace, t_app, &[]).unwrap();
        std::fs::write(cache.meta_path(7), "t_app_ns=notanumber\n").unwrap();
        assert!(cache.load(7).is_none());

        // Valid trace, missing sidecar.
        cache.store(7, &trace, t_app, &[]).unwrap();
        std::fs::remove_file(cache.meta_path(7)).unwrap();
        assert!(cache.load(7).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TraceCache::open(temp_dir("keys")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(1, &trace, t_app, &[]).unwrap();
        assert!(cache.load(2).is_none());
        assert!(cache.load(1).is_some());
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
