//! Disk cache of application traces, keyed by trace-config hash.
//!
//! Layout (one pair of files per entry, names are the 16-hex-digit key):
//!
//! ```text
//! <dir>/<key>.st     ScalaTrace-style text trace (scalatrace::text)
//! <dir>/<key>.meta   key=value sidecar: trace_fnv, t_app_ns, config pairs
//! ```
//!
//! The sidecar records the traced application's simulated wall-clock time
//! (`t_app_ns`), so a cache hit can verify timing accuracy without
//! re-running the application, and an FNV-1a checksum of the trace text
//! (`trace_fnv`), so silent corruption is detected rather than replayed.
//! Both files are written atomically (tmp + rename) and the sidecar last,
//! so a crash mid-store leaves a miss, not a lie. Corrupt or partially
//! written entries are treated as misses on load; [`TraceCache::fsck`]
//! goes further and quarantines them so the wreckage is visible and the
//! next campaign run regenerates the entry.

use crate::hash;
use crate::journal::write_atomic;
use mpisim::time::SimTime;
use scalatrace::trace::Trace;
use std::io;
use std::path::{Path, PathBuf};

/// A trace cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct TraceCache {
    dir: PathBuf,
}

/// A successfully loaded cache entry.
#[derive(Clone, Debug)]
pub struct CachedTrace {
    /// The cached trace.
    pub trace: Trace,
    /// Simulated wall-clock time of the original traced run.
    pub t_app: SimTime,
}

/// One entry quarantined by [`TraceCache::fsck`].
#[derive(Clone, Debug)]
pub struct QuarantinedEntry {
    /// The entry's hex key (file stem).
    pub key: String,
    /// Why it was condemned.
    pub reason: String,
}

/// Result of a cache integrity sweep.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Entries that passed every check.
    pub ok: usize,
    /// Entries moved aside as corrupt (they will regenerate as misses).
    pub quarantined: Vec<QuarantinedEntry>,
    /// Stranded `.tmp` files (crash mid-write) swept away.
    pub tmp_removed: usize,
}

impl FsckReport {
    /// Did every entry check out?
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} ok, {} quarantined, {} stranded tmp file(s) removed",
            self.ok,
            self.quarantined.len(),
            self.tmp_removed
        )?;
        for q in &self.quarantined {
            writeln!(f, "quarantined {}: {}", q.key, q.reason)?;
        }
        Ok(())
    }
}

impl TraceCache {
    /// Open (and create if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<TraceCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn trace_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.st", hash::hex(key)))
    }

    fn meta_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.meta", hash::hex(key)))
    }

    /// Look up a trace by key. Any read, parse, or integrity failure —
    /// missing files, truncated trace, malformed sidecar, checksum
    /// mismatch — is a miss.
    pub fn load(&self, key: u64) -> Option<CachedTrace> {
        let text = std::fs::read_to_string(self.trace_path(key)).ok()?;
        let meta = std::fs::read_to_string(self.meta_path(key)).ok()?;
        let (fnv, t_app_ns) = parse_meta(&meta)?;
        if fnv != hash::fnv1a(text.as_bytes()) {
            return None;
        }
        let trace = scalatrace::text::from_text(&text).ok()?;
        Some(CachedTrace {
            trace,
            t_app: SimTime::from_nanos(t_app_ns),
        })
    }

    /// Store a trace under `key`. `pairs` (the job's trace config) is
    /// recorded in the sidecar for human inspection. Both files go through
    /// tmp + rename, and the checksum-bearing sidecar lands last, so no
    /// interleaving of a crash with this call can produce a loadable lie.
    pub fn store(
        &self,
        key: u64,
        trace: &Trace,
        t_app: SimTime,
        pairs: &[(String, String)],
    ) -> io::Result<()> {
        let text = scalatrace::text::to_text(trace);
        write_atomic(&self.trace_path(key), text.as_bytes())?;
        let mut meta = format!("trace_fnv={}\n", hash::hex(hash::fnv1a(text.as_bytes())));
        meta.push_str(&format!("t_app_ns={}\n", t_app.as_nanos()));
        for (k, v) in pairs {
            meta.push_str(&format!("{k}={v}\n"));
        }
        write_atomic(&self.meta_path(key), meta.as_bytes())
    }

    /// Number of complete entries currently in the cache.
    pub fn len(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "st"))
            .count()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Integrity sweep: verify every entry's checksum, sidecar, and trace
    /// syntax; rename corrupt entries to `*.quarantined` (making them
    /// invisible to [`TraceCache::load`], so the next run regenerates
    /// them) and delete stranded `.tmp` files from interrupted writes.
    pub fn fsck(&self) -> io::Result<FsckReport> {
        let mut report = FsckReport::default();
        let mut stems: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                std::fs::remove_file(&path)?;
                report.tmp_removed += 1;
            } else if let Some(stem) = name.strip_suffix(".st") {
                stems.push(stem.to_string());
            } else if let Some(stem) = name.strip_suffix(".meta") {
                // An orphaned sidecar (trace gone) is condemned below when
                // its stem has no `.st` partner.
                if !self.dir.join(format!("{stem}.st")).exists() {
                    stems.push(stem.to_string());
                }
            }
        }
        stems.sort();
        stems.dedup();
        for stem in stems {
            match self.check_entry(&stem) {
                Ok(()) => report.ok += 1,
                Err(reason) => {
                    self.quarantine(&stem)?;
                    report
                        .quarantined
                        .push(QuarantinedEntry { key: stem, reason });
                }
            }
        }
        Ok(report)
    }

    /// Every invariant `load` relies on, as a named verdict.
    fn check_entry(&self, stem: &str) -> Result<(), String> {
        let trace_path = self.dir.join(format!("{stem}.st"));
        let meta_path = self.dir.join(format!("{stem}.meta"));
        let text =
            std::fs::read_to_string(&trace_path).map_err(|e| format!("unreadable trace: {e}"))?;
        let meta = std::fs::read_to_string(&meta_path)
            .map_err(|e| format!("missing or unreadable sidecar: {e}"))?;
        let (fnv, _) = parse_meta(&meta).ok_or("sidecar lacks trace_fnv/t_app_ns")?;
        if fnv != hash::fnv1a(text.as_bytes()) {
            return Err(format!(
                "checksum mismatch: sidecar says {}, trace hashes to {}",
                hash::hex(fnv),
                hash::hex(hash::fnv1a(text.as_bytes()))
            ));
        }
        scalatrace::text::from_text(&text).map_err(|e| format!("unparsable trace: {e}"))?;
        Ok(())
    }

    /// Move both files of an entry aside (best-effort: either may already
    /// be missing, which is part of why it was condemned).
    fn quarantine(&self, stem: &str) -> io::Result<()> {
        for ext in ["st", "meta"] {
            let from = self.dir.join(format!("{stem}.{ext}"));
            if from.exists() {
                std::fs::rename(&from, self.dir.join(format!("{stem}.{ext}.quarantined")))?;
            }
        }
        Ok(())
    }
}

/// Extract `(trace_fnv, t_app_ns)` from sidecar text.
fn parse_meta(meta: &str) -> Option<(u64, u64)> {
    let fnv = meta
        .lines()
        .find_map(|l| l.strip_prefix("trace_fnv="))
        .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())?;
    let t_app_ns = meta
        .lines()
        .find_map(|l| l.strip_prefix("t_app_ns="))
        .and_then(|v| v.trim().parse().ok())?;
    Some((fnv, t_app_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniapps::{registry, AppParams};
    use mpisim::network;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "campaign-cache-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace() -> (Trace, SimTime) {
        let app = registry::lookup("ring").unwrap();
        let params = AppParams::quick();
        let traced =
            scalatrace::trace_app(4, network::ideal(), move |ctx| (app.run)(ctx, &params)).unwrap();
        (traced.trace, traced.report.total_time)
    }

    #[test]
    fn roundtrips_trace_and_timing() {
        let cache = TraceCache::open(temp_dir("roundtrip")).unwrap();
        let (trace, t_app) = sample_trace();
        assert!(cache.load(42).is_none());
        cache
            .store(42, &trace, t_app, &[("app".into(), "ring".into())])
            .unwrap();
        let hit = cache.load(42).expect("entry just stored");
        assert_eq!(hit.t_app, t_app);
        scalatrace::semantically_equal(&trace, &hit.trace).unwrap();
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = TraceCache::open(temp_dir("corrupt")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(7, &trace, t_app, &[]).unwrap();

        // Truncated trace body (checksum catches it before the parser).
        std::fs::write(cache.trace_path(7), "nranks 4\ngarbage").unwrap();
        assert!(cache.load(7).is_none());

        // Valid trace, mangled sidecar.
        cache.store(7, &trace, t_app, &[]).unwrap();
        std::fs::write(cache.meta_path(7), "t_app_ns=notanumber\n").unwrap();
        assert!(cache.load(7).is_none());

        // Valid trace, missing sidecar.
        cache.store(7, &trace, t_app, &[]).unwrap();
        std::fs::remove_file(cache.meta_path(7)).unwrap();
        assert!(cache.load(7).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn single_flipped_byte_is_detected() {
        let cache = TraceCache::open(temp_dir("bitflip")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(9, &trace, t_app, &[]).unwrap();
        // Flip one byte in a *numeric* field: still parses as a trace, so
        // only the checksum can tell it is not the trace that was stored.
        let mut bytes = std::fs::read(cache.trace_path(9)).unwrap();
        let pos = bytes
            .iter()
            .position(|b| b.is_ascii_digit())
            .expect("traces contain numbers");
        bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
        std::fs::write(cache.trace_path(9), &bytes).unwrap();
        assert!(cache.load(9).is_none(), "corrupt entry must not load");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TraceCache::open(temp_dir("keys")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(1, &trace, t_app, &[]).unwrap();
        assert!(cache.load(2).is_none());
        assert!(cache.load(1).is_some());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn store_leaves_no_tmp_files() {
        let cache = TraceCache::open(temp_dir("atomic")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(3, &trace, t_app, &[]).unwrap();
        for entry in std::fs::read_dir(cache.dir()).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(!name.ends_with(".tmp"), "tmp residue: {name}");
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fsck_quarantines_corruption_and_next_load_misses() {
        let cache = TraceCache::open(temp_dir("fsck")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(1, &trace, t_app, &[]).unwrap();
        cache.store(2, &trace, t_app, &[]).unwrap();
        cache.store(3, &trace, t_app, &[]).unwrap();

        // Entry 2: flip a byte. Entry 3: orphan the sidecar. Plus a
        // stranded tmp file from a hypothetical crash mid-write.
        let mut bytes = std::fs::read(cache.trace_path(2)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(cache.trace_path(2), &bytes).unwrap();
        std::fs::remove_file(cache.trace_path(3)).unwrap();
        std::fs::write(cache.dir().join("0000.st.12345.tmp"), "partial").unwrap();

        let report = cache.fsck().unwrap();
        assert!(!report.clean());
        assert_eq!(report.ok, 1);
        assert_eq!(report.tmp_removed, 1);
        let keys: Vec<&str> = report.quarantined.iter().map(|q| q.key.as_str()).collect();
        assert_eq!(keys, vec![hash::hex(2).as_str(), hash::hex(3).as_str()]);
        assert!(report.quarantined[0].reason.contains("checksum"));

        // Quarantined entries are invisible: the campaign regenerates.
        assert!(cache.load(2).is_none());
        assert!(cache.load(1).is_some(), "healthy entries survive fsck");
        cache.store(2, &trace, t_app, &[]).unwrap();
        assert!(cache.load(2).is_some());

        // A second sweep over the repaired cache is clean.
        let report2 = cache.fsck().unwrap();
        assert!(report2.clean(), "{report2}");
        assert_eq!(report2.ok, 2);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn entries_without_checksum_are_not_trusted() {
        // A sidecar from before checksums (or hand-edited) must not load.
        let cache = TraceCache::open(temp_dir("legacy")).unwrap();
        let (trace, t_app) = sample_trace();
        cache.store(5, &trace, t_app, &[]).unwrap();
        let meta = std::fs::read_to_string(cache.meta_path(5)).unwrap();
        let stripped: String = meta
            .lines()
            .filter(|l| !l.starts_with("trace_fnv="))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(cache.meta_path(5), stripped).unwrap();
        assert!(cache.load(5).is_none());
        let report = cache.fsck().unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].reason.contains("trace_fnv"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
