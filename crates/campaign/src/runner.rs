//! The campaign runner: drives every job through the full paper pipeline
//! (trace → generate → execute → verify) on the fault-isolated fleet,
//! with trace caching and JSONL telemetry.

use crate::cache::TraceCache;
use crate::executor::{self, ExecEvent, FailureCause, FleetOptions, JobError, Outcome};
use crate::hash;
use crate::journal::{JobRecord, Journal, ResumeAction};
use crate::matrix::{CampaignSpec, JobSpec};
use crate::telemetry::{Telemetry, Value};
use benchgen::chaos;
use benchgen::verify::{compare_profiles, expected_profile, profile_of_trace};
use benchgen::{generate, GenOptions};
use conceptual::interp::run_rank;
use miniapps::{registry, App, AppParams};
use mpisim::network::NetworkModel;
use mpisim::profile::MpiP;
use mpisim::time::SimTime;
use mpisim::world::World;
use mpisim::{network, SimError};
use std::sync::Arc;
use std::time::Duration;

/// Relative byte-volume tolerance for size-averaged routines in the E1
/// profile comparison (matches the §5.2 experiment binary).
const VERIFY_TOL: f64 = 0.02;

/// Summary of a job's chaos differential step (see [`benchgen::chaos`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Fault plans exercised.
    pub seeds: usize,
    /// Seeds whose run was fully invariant.
    pub invariant: usize,
    /// Seeds with a structured wildcard divergence (legal nondeterminism).
    pub diverged: usize,
}

impl std::fmt::Display for ChaosSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.invariant, self.seeds)?;
        if self.diverged > 0 {
            write!(f, "+{}d", self.diverged)?;
        }
        Ok(())
    }
}

/// Measurements from one successful job.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// Was the trace served from the cache?
    pub cached: bool,
    /// Did the trace come from a salvaged prefix of an interrupted
    /// streamed capture (a cache entry stored via
    /// [`TraceCache::store_salvaged`])? Recorded in the journal so a
    /// resume reruns the job instead of replaying the partial evidence.
    pub salvaged: bool,
    /// Trace-cache key (shared by jobs differing only in generation flags).
    pub trace_key: u64,
    /// Simulated wall-clock time of the original application.
    pub t_app: SimTime,
    /// Simulated wall-clock time of the generated benchmark.
    pub t_gen: SimTime,
    /// Timing accuracy: `|t_gen - t_app| / t_app` in percent (the paper's
    /// §5.3 metric).
    pub err_pct: f64,
    /// Trace compression ratio (concrete events per trace node).
    pub compression: f64,
    /// E1 verification mismatches (empty = verified).
    pub verify_errors: Vec<String>,
    /// Chaos differential summary (`None` when `chaos_seeds = 0`).
    pub chaos: Option<ChaosSummary>,
}

/// One row of the final report: the job plus its outcome.
#[derive(Clone, Debug)]
pub struct JobRow {
    /// The job.
    pub job: JobSpec,
    /// Its outcome.
    pub outcome: Outcome<JobOutput>,
}

/// Aggregate result of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Per-job rows, in matrix order.
    pub rows: Vec<JobRow>,
    /// Matrix combinations that were skipped (invalid rank counts).
    pub skipped: Vec<String>,
}

impl CampaignReport {
    /// Successful jobs.
    pub fn ok(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Done(_)))
            .count()
    }

    /// Failed jobs (panics and errors).
    pub fn failed(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Failed { .. }))
            .count()
    }

    /// Timed-out jobs.
    pub fn timed_out(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::TimedOut { .. }))
            .count()
    }

    /// Successful jobs whose trace came from the cache.
    pub fn cache_hits(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(&r.outcome, Outcome::Done(o) if o.cached))
            .count()
    }

    /// Successful jobs that passed E1 verification.
    pub fn verified(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(&r.outcome, Outcome::Done(o) if o.verify_errors.is_empty()))
            .count()
    }

    /// Mean absolute timing error over successful jobs (percent).
    pub fn mape(&self) -> f64 {
        let errs: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| match &r.outcome {
                Outcome::Done(o) => Some(o.err_pct),
                _ => None,
            })
            .collect();
        if errs.is_empty() {
            return 0.0;
        }
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    /// Did every job succeed (and nothing time out or fail)?
    pub fn all_ok(&self) -> bool {
        self.ok() == self.rows.len()
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<30} {:>7} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}",
            "job", "cached", "T_app(us)", "T_gen(us)", "err%", "comp", "verify", "chaos"
        )?;
        for row in &self.rows {
            match &row.outcome {
                Outcome::Done(o) => writeln!(
                    f,
                    "{:<30} {:>7} {:>12.1} {:>12.1} {:>8.2} {:>8.1} {:>8} {:>8}",
                    row.job.id(),
                    if o.cached { "hit" } else { "miss" },
                    o.t_app.as_usecs_f64(),
                    o.t_gen.as_usecs_f64(),
                    o.err_pct,
                    o.compression,
                    if o.verify_errors.is_empty() {
                        "pass".to_string()
                    } else {
                        format!("FAIL({})", o.verify_errors.len())
                    },
                    match &o.chaos {
                        Some(c) => c.to_string(),
                        None => "-".to_string(),
                    },
                )?,
                Outcome::Failed {
                    error,
                    attempts,
                    cause,
                } => writeln!(
                    f,
                    "{:<30} FAILED ({}) after {} attempt(s): {}",
                    row.job.id(),
                    cause.label(),
                    attempts,
                    error.lines().next().unwrap_or(""),
                )?,
                Outcome::TimedOut { budget, .. } => {
                    writeln!(f, "{:<30} TIMED OUT (budget {:.0?})", row.job.id(), budget,)?
                }
            }
        }
        for s in &self.skipped {
            writeln!(f, "skipped: {s}")?;
        }
        writeln!(
            f,
            "{} ok ({} cached, {} verified), {} failed, {} timed out; MAPE {:.2}%",
            self.ok(),
            self.cache_hits(),
            self.verified(),
            self.failed(),
            self.timed_out(),
            self.mape(),
        )
    }
}

fn model_of(name: &str) -> Arc<dyn NetworkModel> {
    match name {
        "bgl" => network::blue_gene_l(),
        "ethernet" => network::ethernet_cluster(),
        _ => network::ideal(),
    }
}

fn params_of(job: &JobSpec) -> AppParams {
    AppParams {
        class: job.class,
        iterations: job.iterations,
        compute_scale: job.compute_scale,
    }
}

fn sim_err(e: SimError) -> JobError {
    JobError::fatal(format!("simulation failed: {e}"))
}

/// Resolve the application body for a job, honouring the fault-injection
/// pseudo-apps: `__panic__` panics, `__hang__` sleeps past any reasonable
/// budget, and `__flaky__` fails transiently on its first attempt before
/// behaving like `ring`.
fn resolve_app(job: &JobSpec, attempt: u32) -> Result<&'static App, JobError> {
    match job.app.as_str() {
        "__panic__" => panic!("injected panic (fault-injection app __panic__)"),
        "__hang__" => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        "__flaky__" => {
            if attempt == 1 {
                return Err(JobError::transient(
                    "injected transient failure (fault-injection app __flaky__, attempt 1)",
                ));
            }
            Ok(registry::lookup("ring").expect("ring is always registered"))
        }
        name => {
            registry::lookup(name).ok_or_else(|| JobError::fatal(format!("unknown app {name}")))
        }
    }
}

/// Run one job end to end. This is the unit of fault isolation: anything
/// that panics or errors in here fails only this job.
fn run_one(
    job: &JobSpec,
    attempt: u32,
    cache: &TraceCache,
    telemetry: &Telemetry,
) -> Result<JobOutput, JobError> {
    let app = resolve_app(job, attempt)?;
    let model = model_of(&job.network);
    let trace_key = job.trace_key();

    // 1. Trace: cache hit, or run the application and fill the cache.
    let (trace, t_app, cached, salvaged) = match cache.load(trace_key) {
        Some(hit) => {
            telemetry.emit(
                "cached",
                &[
                    ("job", job.id().into()),
                    ("trace_key", hash::hex(trace_key).into()),
                    ("salvaged", Value::B(hit.salvaged)),
                ],
            );
            (hit.trace, hit.t_app, true, hit.salvaged)
        }
        None => {
            if !(app.valid_ranks)(job.ranks) {
                return Err(JobError::fatal(format!(
                    "{} cannot run on {} ranks",
                    app.name, job.ranks
                )));
            }
            let params = params_of(job);
            let run = app.run;
            let traced =
                scalatrace::trace_app(job.ranks, model.clone(), move |ctx| run(ctx, &params))
                    .map_err(sim_err)?;
            // Caching is best-effort; a read-only cache dir must not fail
            // the job.
            let _ = cache.store(
                trace_key,
                &traced.trace,
                traced.report.total_time,
                &job.trace_pairs(),
            );
            (traced.trace, traced.report.total_time, false, false)
        }
    };

    // 2. Generate the executable specification.
    let opts = GenOptions {
        align_collectives: job.align,
        resolve_wildcards: job.resolve,
        emit_comments: job.comments,
        ..GenOptions::default()
    };
    let generated =
        generate(&trace, &opts).map_err(|e| JobError::fatal(format!("generation failed: {e}")))?;

    // 3. Execute the generated benchmark under an mpiP hook: one run yields
    //    both T_gen and the profile for E1.
    let program = Arc::new(generated.program);
    let prog = Arc::clone(&program);
    let (report, hooks) = World::new(job.ranks)
        .network(model)
        .run_hooked(|_| MpiP::new(), move |ctx| run_rank(ctx, &prog))
        .map_err(sim_err)?;
    let t_gen = report.total_time;

    // 4. Verify (E1): the generated benchmark's profile must match the
    //    Table-1 image of the original's — reconstructed from the trace, so
    //    cache hits verify without re-running the application.
    let gen_prof = MpiP::merge_all(hooks.iter());
    let orig_prof = profile_of_trace(&trace);
    let verify_errors = compare_profiles(
        &expected_profile(&orig_prof, job.ranks),
        &gen_prof,
        VERIFY_TOL,
    );

    // 5. Chaos differential (optional): re-run under seeded fault plans
    //    and check the timing-independent invariants. Hard violations
    //    (profile drift, failed runs, failed generation) fail the job;
    //    benchmark divergences are recorded per seed in telemetry.
    let chaos_summary = if job.chaos_seeds > 0 {
        let params = params_of(job);
        let run = app.run;
        let plans = chaos::differential_plans(job.chaos_seeds, job.ranks);
        let report = chaos::differential(
            &trace,
            job.ranks,
            model_of(&job.network),
            move |ctx| run(ctx, &params),
            &plans,
        )
        .map_err(|e| JobError::fatal(format!("chaos baseline failed: {e}")))?;
        for o in &report.outcomes {
            telemetry.emit(
                "chaos",
                &[
                    ("job", job.id().into()),
                    ("seed", Value::U(o.seed)),
                    ("verdict", o.verdict.label().into()),
                    ("detail", o.verdict.detail().into()),
                ],
            );
        }
        if !report.passed() {
            let first = &report.violations()[0];
            return Err(JobError::fatal(format!(
                "chaos invariant violated ({report}); seed {}: {}",
                first.seed,
                first.verdict.detail()
            )));
        }
        Some(ChaosSummary {
            seeds: report.outcomes.len(),
            invariant: report.invariant(),
            diverged: report.divergences().len(),
        })
    } else {
        None
    };

    // 6. Metrics.
    let err_pct = if t_app.as_nanos() == 0 {
        0.0
    } else {
        (t_gen.as_secs_f64() - t_app.as_secs_f64()).abs() / t_app.as_secs_f64() * 100.0
    };
    let compression = scalatrace::stats::stats(&trace).compression_ratio();

    Ok(JobOutput {
        cached,
        salvaged,
        trace_key,
        t_app,
        t_gen,
        err_pct,
        compression,
        verify_errors,
        chaos: chaos_summary,
    })
}

fn job_fields(job: &JobSpec) -> Vec<(&'static str, Value)> {
    vec![
        ("job", job.id().into()),
        ("app", job.app.clone().into()),
        ("ranks", Value::U(job.ranks as u64)),
        ("class", job.class.name().into()),
        ("network", job.network.clone().into()),
    ]
}

/// Run a whole campaign: expand the matrix, execute the fleet, emit
/// telemetry, and aggregate the report.
pub fn run_campaign(
    spec: &CampaignSpec,
    cache: TraceCache,
    telemetry: Telemetry,
) -> CampaignReport {
    let (jobs, skipped) = spec.expand();
    let fleet = FleetOptions {
        workers: spec.workers,
        timeout: Duration::from_secs(spec.timeout_secs),
        retries: spec.retries,
        ..FleetOptions::default()
    };
    run_jobs(jobs, skipped, &fleet, cache, telemetry)
}

/// Reconstruct a terminal outcome from its journaled `finished` record.
/// `None` means the record is incomplete (a log from an older schema, or
/// hand-edited): the caller falls back to rerunning the job, which is
/// always safe.
fn replay_outcome(rec: &JobRecord) -> Option<Outcome<JobOutput>> {
    match rec.status.as_str() {
        "ok" => {
            let verify_errors = rec.u64("verify_errors")? as usize;
            let chaos = match rec.u64("chaos_seeds") {
                Some(seeds) => Some(ChaosSummary {
                    seeds: seeds as usize,
                    invariant: rec.u64("chaos_invariant")? as usize,
                    diverged: rec.u64("chaos_diverged")? as usize,
                }),
                None => None,
            };
            Some(Outcome::Done(JobOutput {
                cached: rec.get("cached")? == "true",
                salvaged: rec.salvaged(),
                trace_key: u64::from_str_radix(rec.get("trace_key")?, 16).ok()?,
                t_app: SimTime::from_nanos(rec.u64("t_app_ns")?),
                t_gen: SimTime::from_nanos(rec.u64("t_gen_ns")?),
                err_pct: rec.f64("err_pct")?,
                compression: rec.f64("compression")?,
                verify_errors: vec![
                    "mismatch recorded before resume (see original log)".to_string();
                    verify_errors
                ],
                chaos,
            }))
        }
        "failed" => Some(Outcome::Failed {
            error: rec.get("error")?.to_string(),
            attempts: rec.u64("attempts")? as u32,
            cause: match rec.get("cause")? {
                "panic" => FailureCause::Panic,
                "transient" => FailureCause::Transient,
                _ => FailureCause::Fatal,
            },
        }),
        _ => None,
    }
}

/// Resume an interrupted campaign from its write-ahead journal: jobs with
/// a journaled terminal outcome are *replayed* (successes and
/// deterministic failures alike — rerunning a job that panicked
/// deterministically would only reproduce the panic), while transient
/// failures, timeouts, and the jobs the crash cut short run again. The
/// returned report covers the full matrix, replayed rows included, in
/// matrix order.
pub fn resume_campaign(
    spec: &CampaignSpec,
    cache: TraceCache,
    telemetry: Telemetry,
    journal: &Journal,
) -> CampaignReport {
    let (jobs, skipped) = spec.expand();
    let mut to_run = Vec::new();
    let mut replayed: Vec<JobRow> = Vec::new();
    for job in &jobs {
        let outcome = journal.get(&job.id()).and_then(|rec| match rec.action() {
            ResumeAction::Rerun => {
                if rec.salvaged() {
                    // The journaled success leaned on a salvaged prefix.
                    // Drop the cache entry so the rerun re-traces the
                    // application and stores the complete capture instead
                    // of re-serving the same prefix forever.
                    cache.evict(job.trace_key());
                }
                None
            }
            ResumeAction::ReplayOk | ResumeAction::ReplayFailed => replay_outcome(rec),
        });
        match outcome {
            Some(outcome) => {
                telemetry.emit(
                    "resumed",
                    &[
                        ("job", job.id().into()),
                        (
                            "status",
                            match &outcome {
                                Outcome::Done(_) => "ok".into(),
                                _ => "failed".into(),
                            },
                        ),
                        ("replayed", Value::B(true)),
                    ],
                );
                replayed.push(JobRow {
                    job: job.clone(),
                    outcome,
                });
            }
            None => to_run.push(job.clone()),
        }
    }
    telemetry.emit(
        "resume",
        &[
            ("jobs", Value::U(jobs.len() as u64)),
            ("replayed", Value::U(replayed.len() as u64)),
            ("rerun", Value::U(to_run.len() as u64)),
        ],
    );

    let fleet = FleetOptions {
        workers: spec.workers,
        timeout: Duration::from_secs(spec.timeout_secs),
        retries: spec.retries,
        ..FleetOptions::default()
    };
    let ran = run_jobs(to_run, skipped.clone(), &fleet, cache, telemetry);

    // Stitch replayed and fresh rows back into matrix order.
    let mut by_id: std::collections::HashMap<String, JobRow> = replayed
        .into_iter()
        .chain(ran.rows)
        .map(|row| (row.job.id(), row))
        .collect();
    CampaignReport {
        rows: jobs
            .iter()
            .filter_map(|job| by_id.remove(&job.id()))
            .collect(),
        skipped,
    }
}

/// Does `workers * pipeline_threads` exceed the 2x-cores oversubscription
/// threshold? Only an explicit width (> 1) triggers the warning — the
/// default defers to the ambient `par` configuration.
fn oversubscribed(workers: usize, pipeline_threads: usize, cores: usize) -> bool {
    pipeline_threads > 1 && workers * pipeline_threads > 2 * cores
}

/// Run an explicit job list on the fleet (the matrix-free entry point used
/// by `commbench chaos`, which builds its own jobs over the registry).
pub fn run_jobs(
    jobs: Vec<JobSpec>,
    skipped: Vec<String>,
    fleet: &FleetOptions,
    cache: TraceCache,
    telemetry: Telemetry,
) -> CampaignReport {
    let telemetry = Arc::new(telemetry);
    for s in &skipped {
        telemetry.emit("skipped", &[("reason", s.as_str().into())]);
    }
    for job in &jobs {
        telemetry.emit("queued", &job_fields(job));
    }

    // Apply the jobs' analysis pool width (merge / alignment / wildcard
    // resolution) for the fleet's duration. The matrix expands one value to
    // every job; for hand-built job lists the widest wins. Thread count
    // never changes any stage's output, so this is purely a resource knob:
    // total demand is workers * pipeline_threads, and exceeding twice the
    // core count is worth a telemetry warning before the run drowns in
    // context switches. The default (1) leaves the ambient width —
    // COMMSPEC_THREADS or the core count — untouched.
    let pipeline_threads = jobs.iter().map(|j| j.pipeline_threads).max().unwrap_or(1);
    let _threads_guard = (pipeline_threads > 1).then(|| {
        let cores = par::available_cores();
        if oversubscribed(fleet.workers, pipeline_threads, cores) {
            telemetry.emit(
                "oversubscription",
                &[
                    ("workers", Value::U(fleet.workers as u64)),
                    ("pipeline_threads", Value::U(pipeline_threads as u64)),
                    ("cores", Value::U(cores as u64)),
                    (
                        "hint",
                        "keep workers * pipeline_threads <= 2 * cores".into(),
                    ),
                ],
            );
        }
        par::scoped_threads(pipeline_threads)
    });

    let jobs_for_observer = jobs.clone();
    let cache = Arc::new(cache);
    let tele_work = Arc::clone(&telemetry);
    let cache_work = Arc::clone(&cache);
    let outcomes = executor::run_fleet(
        jobs.clone(),
        fleet,
        move |job: &JobSpec, attempt| run_one(job, attempt, &cache_work, &tele_work),
        |index, event| {
            let job = &jobs_for_observer[index];
            match event {
                ExecEvent::Started { attempt } => telemetry.emit(
                    "started",
                    &[
                        ("job", job.id().into()),
                        ("attempt", Value::U(attempt as u64)),
                    ],
                ),
                ExecEvent::Retried {
                    attempt,
                    error,
                    delay,
                } => telemetry.emit(
                    "retried",
                    &[
                        ("job", job.id().into()),
                        ("attempt", Value::U(attempt as u64)),
                        ("cause", "transient".into()),
                        ("error", error.into()),
                        ("delay_ms", Value::U(delay.as_millis() as u64)),
                    ],
                ),
                ExecEvent::Finished { outcome, wall } => {
                    let mut fields = vec![("job", Value::from(job.id()))];
                    let failed = match outcome {
                        Outcome::Done(o) => {
                            fields.push(("status", "ok".into()));
                            fields.push(("cached", Value::B(o.cached)));
                            if o.salvaged {
                                // A resume keys off this marker to rerun
                                // the job rather than replay the prefix.
                                fields.push(("salvaged", Value::B(true)));
                            }
                            fields.push(("trace_key", hash::hex(o.trace_key).into()));
                            fields.push(("t_app_us", Value::F(o.t_app.as_usecs_f64())));
                            fields.push(("t_gen_us", Value::F(o.t_gen.as_usecs_f64())));
                            // Exact integer times alongside the lossy
                            // human-friendly microsecond floats: the resume
                            // journal replays outcomes from these.
                            fields.push(("t_app_ns", Value::U(o.t_app.as_nanos())));
                            fields.push(("t_gen_ns", Value::U(o.t_gen.as_nanos())));
                            fields.push(("err_pct", Value::F(o.err_pct)));
                            fields.push(("compression", Value::F(o.compression)));
                            fields.push(("verify_errors", Value::U(o.verify_errors.len() as u64)));
                            if let Some(c) = &o.chaos {
                                fields.push(("chaos_seeds", Value::U(c.seeds as u64)));
                                fields.push(("chaos_invariant", Value::U(c.invariant as u64)));
                                fields.push(("chaos_diverged", Value::U(c.diverged as u64)));
                            }
                            false
                        }
                        Outcome::Failed {
                            error,
                            attempts,
                            cause,
                        } => {
                            fields.push(("status", "failed".into()));
                            fields.push(("cause", cause.label().into()));
                            fields.push(("error", error.as_str().into()));
                            fields.push(("attempts", Value::U(*attempts as u64)));
                            true
                        }
                        Outcome::TimedOut { budget, attempts } => {
                            fields.push(("status", "timeout".into()));
                            fields.push(("budget_ms", Value::U(budget.as_millis() as u64)));
                            fields.push(("attempts", Value::U(*attempts as u64)));
                            true
                        }
                    };
                    fields.push(("wall_ms", Value::U(wall.as_millis() as u64)));
                    telemetry.emit("finished", &fields);
                    if failed {
                        // The worker is about to return from a caught panic
                        // (or give up on the job): make sure the log hit disk
                        // while the process is still guaranteed alive.
                        telemetry.flush();
                    }
                }
            }
        },
    );

    CampaignReport {
        rows: jobs
            .into_iter()
            .zip(outcomes)
            .map(|(job, outcome)| JobRow { job, outcome })
            .collect(),
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "campaign-runner-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(matrix: &str) -> CampaignSpec {
        CampaignSpec::parse(matrix).unwrap()
    }

    #[test]
    fn oversubscription_warns_only_past_twice_the_cores() {
        // Default width never warns, whatever the fleet size.
        assert!(!oversubscribed(64, 1, 1));
        // At the boundary (workers * threads == 2 * cores) we stay quiet.
        assert!(!oversubscribed(4, 4, 8));
        // One past the boundary warns.
        assert!(oversubscribed(4, 5, 8));
        assert!(oversubscribed(2, 8, 4));
    }

    #[test]
    fn campaign_survives_injected_faults_and_caches_on_rerun() {
        let dir = temp_dir("e2e");
        let matrix = "
            apps = ring, __panic__, __flaky__
            ranks = 2, 4
            workers = 3
            timeout_secs = 60
            retries = 1
        ";
        let cache = TraceCache::open(&dir).unwrap();
        let report = run_campaign(&spec(matrix), cache, Telemetry::sink());
        assert_eq!(report.rows.len(), 6);
        // ring x2 ok; __flaky__ x2 ok after one retry; __panic__ x2 failed.
        assert_eq!(report.ok(), 4);
        assert_eq!(report.failed(), 2);
        assert_eq!(report.timed_out(), 0);
        assert_eq!(report.cache_hits(), 0);
        assert_eq!(report.verified(), 4, "all successful jobs pass E1");
        for row in &report.rows {
            if row.job.app == "__panic__" {
                match &row.outcome {
                    Outcome::Failed { error, .. } => {
                        assert!(error.contains("injected panic"), "{error}")
                    }
                    other => panic!("{other:?}"),
                }
            }
        }
        let display = report.to_string();
        assert!(display.contains("FAILED"));
        assert!(display.contains("2 failed"));

        // Second run: every previously successful trace comes from cache.
        let cache = TraceCache::open(&dir).unwrap();
        let report2 = run_campaign(&spec(matrix), cache, Telemetry::sink());
        assert_eq!(report2.ok(), 4);
        assert_eq!(report2.cache_hits(), 4);
        assert_eq!(report2.verified(), 4, "verification works from cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hung_jobs_are_abandoned() {
        let dir = temp_dir("hang");
        let matrix = "
            apps = __hang__, ring
            ranks = 2
            workers = 2
            timeout_secs = 1
            retries = 0
        ";
        let cache = TraceCache::open(&dir).unwrap();
        let report = run_campaign(&spec(matrix), cache, Telemetry::sink());
        assert_eq!(report.timed_out(), 1);
        assert_eq!(report.ok(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_step_runs_and_is_summarised_in_the_report() {
        let dir = temp_dir("chaos");
        let matrix = "
            apps = ring
            ranks = 4
            networks = bgl
            iterations = 3
            chaos_seeds = 2
            workers = 1
        ";
        let cache = TraceCache::open(&dir).unwrap();
        let report = run_campaign(&spec(matrix), cache, Telemetry::sink());
        assert_eq!(report.ok(), 1, "{report}");
        match &report.rows[0].outcome {
            Outcome::Done(o) => {
                let chaos = o.chaos.expect("chaos step ran");
                assert_eq!(chaos.seeds, 2);
                assert_eq!(chaos.invariant + chaos.diverged, 2, "{chaos}");
            }
            other => panic!("{other:?}"),
        }
        assert!(report.to_string().contains("chaos"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_terminal_outcomes_and_reruns_the_rest() {
        let dir = temp_dir("resume");
        let matrix = "
            apps = ring, __panic__
            ranks = 2, 4
            workers = 2
            retries = 0
            timeout_secs = 60
        ";
        let log_path = {
            let cache = TraceCache::open(&dir).unwrap();
            let log_path = dir.join("campaign.jsonl");
            let tele = Telemetry::to_file(&log_path).unwrap();
            let report = run_campaign(&spec(matrix), cache, tele);
            assert_eq!(report.ok(), 2);
            assert_eq!(report.failed(), 2);
            log_path
        };
        let log = std::fs::read_to_string(&log_path).unwrap();
        let original = {
            let journal = Journal::from_text(&log);
            assert_eq!(journal.len(), 4);
            journal
        };

        // Complete journal: every row replays (including the deterministic
        // panics — rerunning those would only panic again), nothing runs.
        let replayed = resume_campaign(
            &spec(matrix),
            TraceCache::open(&dir).unwrap(),
            Telemetry::sink(),
            &original,
        );
        assert_eq!(replayed.rows.len(), 4);
        assert_eq!(replayed.ok(), 2);
        assert_eq!(replayed.failed(), 2);
        for row in &replayed.rows {
            match (&row.job.app[..], &row.outcome) {
                ("__panic__", Outcome::Failed { error, cause, .. }) => {
                    assert!(error.contains("injected panic"), "{error}");
                    assert_eq!(cause.label(), "panic");
                }
                ("ring", Outcome::Done(o)) => {
                    let rec = original.get(&row.job.id()).unwrap();
                    assert_eq!(o.t_app.as_nanos(), rec.u64("t_app_ns").unwrap());
                    assert_eq!(o.t_gen.as_nanos(), rec.u64("t_gen_ns").unwrap());
                    assert_eq!(o.err_pct.to_bits(), rec.f64("err_pct").unwrap().to_bits());
                    assert!(o.verify_errors.is_empty());
                }
                other => panic!("unexpected row {other:?}"),
            }
        }

        // Prune one success from the journal (the job the crash would have
        // cut short): exactly that job reruns — served from the cache the
        // interrupted run already filled — and the stitched report matches.
        let pruned: String = log
            .lines()
            .filter(|l| !(l.contains("\"event\":\"finished\"") && l.contains("ring.n4")))
            .map(|l| format!("{l}\n"))
            .collect();
        let journal = Journal::from_text(&pruned);
        assert_eq!(journal.len(), 3);
        let resumed = resume_campaign(
            &spec(matrix),
            TraceCache::open(&dir).unwrap(),
            Telemetry::sink(),
            &journal,
        );
        assert_eq!(resumed.rows.len(), 4, "report covers the whole matrix");
        assert_eq!(resumed.ok(), 2);
        assert_eq!(resumed.failed(), 2);
        assert_eq!(resumed.cache_hits(), 1, "the rerun trace comes from cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvaged_cache_entries_flag_the_journal_and_rerun_on_resume() {
        let dir = temp_dir("salvage");
        let matrix = "apps = ring\nranks = 2\nworkers = 1\nretries = 0\ntimeout_secs = 60";
        let job = spec(matrix).expand().0.remove(0);

        // Seed the cache the way a salvage operation would: the trace
        // recovered from an interrupted streamed capture, stored under the
        // job's trace key with the salvaged marker.
        let cache = TraceCache::open(&dir).unwrap();
        let app = resolve_app(&job, 0).unwrap();
        let params = params_of(&job);
        let run = app.run;
        let traced = scalatrace::trace_app(job.ranks, model_of(&job.network), move |ctx| {
            run(ctx, &params)
        })
        .unwrap();
        cache
            .store_salvaged(
                job.trace_key(),
                &traced.trace,
                traced.report.total_time,
                &job.trace_pairs(),
            )
            .unwrap();
        assert!(cache.load(job.trace_key()).unwrap().salvaged);

        // The campaign serves the salvaged entry (legitimate evidence
        // mid-campaign) but records the fact on the finished line.
        let log_path = dir.join("campaign.jsonl");
        let report = run_campaign(
            &spec(matrix),
            TraceCache::open(&dir).unwrap(),
            Telemetry::to_file(&log_path).unwrap(),
        );
        assert_eq!(report.ok(), 1);
        assert_eq!(report.cache_hits(), 1);
        match &report.rows[0].outcome {
            Outcome::Done(o) => assert!(o.salvaged, "salvaged trace must be flagged"),
            other => panic!("{other:?}"),
        }
        let journal = Journal::from_text(&std::fs::read_to_string(&log_path).unwrap());
        let rec = journal.get(&job.id()).unwrap();
        assert!(rec.salvaged());
        assert_eq!(rec.action(), ResumeAction::Rerun);

        // Resume upgrades rather than replays: the salvaged entry is
        // evicted, the job re-traces the application, and the cache ends
        // up holding a complete (unflagged) capture of the same trace.
        let resumed = resume_campaign(
            &spec(matrix),
            TraceCache::open(&dir).unwrap(),
            Telemetry::sink(),
            &journal,
        );
        assert_eq!(resumed.ok(), 1);
        match &resumed.rows[0].outcome {
            Outcome::Done(o) => {
                assert!(!o.cached, "the prefix must not be re-served");
                assert!(!o.salvaged);
            }
            other => panic!("{other:?}"),
        }
        let upgraded = TraceCache::open(&dir)
            .unwrap()
            .load(job.trace_key())
            .unwrap();
        assert!(!upgraded.salvaged, "the rerun replaces the salvaged entry");
        assert_eq!(upgraded.trace, traced.trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failures_and_timeouts_rerun_on_resume() {
        let dir = temp_dir("resume-transient");
        let matrix = "apps = __flaky__\nranks = 2\nworkers = 1\nretries = 1";
        // Forge a journal where the job died transiently (as if the process
        // was killed before its retry) plus one that timed out: both must
        // rerun, and the flaky app succeeds on its retry attempt.
        let id = spec(matrix).expand().0[0].id();
        let forged = format!(
            "{{\"t_ms\":1,\"event\":\"finished\",\"job\":\"{id}\",\"status\":\"failed\",\"cause\":\"transient\",\"error\":\"x\",\"attempts\":1}}\n\
             {{\"t_ms\":2,\"event\":\"finished\",\"job\":\"nosuch.n2\",\"status\":\"timeout\",\"budget_ms\":1,\"attempts\":1}}\n"
        );
        let journal = Journal::from_text(&forged);
        let report = resume_campaign(
            &spec(matrix),
            TraceCache::open(&dir).unwrap(),
            Telemetry::sink(),
            &journal,
        );
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.ok(), 1, "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gen_option_variants_share_one_cache_entry() {
        let dir = temp_dir("share");
        let cache = TraceCache::open(&dir).unwrap();
        let mut s = spec("apps = ring\nranks = 4\nworkers = 1");
        let r1 = run_campaign(&s, TraceCache::open(&dir).unwrap(), Telemetry::sink());
        assert_eq!(r1.cache_hits(), 0);
        // Same trace config, different generation flags: cache still hits.
        s.comments = true;
        let r2 = run_campaign(&s, cache, Telemetry::sink());
        assert_eq!(r2.cache_hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
