//! Campaign matrix: a declarative job grid and its expansion.
//!
//! A matrix file is a small line-based `key = value` document (no external
//! parser dependencies are available offline):
//!
//! ```text
//! # sweep the paper suite's small corner on two networks
//! apps     = lu, cg, ep
//! ranks    = 8, 16
//! classes  = S, W
//! networks = ideal, bgl
//! align    = true
//! resolve  = true
//! comments = false
//! compute_scale = 1.0
//! workers  = 4
//! timeout_secs = 60
//! retries  = 1
//! ```
//!
//! `expand` forms the cartesian product `apps x ranks x classes x networks`,
//! dropping combinations the application's domain decomposition cannot run
//! (e.g. BT on a non-square rank count) and reporting them as skips.

use crate::hash;
use miniapps::{registry, Class};

/// Fault-injection pseudo-apps resolved by the campaign runner itself
/// rather than the miniapp registry.
pub const INJECTED_APPS: &[&str] = &["__panic__", "__hang__", "__flaky__"];

/// Is `name` one of the fault-injection pseudo-apps?
pub fn is_injected(name: &str) -> bool {
    INJECTED_APPS.contains(&name)
}

/// Networks a job may select.
pub const NETWORKS: &[&str] = &["ideal", "bgl", "ethernet"];

/// One fully concrete experiment: everything needed to trace an
/// application and generate + verify its benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Application registry name (or an `INJECTED_APPS` entry).
    pub app: String,
    /// World size.
    pub ranks: usize,
    /// NPB problem class.
    pub class: Class,
    /// Network model name (see `NETWORKS`).
    pub network: String,
    /// Run Algorithm 1 (collective alignment) during generation.
    pub align: bool,
    /// Run Algorithm 2 (wildcard resolution) during generation.
    pub resolve: bool,
    /// Emit provenance comments in the generated program.
    pub comments: bool,
    /// Compute-time scale factor (the §5.4 what-if knob).
    pub compute_scale: f64,
    /// Iteration-count override.
    pub iterations: Option<usize>,
    /// Seeded chaos perturbations to run after verification (0 = off).
    pub chaos_seeds: usize,
    /// Pool width for the intra-job analysis stages (merge, alignment,
    /// wildcard resolution); 1 = hard sequential. Thread count never
    /// changes any stage's output, so this lives in
    /// [`Self::config_pairs`] only and trace-cache keys are unaffected.
    pub pipeline_threads: usize,
}

impl JobSpec {
    /// `key=value` pairs that determine the *trace* — the fields the traced
    /// application run depends on. Generation flags are deliberately
    /// excluded so jobs differing only in `GenOptions` share a cache entry.
    pub fn trace_pairs(&self) -> Vec<(String, String)> {
        vec![
            ("app".into(), self.app.clone()),
            ("ranks".into(), self.ranks.to_string()),
            ("class".into(), self.class.name().into()),
            ("network".into(), self.network.clone()),
            ("compute_scale".into(), format!("{:?}", self.compute_scale)),
            (
                "iterations".into(),
                match self.iterations {
                    Some(i) => i.to_string(),
                    None => "default".into(),
                },
            ),
        ]
    }

    /// The trace-cache key: order-independent hash of [`Self::trace_pairs`].
    pub fn trace_key(&self) -> u64 {
        hash::hash_pairs(&self.trace_pairs())
    }

    /// All `key=value` pairs, including generation flags — the job identity.
    /// `chaos_seeds` lives here (not in [`Self::trace_pairs`]): chaos runs
    /// re-trace under fault plans but never change the baseline trace, so
    /// jobs differing only in chaos depth still share a cache entry.
    pub fn config_pairs(&self) -> Vec<(String, String)> {
        let mut pairs = self.trace_pairs();
        pairs.push(("align".into(), self.align.to_string()));
        pairs.push(("resolve".into(), self.resolve.to_string()));
        pairs.push(("comments".into(), self.comments.to_string()));
        pairs.push(("chaos_seeds".into(), self.chaos_seeds.to_string()));
        pairs.push(("pipeline_threads".into(), self.pipeline_threads.to_string()));
        pairs
    }

    /// Stable job identifier: human-readable prefix plus a hash
    /// discriminator, e.g. `lu.n8.S.ideal.1a2b3c4d`.
    pub fn id(&self) -> String {
        let h = hash::hash_pairs(&self.config_pairs());
        format!(
            "{}.n{}.{}.{}.{}",
            self.app,
            self.ranks,
            self.class.name(),
            self.network,
            &hash::hex(h)[..8]
        )
    }
}

/// A parsed campaign matrix plus fleet-level settings.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Applications to sweep.
    pub apps: Vec<String>,
    /// Rank counts to sweep.
    pub ranks: Vec<usize>,
    /// Problem classes to sweep.
    pub classes: Vec<Class>,
    /// Network models to sweep.
    pub networks: Vec<String>,
    /// Algorithm 1 on/off for every job.
    pub align: bool,
    /// Algorithm 2 on/off for every job.
    pub resolve: bool,
    /// Provenance comments on/off for every job.
    pub comments: bool,
    /// Compute-time scale factor for every job.
    pub compute_scale: f64,
    /// Iteration override for every job.
    pub iterations: Option<usize>,
    /// Chaos-depth axis: one job per entry, each running that many seeded
    /// fault plans after verification (0 = no chaos step). A first-class
    /// matrix dimension like `ranks` or `classes`, so a single matrix can
    /// sweep fault depth across workload classes.
    pub chaos_seeds: Vec<usize>,
    /// Pool width for the intra-job analysis stages of every job (see
    /// [`JobSpec::pipeline_threads`]). Composes with `workers`: total
    /// thread demand is `workers * pipeline_threads`, and the runner warns
    /// in telemetry when that exceeds twice the core count.
    pub pipeline_threads: usize,
    /// Worker threads in the fleet.
    pub workers: usize,
    /// Per-attempt wall-clock budget in seconds.
    pub timeout_secs: u64,
    /// Retry budget for transient failures.
    pub retries: u32,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            apps: Vec::new(),
            ranks: Vec::new(),
            classes: vec![Class::S],
            networks: vec!["ideal".to_string()],
            align: true,
            resolve: true,
            comments: false,
            compute_scale: 1.0,
            iterations: None,
            chaos_seeds: vec![0],
            pipeline_threads: 1,
            workers: 4,
            timeout_secs: 60,
            retries: 1,
        }
    }
}

/// Parse a one-letter NPB class name.
pub fn parse_class(s: &str) -> Result<Class, String> {
    match s {
        "S" => Ok(Class::S),
        "W" => Ok(Class::W),
        "A" => Ok(Class::A),
        "B" => Ok(Class::B),
        "C" => Ok(Class::C),
        other => Err(format!("unknown class {other} (expected S|W|A|B|C)")),
    }
}

fn parse_bool(key: &str, s: &str) -> Result<bool, String> {
    match s {
        "true" | "yes" | "on" => Ok(true),
        "false" | "no" | "off" => Ok(false),
        other => Err(format!("bad {key}: {other} (expected true|false)")),
    }
}

fn split_list(v: &str) -> Vec<&str> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

impl CampaignSpec {
    /// Parse a matrix document. Blank lines and `#` comments are ignored;
    /// unknown keys are errors (they are invariably typos).
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let mut spec = CampaignSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |e: String| format!("line {}: {e}", lineno + 1);
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "apps" => spec.apps = split_list(value).iter().map(|s| s.to_string()).collect(),
                "ranks" => {
                    spec.ranks = split_list(value)
                        .iter()
                        .map(|s| {
                            s.parse::<usize>()
                                .map_err(|e| at(format!("bad rank {s}: {e}")))
                        })
                        .collect::<Result<_, _>>()?
                }
                "classes" => {
                    spec.classes = split_list(value)
                        .iter()
                        .map(|s| parse_class(s).map_err(&at))
                        .collect::<Result<_, _>>()?
                }
                "networks" => {
                    let nets = split_list(value);
                    for n in &nets {
                        if !NETWORKS.contains(n) {
                            return Err(at(format!(
                                "unknown network {n} (expected one of {})",
                                NETWORKS.join("|")
                            )));
                        }
                    }
                    spec.networks = nets.iter().map(|s| s.to_string()).collect();
                }
                "align" => spec.align = parse_bool(key, value).map_err(&at)?,
                "resolve" => spec.resolve = parse_bool(key, value).map_err(&at)?,
                "comments" => spec.comments = parse_bool(key, value).map_err(&at)?,
                "compute_scale" => {
                    spec.compute_scale = value
                        .parse::<f64>()
                        .map_err(|e| at(format!("bad compute_scale: {e}")))?
                }
                "iterations" => {
                    spec.iterations = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| at(format!("bad iterations: {e}")))?,
                    )
                }
                "chaos_seeds" => {
                    spec.chaos_seeds = split_list(value)
                        .iter()
                        .map(|s| {
                            s.parse::<usize>()
                                .map_err(|e| at(format!("bad chaos_seeds {s}: {e}")))
                        })
                        .collect::<Result<_, _>>()?
                }
                "pipeline_threads" => {
                    spec.pipeline_threads = value
                        .parse::<usize>()
                        .map_err(|e| at(format!("bad pipeline_threads: {e}")))?
                }
                "workers" => {
                    spec.workers = value
                        .parse::<usize>()
                        .map_err(|e| at(format!("bad workers: {e}")))?
                }
                "timeout_secs" => {
                    spec.timeout_secs = value
                        .parse::<u64>()
                        .map_err(|e| at(format!("bad timeout_secs: {e}")))?
                }
                "retries" => {
                    spec.retries = value
                        .parse::<u32>()
                        .map_err(|e| at(format!("bad retries: {e}")))?
                }
                other => return Err(at(format!("unknown key {other}"))),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        if self.apps.is_empty() {
            return Err("matrix lists no apps".to_string());
        }
        if self.ranks.is_empty() {
            return Err("matrix lists no rank counts".to_string());
        }
        if self.ranks.contains(&0) {
            return Err("rank count 0 is invalid".to_string());
        }
        if self.chaos_seeds.is_empty() {
            return Err("chaos_seeds lists no values (use 0 to disable chaos)".to_string());
        }
        if self.workers == 0 {
            return Err("workers must be at least 1".to_string());
        }
        if self.pipeline_threads == 0 {
            return Err("pipeline_threads must be at least 1".to_string());
        }
        for app in &self.apps {
            if !is_injected(app) && registry::lookup(app).is_none() {
                let names: Vec<&str> = registry::all().iter().map(|a| a.name).collect();
                return Err(format!(
                    "unknown app {app}; available: {}",
                    names.join(", ")
                ));
            }
        }
        Ok(())
    }

    /// Expand the matrix into the concrete job list, in matrix order.
    /// Combinations invalid for an app's decomposition are returned as
    /// human-readable skips rather than jobs.
    pub fn expand(&self) -> (Vec<JobSpec>, Vec<String>) {
        let mut jobs = Vec::new();
        let mut skipped = Vec::new();
        for app in &self.apps {
            for &ranks in &self.ranks {
                let valid = match registry::lookup(app) {
                    Some(a) => (a.valid_ranks)(ranks),
                    None => is_injected(app),
                };
                if !valid {
                    skipped.push(format!("{app} cannot run on {ranks} ranks"));
                    continue;
                }
                for &class in &self.classes {
                    for network in &self.networks {
                        for &chaos_seeds in &self.chaos_seeds {
                            jobs.push(JobSpec {
                                app: app.clone(),
                                ranks,
                                class,
                                network: network.clone(),
                                align: self.align,
                                resolve: self.resolve,
                                comments: self.comments,
                                compute_scale: self.compute_scale,
                                iterations: self.iterations,
                                chaos_seeds,
                                pipeline_threads: self.pipeline_threads,
                            });
                        }
                    }
                }
            }
        }
        (jobs, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MATRIX: &str = "
        # demo matrix
        apps     = ring, lu   # trailing comment
        ranks    = 4, 8
        classes  = S
        networks = ideal, bgl
        workers  = 2
        timeout_secs = 30
        retries  = 2
    ";

    #[test]
    fn parses_and_expands() {
        let spec = CampaignSpec::parse(MATRIX).unwrap();
        assert_eq!(spec.apps, vec!["ring", "lu"]);
        assert_eq!(spec.ranks, vec![4, 8]);
        assert_eq!(spec.workers, 2);
        assert_eq!(spec.retries, 2);
        let (jobs, skipped) = spec.expand();
        // ring and lu both accept 4 and 8 ranks: 2 apps x 2 ranks x 1 class
        // x 2 networks.
        assert_eq!(jobs.len(), 8);
        assert!(skipped.is_empty());
        assert!(jobs.iter().all(|j| j.align && j.resolve && !j.comments));
    }

    #[test]
    fn invalid_rank_combinations_are_skipped() {
        let spec = CampaignSpec::parse("apps = bt\nranks = 4, 7").unwrap();
        let (jobs, skipped) = spec.expand();
        // bt needs a square rank count: 4 runs, 7 is skipped.
        assert_eq!(jobs.len(), 1);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].contains("bt"));
        assert!(skipped[0].contains('7'));
    }

    #[test]
    fn rejects_malformed_matrices() {
        assert!(CampaignSpec::parse("").is_err(), "no apps");
        assert!(CampaignSpec::parse("apps = ring").is_err(), "no ranks");
        assert!(CampaignSpec::parse("apps = nosuch\nranks = 4").is_err());
        assert!(CampaignSpec::parse("apps = ring\nranks = 0").is_err());
        assert!(CampaignSpec::parse("apps = ring\nranks = 4\nnetworks = myrinet").is_err());
        assert!(CampaignSpec::parse("apps = ring\nranks = 4\nfrobnicate = 1").is_err());
        assert!(CampaignSpec::parse("apps = ring\nranks = 4\nalign = maybe").is_err());
        assert!(CampaignSpec::parse("just some text").is_err());
        let err = CampaignSpec::parse("apps = ring\nranks = x").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn injected_apps_expand_without_registry_entries() {
        let spec = CampaignSpec::parse("apps = __panic__, __hang__\nranks = 4").unwrap();
        let (jobs, skipped) = spec.expand();
        assert_eq!(jobs.len(), 2);
        assert!(skipped.is_empty());
    }

    #[test]
    fn job_ids_are_stable_and_distinct() {
        let spec = CampaignSpec::parse(MATRIX).unwrap();
        let (jobs, _) = spec.expand();
        let ids: std::collections::BTreeSet<String> = jobs.iter().map(|j| j.id()).collect();
        assert_eq!(ids.len(), jobs.len(), "job ids collide");
        // Same job -> same id, independently of how it was constructed.
        assert_eq!(jobs[0].id(), jobs[0].clone().id());
    }

    #[test]
    fn trace_key_ignores_generation_flags() {
        let (jobs, _) = CampaignSpec::parse("apps = ring\nranks = 4")
            .unwrap()
            .expand();
        let mut other = jobs[0].clone();
        other.align = false;
        other.comments = true;
        assert_eq!(jobs[0].trace_key(), other.trace_key());
        assert_ne!(jobs[0].id(), other.id());
        // Chaos depth re-traces under fault plans but never changes the
        // baseline trace, so it must not split the cache either.
        let mut chaotic = jobs[0].clone();
        chaotic.chaos_seeds = 8;
        assert_eq!(jobs[0].trace_key(), chaotic.trace_key());
        assert_ne!(jobs[0].id(), chaotic.id());
    }

    #[test]
    fn chaos_seeds_parse_and_flow_into_jobs() {
        let spec = CampaignSpec::parse("apps = ring\nranks = 4\nchaos_seeds = 6").unwrap();
        assert_eq!(spec.chaos_seeds, vec![6]);
        let (jobs, _) = spec.expand();
        assert!(jobs.iter().all(|j| j.chaos_seeds == 6));
        assert!(CampaignSpec::parse("apps = ring\nranks = 4\nchaos_seeds = lots").is_err());
        assert!(CampaignSpec::parse("apps = ring\nranks = 4\nchaos_seeds = ").is_err());
    }

    #[test]
    fn chaos_seeds_is_a_matrix_axis_over_classes() {
        // The satellite shape: chaos depth crossed with W/A workload
        // classes, every combination its own job with its own identity —
        // but all sharing one trace-cache entry per (app, ranks, class,
        // network), because chaos depth never changes the baseline trace.
        let spec =
            CampaignSpec::parse("apps = ring\nranks = 4\nclasses = W, A\nchaos_seeds = 0, 3")
                .unwrap();
        let (jobs, skipped) = spec.expand();
        assert!(skipped.is_empty());
        assert_eq!(jobs.len(), 4);
        let combos: Vec<(char, usize)> = jobs
            .iter()
            .map(|j| (j.class.name().chars().next().unwrap(), j.chaos_seeds))
            .collect();
        assert_eq!(combos, vec![('W', 0), ('W', 3), ('A', 0), ('A', 3)]);
        let ids: std::collections::BTreeSet<String> = jobs.iter().map(|j| j.id()).collect();
        assert_eq!(ids.len(), 4, "chaos depth must split job identity");
        assert_eq!(jobs[0].trace_key(), jobs[1].trace_key());
        assert_ne!(jobs[0].trace_key(), jobs[2].trace_key());
    }

    #[test]
    fn pipeline_threads_parses_and_never_splits_the_trace_cache() {
        let spec = CampaignSpec::parse("apps = ring\nranks = 4\npipeline_threads = 8\nworkers = 2")
            .unwrap();
        assert_eq!(spec.pipeline_threads, 8);
        let (jobs, _) = spec.expand();
        assert!(jobs.iter().all(|j| j.pipeline_threads == 8));
        // Thread count never changes a stage's output, so it must not split
        // the trace cache — only the job identity.
        let mut sequential = jobs[0].clone();
        sequential.pipeline_threads = 1;
        assert_eq!(jobs[0].trace_key(), sequential.trace_key());
        assert_ne!(jobs[0].id(), sequential.id());
        assert!(CampaignSpec::parse("apps = ring\nranks = 4\npipeline_threads = 0").is_err());
        assert!(CampaignSpec::parse("apps = ring\nranks = 4\npipeline_threads = four").is_err());
    }

    #[test]
    fn config_hash_is_independent_of_pair_order_and_matches_golden() {
        let (jobs, _) = CampaignSpec::parse("apps = ring\nranks = 4")
            .unwrap()
            .expand();
        let job = &jobs[0];
        let mut pairs = job.config_pairs();
        pairs.reverse();
        assert_eq!(
            crate::hash::hash_pairs(&job.config_pairs()),
            crate::hash::hash_pairs(&pairs)
        );
        // Golden value: guards the canonical rendering (field names, bool
        // and float formatting) against accidental change, which would
        // silently invalidate every existing cache entry.
        assert_eq!(crate::hash::hex(job.trace_key()), "c5732d7ab4231e91");
    }
}
