//! Structured JSONL telemetry.
//!
//! One JSON object per line, written as each event happens (the writer
//! flushes per line, so a killed campaign still leaves a usable log). The
//! schema is flat — every value is a string, number, or bool:
//!
//! ```text
//! {"t_ms":0,"event":"queued","job":"lu.n8.S.ideal.1a2b3c4d","app":"lu","ranks":8,...}
//! {"t_ms":3,"event":"started","job":"...","attempt":1}
//! {"t_ms":5,"event":"cached","job":"...","trace_key":"44a2..."}
//! {"t_ms":9,"event":"retried","job":"...","attempt":1,"error":"...","delay_ms":100}
//! {"t_ms":42,"event":"finished","job":"...","status":"ok","cached":true,
//!  "t_app_us":123.4,"t_gen_us":125.0,"err_pct":1.3,"compression":41.0,
//!  "verify_errors":0,"wall_ms":17}
//! {"t_ms":50,"event":"finished","job":"...","status":"failed","error":"...","wall_ms":3}
//! {"t_ms":99,"event":"finished","job":"...","status":"timeout","budget_ms":30000,"wall_ms":30001}
//! ```
//!
//! JSON is emitted by hand; no serialization dependency exists offline.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::sync::Mutex;
use std::time::Instant;

/// A telemetry field value.
#[derive(Clone, Debug)]
pub enum Value {
    /// A string (will be escaped).
    S(String),
    /// A signed integer.
    I(i64),
    /// An unsigned integer.
    U(u64),
    /// A float (non-finite values are emitted as `null`).
    F(f64),
    /// A bool.
    B(bool),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::S(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::S(s)
    }
}

/// Escape a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render(v: &Value) -> String {
    match v {
        Value::S(s) => format!("\"{}\"", escape(s)),
        Value::I(i) => i.to_string(),
        Value::U(u) => u.to_string(),
        Value::F(f) if f.is_finite() => format!("{f}"),
        Value::F(_) => "null".to_string(),
        Value::B(b) => b.to_string(),
    }
}

/// A JSONL event sink shared by the fleet's worker threads.
pub struct Telemetry {
    start: Instant,
    out: Mutex<Box<dyn Write + Send>>,
}

impl Telemetry {
    /// Write events to `path` (truncating any previous log).
    pub fn to_file(path: &std::path::Path) -> io::Result<Telemetry> {
        let file = std::fs::File::create(path)?;
        Ok(Telemetry::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Append events to `path`, creating it if needed. This is the resume
    /// mode: the log already on disk is the write-ahead journal of the
    /// interrupted campaign, and the resumed run extends it rather than
    /// erasing the history it is recovering from.
    pub fn append_file(path: &std::path::Path) -> io::Result<Telemetry> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Telemetry::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Write events to an arbitrary sink.
    pub fn to_writer(out: Box<dyn Write + Send>) -> Telemetry {
        Telemetry {
            start: Instant::now(),
            out: Mutex::new(out),
        }
    }

    /// Discard events (for tests and library callers without a log).
    pub fn sink() -> Telemetry {
        Telemetry::to_writer(Box::new(io::sink()))
    }

    /// Emit one event. `fields` follow the standard `t_ms`/`event` pair.
    pub fn emit(&self, event: &str, fields: &[(&str, Value)]) {
        let mut line = format!(
            "{{\"t_ms\":{},\"event\":\"{}\"",
            self.start.elapsed().as_millis(),
            escape(event)
        );
        for (k, v) in fields {
            line.push_str(&format!(",\"{}\":{}", escape(k), render(v)));
        }
        line.push('}');
        let mut out = self.out.lock().expect("telemetry writer poisoned");
        // Telemetry must never take the fleet down; drop the line on error.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    /// Force-flush the underlying writer. Workers call this before
    /// returning from a caught panic so that a crashing campaign process
    /// still leaves every event it witnessed on disk.
    pub fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Thread-safe per-client counter registry, used by long-running services
/// (the commspec server) to account requests, rejections, and cache
/// evictions per tenant. Counter and client names are free-form;
/// [`Counters::snapshot`] returns everything name-sorted, so reports are
/// deterministic regardless of arrival order.
#[derive(Default)]
pub struct Counters {
    inner: Mutex<BTreeMap<String, BTreeMap<String, u64>>>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `n` to `client`'s `counter`, returning the new value.
    pub fn add(&self, client: &str, counter: &str, n: u64) -> u64 {
        let mut inner = self.inner.lock().expect("counters poisoned");
        let slot = inner
            .entry(client.to_string())
            .or_default()
            .entry(counter.to_string())
            .or_default();
        *slot += n;
        *slot
    }

    /// Increment `client`'s `counter` by one, returning the new value.
    pub fn incr(&self, client: &str, counter: &str) -> u64 {
        self.add(client, counter, 1)
    }

    /// Current value of `client`'s `counter` (0 if never touched).
    pub fn get(&self, client: &str, counter: &str) -> u64 {
        let inner = self.inner.lock().expect("counters poisoned");
        inner
            .get(client)
            .and_then(|c| c.get(counter))
            .copied()
            .unwrap_or(0)
    }

    /// Every client's counters, both levels sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Vec<(String, u64)>)> {
        let inner = self.inner.lock().expect("counters poisoned");
        inner
            .iter()
            .map(|(client, counters)| {
                (
                    client.clone(),
                    counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                )
            })
            .collect()
    }

    /// Emit one `counters` telemetry event per client.
    pub fn emit_to(&self, telemetry: &Telemetry) {
        for (client, counters) in self.snapshot() {
            let mut fields: Vec<(&str, Value)> = vec![("client", client.as_str().into())];
            for (k, v) in &counters {
                fields.push((k.as_str(), Value::U(*v)));
            }
            telemetry.emit("counters", &fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Shared in-memory sink for asserting on emitted lines.
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture() -> (Telemetry, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let t = Telemetry::to_writer(Box::new(Shared(Arc::clone(&buf))));
        (t, buf)
    }

    #[test]
    fn emits_one_json_object_per_line() {
        let (t, buf) = capture();
        t.emit("queued", &[("job", "x.n4".into()), ("ranks", Value::U(4))]);
        t.emit(
            "finished",
            &[("ok", Value::B(true)), ("err_pct", Value::F(1.5))],
        );
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t_ms\":"));
        assert!(lines[0].contains("\"event\":\"queued\""));
        assert!(lines[0].contains("\"job\":\"x.n4\""));
        assert!(lines[0].contains("\"ranks\":4"));
        assert!(lines[1].contains("\"ok\":true"));
        assert!(lines[1].contains("\"err_pct\":1.5"));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }

    #[test]
    fn escapes_strings_and_nulls_nonfinite_floats() {
        let (t, buf) = capture();
        t.emit(
            "finished",
            &[
                ("error", "panic: \"boom\"\nline2\ttab\\".into()),
                ("err_pct", Value::F(f64::NAN)),
            ],
        );
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("panic: \\\"boom\\\"\\nline2\\ttab\\\\"));
        assert!(text.contains("\"err_pct\":null"));
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn flush_is_safe_and_idempotent() {
        let (t, buf) = capture();
        t.emit("queued", &[]);
        t.flush();
        t.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn counters_accumulate_per_client_and_snapshot_sorted() {
        let c = Counters::new();
        assert_eq!(c.get("cli", "requests"), 0);
        assert_eq!(c.incr("cli", "requests"), 1);
        assert_eq!(c.add("cli", "requests", 2), 3);
        c.incr("cli", "evictions");
        c.incr("batch", "rejections");
        assert_eq!(c.get("cli", "requests"), 3);
        assert_eq!(c.get("batch", "requests"), 0);
        let snap = c.snapshot();
        assert_eq!(
            snap,
            vec![
                ("batch".to_string(), vec![("rejections".to_string(), 1)]),
                (
                    "cli".to_string(),
                    vec![("evictions".to_string(), 1), ("requests".to_string(), 3)]
                ),
            ]
        );
    }

    #[test]
    fn counters_survive_concurrent_increments() {
        let c = Arc::new(Counters::new());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.incr(if i % 2 == 0 { "a" } else { "b" }, "requests");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get("a", "requests"), 400);
        assert_eq!(c.get("b", "requests"), 400);
    }

    #[test]
    fn counters_emit_one_event_per_client() {
        let (t, buf) = capture();
        let c = Counters::new();
        c.incr("cli", "requests");
        c.incr("ci", "rejections");
        c.emit_to(&t);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"client\":\"ci\"") && lines[0].contains("\"rejections\":1"));
        assert!(lines[1].contains("\"client\":\"cli\"") && lines[1].contains("\"requests\":1"));
    }

    #[test]
    fn concurrent_emitters_never_interleave_lines() {
        let (t, buf) = capture();
        let t = Arc::new(t);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        t.emit("tick", &[("worker", Value::U(i)), ("n", Value::U(j))]);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 400);
        for l in lines {
            assert!(
                l.starts_with("{\"t_ms\":") && l.ends_with('}'),
                "mangled: {l}"
            );
            assert_eq!(l.matches("\"event\"").count(), 1);
        }
    }
}
