//! # campaign — parallel, fault-isolated experiment fleets
//!
//! The paper's evaluation is a *grid* of experiments: applications × rank
//! counts × problem classes × network models, each run through the full
//! trace → generate → execute → verify pipeline. This crate turns that grid
//! into a declarative **job matrix** and executes it as a fleet:
//!
//! * [`matrix`] — the matrix format, its expansion into concrete
//!   [`matrix::JobSpec`]s, and stable hashed job identities.
//! * [`hash`] — deterministic, order-independent FNV-1a config hashing.
//! * [`cache`] — a disk trace cache keyed by trace-config hash, so reruns
//!   skip the (expensive) traced application entirely.
//! * [`telemetry`] — structured JSONL events (`queued`/`started`/`cached`/
//!   `retried`/`finished`) for machine consumption.
//! * [`executor`] — the std-only worker pool with per-job fault isolation:
//!   panics are caught, hangs are timed out and abandoned, transient
//!   failures retry with capped exponential backoff.
//! * [`journal`] — the write-ahead view of the telemetry log: crash-safe
//!   atomic writes, torn-line-tolerant decoding, and the per-job resume
//!   classification (replay vs rerun).
//! * [`runner`] — the per-job pipeline, the aggregate
//!   [`runner::CampaignReport`], and [`runner::resume_campaign`].
//!
//! The `commbench` binary is the command-line front end.

pub mod cache;
pub mod executor;
pub mod hash;
pub mod journal;
pub mod matrix;
pub mod runner;
pub mod telemetry;

pub use cache::{CachedTrace, FsckReport, TraceCache};
pub use executor::{FailureCause, FleetOptions, JobError, Outcome};
pub use journal::{Journal, ResumeAction};
pub use matrix::{CampaignSpec, JobSpec};
pub use runner::{
    resume_campaign, run_campaign, run_jobs, CampaignReport, ChaosSummary, JobOutput, JobRow,
};
pub use telemetry::Telemetry;
