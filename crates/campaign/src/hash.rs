//! Deterministic configuration hashing.
//!
//! Every campaign job is identified by a 64-bit FNV-1a hash over its
//! canonicalised configuration: the job's fields are rendered as
//! `key=value` pairs, sorted lexicographically by key, and joined with
//! `\n` before hashing. Sorting makes the hash independent of field
//! declaration (and matrix file) order; rendering integers and enums as
//! decimal strings makes it independent of platform endianness and
//! pointer width. The same scheme keys the on-disk trace cache.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a set of `key=value` pairs order-independently: pairs are sorted
/// by key (then value) and joined with `\n` before hashing.
pub fn hash_pairs(pairs: &[(String, String)]) -> u64 {
    let mut sorted: Vec<&(String, String)> = pairs.iter().collect();
    sorted.sort();
    let mut buf = String::new();
    for (k, v) in sorted {
        buf.push_str(k);
        buf.push('=');
        buf.push_str(v);
        buf.push('\n');
    }
    fnv1a(buf.as_bytes())
}

/// Render a 64-bit hash as the fixed-width lowercase hex used in job ids
/// and cache file names.
pub fn hex(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn pair_order_does_not_change_hash() {
        let a = vec![
            ("app".to_string(), "lu".to_string()),
            ("ranks".to_string(), "8".to_string()),
            ("class".to_string(), "S".to_string()),
        ];
        let mut b = a.clone();
        b.reverse();
        let mut c = a.clone();
        c.swap(0, 1);
        assert_eq!(hash_pairs(&a), hash_pairs(&b));
        assert_eq!(hash_pairs(&a), hash_pairs(&c));
    }

    #[test]
    fn distinct_configs_hash_differently() {
        let a = vec![("ranks".to_string(), "8".to_string())];
        let b = vec![("ranks".to_string(), "16".to_string())];
        assert_ne!(hash_pairs(&a), hash_pairs(&b));
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex(0), "0000000000000000");
        assert_eq!(hex(0xabc), "0000000000000abc");
        assert_eq!(hex(u64::MAX), "ffffffffffffffff");
    }
}
