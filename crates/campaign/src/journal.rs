//! Write-ahead journal: crash-safe file helpers plus the resume-time
//! reader of campaign telemetry.
//!
//! The campaign's JSONL telemetry stream doubles as its write-ahead
//! journal: every job's terminal state is a `finished` event appended and
//! flushed before the fleet moves on, so the log on disk is always at most
//! one in-flight job behind reality. [`Journal::load`] replays that stream
//! and classifies each job for a resumed campaign:
//!
//! - `ok` → replay the recorded outcome, skip the work;
//! - `failed` with cause `error`/`panic` → deterministic, replay the
//!   failure instead of burning time on a rerun that will fail the same way;
//! - `failed` with cause `transient`, `timeout`, or no `finished` line at
//!   all (the job the crash interrupted) → run it again.
//!
//! A torn final line — the signature of a `kill -9` mid-append — is
//! counted and ignored, never an error: the job it described simply reruns.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Atomically replace `path` with `contents`: write a `.tmp` sibling, then
/// rename it over the target. A crash at any point leaves either the old
/// file or the new one on disk, never a torn hybrid (the stranded `.tmp`
/// is swept by `fsck`).
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// `<name>.<pid>.tmp` next to `path`: pid-qualified so concurrent
/// campaigns sharing a cache directory never clobber each other's
/// in-flight writes.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// What a resumed campaign should do with a journaled job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumeAction {
    /// Finished successfully: replay the recorded outcome.
    ReplayOk,
    /// Failed deterministically (error/panic): replay the failure.
    ReplayFailed,
    /// Transient failure, timeout, or unknown status: run it again.
    Rerun,
}

/// The journaled terminal state of one job: its `status` plus every field
/// of the last `finished` event that named it.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// `ok`, `failed`, or `timeout`.
    pub status: String,
    /// All fields of the `finished` line, as decoded strings.
    pub fields: BTreeMap<String, String>,
}

impl JobRecord {
    /// A raw field value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// A field parsed as `u64`.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// A field parsed as `f64` (`Value::F` renders shortest-roundtrip, so
    /// this recovers the original bits).
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    /// Was this job's trace recovered by segment salvage rather than
    /// captured to completion? Salvaged prefixes are legitimate `ok`
    /// evidence mid-campaign, but a resume should upgrade them.
    pub fn salvaged(&self) -> bool {
        self.get("salvaged") == Some("true")
    }

    /// The failure classification driving resume: deterministic outcomes
    /// are replayed, everything else reruns. An `ok` job whose trace was
    /// *salvaged* (a verified prefix recovered from a torn streamed
    /// capture) reruns too: the prefix was the best evidence available at
    /// the time, but a resume exists to finish the campaign properly.
    pub fn action(&self) -> ResumeAction {
        match self.status.as_str() {
            "ok" if self.salvaged() => ResumeAction::Rerun,
            "ok" => ResumeAction::ReplayOk,
            "failed" => match self.get("cause") {
                Some("transient") => ResumeAction::Rerun,
                _ => ResumeAction::ReplayFailed,
            },
            // `timeout` and anything unrecognised: give it another chance.
            _ => ResumeAction::Rerun,
        }
    }
}

/// The decoded journal: last-wins terminal state per job id.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    jobs: BTreeMap<String, JobRecord>,
    /// Lines that parsed as events.
    pub lines: usize,
    /// Unparsable lines (torn tails from a crash mid-append).
    pub torn: usize,
}

impl Journal {
    /// Load a journal from a JSONL telemetry log. A job that finished more
    /// than once (a log already extended by a resume) keeps its *last*
    /// record.
    pub fn load(path: &Path) -> io::Result<Journal> {
        let text = std::fs::read_to_string(path)?;
        Ok(Journal::from_text(&text))
    }

    /// Decode journal state from log text (see [`Journal::load`]).
    pub fn from_text(text: &str) -> Journal {
        let mut journal = Journal::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some(fields) = parse_line(line) else {
                journal.torn += 1;
                continue;
            };
            journal.lines += 1;
            if fields.get("event").map(String::as_str) != Some("finished") {
                continue;
            }
            let (Some(job), Some(status)) = (fields.get("job"), fields.get("status")) else {
                continue;
            };
            journal.jobs.insert(
                job.clone(),
                JobRecord {
                    status: status.clone(),
                    fields: fields.clone(),
                },
            );
        }
        journal
    }

    /// The journaled record for a job id, if it reached a terminal state.
    pub fn get(&self, job_id: &str) -> Option<&JobRecord> {
        self.jobs.get(job_id)
    }

    /// Iterate every journaled `(job_id, record)` pair, in job-id order.
    /// Long-running services use this to preload their job tables.
    pub fn jobs(&self) -> impl Iterator<Item = (&str, &JobRecord)> {
        self.jobs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of jobs with a journaled terminal state.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Is the journal empty of terminal states?
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Parse one flat telemetry line (`{"k":v,...}`, no nesting) into decoded
/// string fields. Returns `None` — never panics — on anything malformed,
/// which is how torn tail lines are tolerated.
pub fn parse_line(line: &str) -> Option<BTreeMap<String, String>> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let chars: Vec<char> = inner.chars().collect();
    let mut fields = BTreeMap::new();
    let mut i = 0;
    while i < chars.len() {
        let (key, after_key) = parse_string(&chars, i)?;
        i = after_key;
        if chars.get(i) != Some(&':') {
            return None;
        }
        i += 1;
        let value = if chars.get(i) == Some(&'"') {
            let (s, after) = parse_string(&chars, i)?;
            i = after;
            s
        } else {
            // Bare scalar (number / bool / null): runs to the next comma.
            let start = i;
            while i < chars.len() && chars[i] != ',' {
                i += 1;
            }
            if i == start {
                return None;
            }
            chars[start..i].iter().collect()
        };
        fields.insert(key, value);
        match chars.get(i) {
            None => break,
            Some(',') => i += 1,
            Some(_) => return None,
        }
    }
    Some(fields)
}

/// Decode the JSON string starting at `chars[start]` (which must be `"`);
/// returns the unescaped text and the index just past the closing quote.
fn parse_string(chars: &[char], start: usize) -> Option<(String, usize)> {
    if chars.get(start) != Some(&'"') {
        return None;
    }
    let mut out = String::new();
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '"' => return Some((out, i + 1)),
            '\\' => {
                i += 1;
                match chars.get(i)? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = chars.get(i + 1..i + 5)?.iter().collect();
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    None // unterminated string: torn line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Telemetry, Value};
    use std::io::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "campaign-journal-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Shared in-memory sink: emit through the real Telemetry writer so
    /// the journal parser is tested against the real encoder.
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn captured(emit: impl FnOnce(&Telemetry)) -> String {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let t = Telemetry::to_writer(Box::new(Shared(Arc::clone(&buf))));
        emit(&t);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        text
    }

    #[test]
    fn decodes_what_telemetry_encodes() {
        let text = captured(|t| {
            t.emit(
                "finished",
                &[
                    ("job", "ring.n4.W.ideal.00000000".into()),
                    ("status", "ok".into()),
                    ("cached", Value::B(false)),
                    ("t_app_ns", Value::U(123_456_789)),
                    ("err_pct", Value::F(1.625)),
                    ("error", "panic: \"boom\"\nline2\ttab\\\u{1}".into()),
                ],
            );
        });
        let fields = parse_line(text.trim()).expect("parsable");
        assert_eq!(fields["event"], "finished");
        assert_eq!(fields["job"], "ring.n4.W.ideal.00000000");
        assert_eq!(fields["cached"], "false");
        assert_eq!(fields["t_app_ns"], "123456789");
        assert_eq!(fields["err_pct"].parse::<f64>().unwrap(), 1.625);
        assert_eq!(fields["error"], "panic: \"boom\"\nline2\ttab\\\u{1}");
    }

    #[test]
    fn float_fields_roundtrip_exactly() {
        // Value::F renders shortest-roundtrip; the journal must recover
        // the original bits for awkward values too.
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123456.789012345, f64::MIN_POSITIVE] {
            let text = captured(|t| t.emit("finished", &[("x", Value::F(f))]));
            let fields = parse_line(text.trim()).unwrap();
            assert_eq!(fields["x"].parse::<f64>().unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn torn_tail_lines_are_counted_not_fatal() {
        let mut text = captured(|t| {
            t.emit("finished", &[("job", "a".into()), ("status", "ok".into())]);
            t.emit(
                "finished",
                &[("job", "b".into()), ("status", "failed".into())],
            );
        });
        // A kill mid-append leaves a prefix of the last line.
        text.truncate(text.len() - 25);
        let journal = Journal::from_text(&text);
        assert_eq!(journal.torn, 1);
        assert_eq!(journal.len(), 1);
        assert!(journal.get("a").is_some());
        assert!(journal.get("b").is_none(), "torn record must not count");
    }

    #[test]
    fn torn_line_ending_inside_a_string_is_rejected() {
        // Cut mid-string but after a brace-looking byte: still unparsable.
        assert!(parse_line("{\"event\":\"finished\",\"error\":\"bad}").is_none());
        assert!(parse_line("{\"event\":\"fini").is_none());
        assert!(parse_line("").is_none());
        assert!(parse_line("{}").map(|f| f.len()) == Some(0));
    }

    #[test]
    fn last_finished_record_wins() {
        let text = captured(|t| {
            t.emit(
                "finished",
                &[
                    ("job", "a".into()),
                    ("status", "failed".into()),
                    ("cause", "transient".into()),
                ],
            );
            t.emit("queued", &[("job", "a".into())]);
            t.emit("finished", &[("job", "a".into()), ("status", "ok".into())]);
        });
        let journal = Journal::from_text(&text);
        assert_eq!(journal.get("a").unwrap().status, "ok");
        assert_eq!(journal.get("a").unwrap().action(), ResumeAction::ReplayOk);
    }

    #[test]
    fn failure_classification_drives_resume() {
        let rec = |status: &str, cause: Option<&str>| {
            let mut fields = BTreeMap::new();
            if let Some(c) = cause {
                fields.insert("cause".to_string(), c.to_string());
            }
            JobRecord {
                status: status.to_string(),
                fields,
            }
        };
        assert_eq!(rec("ok", None).action(), ResumeAction::ReplayOk);
        assert_eq!(
            rec("failed", Some("error")).action(),
            ResumeAction::ReplayFailed
        );
        assert_eq!(
            rec("failed", Some("panic")).action(),
            ResumeAction::ReplayFailed
        );
        assert_eq!(
            rec("failed", Some("transient")).action(),
            ResumeAction::Rerun
        );
        assert_eq!(rec("timeout", None).action(), ResumeAction::Rerun);
        assert_eq!(rec("mystery", None).action(), ResumeAction::Rerun);
    }

    #[test]
    fn salvaged_ok_records_rerun_on_resume() {
        let rec = |salvaged: Option<&str>| {
            let mut fields = BTreeMap::new();
            if let Some(v) = salvaged {
                fields.insert("salvaged".to_string(), v.to_string());
            }
            JobRecord {
                status: "ok".to_string(),
                fields,
            }
        };
        assert_eq!(rec(None).action(), ResumeAction::ReplayOk);
        assert_eq!(rec(Some("false")).action(), ResumeAction::ReplayOk);
        assert!(rec(Some("true")).salvaged());
        assert_eq!(
            rec(Some("true")).action(),
            ResumeAction::Rerun,
            "a salvaged prefix must be upgraded to a complete trace on resume"
        );
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let path = temp_path("atomic");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_str().unwrap().to_string();
        for entry in std::fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(
                !(name.starts_with(&stem) && name.ends_with(".tmp")),
                "tmp residue: {name}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loading_a_missing_journal_is_an_error() {
        assert!(Journal::load(&temp_path("missing")).is_err());
    }
}
