//! Fault-isolated parallel fleet executor.
//!
//! `run_fleet` drains a job list on a fixed pool of worker threads
//! (std-only: `std::thread` plus channels). Three failure domains are
//! isolated per job:
//!
//! * **Panics** — each attempt runs under `catch_unwind`; a panicking job
//!   becomes a `Failed` outcome and the fleet carries on.
//! * **Hangs** — each attempt runs on its own thread while the worker waits
//!   with `recv_timeout`. Rust cannot kill a thread, so an over-budget
//!   attempt is *abandoned* (the thread is detached and its eventual result
//!   discarded) and the job reported `TimedOut`. The leak is bounded: one
//!   thread per timed-out attempt, reclaimed at process exit.
//! * **Transient errors** — a job may ask for a retry (`JobError::transient`);
//!   retries are capped and spaced with exponential backoff.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Fleet-level execution knobs.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Wall-clock budget per attempt.
    pub timeout: Duration,
    /// Retry budget for transient failures (0 = no retries).
    pub retries: u32,
    /// Base backoff delay; attempt `k` waits `backoff * 2^(k-1)`, capped.
    pub backoff: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            workers: 4,
            timeout: Duration::from_secs(60),
            retries: 1,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// Why an attempt failed — recorded in [`Outcome::Failed`] and surfaced in
/// telemetry so a log reader can separate crashes from give-ups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The attempt panicked and was caught at the isolation boundary.
    Panic,
    /// The job reported a transient error (and the retry budget ran out).
    Transient,
    /// The job reported a permanent error.
    Fatal,
}

impl FailureCause {
    /// Stable lower-case label for logs and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            FailureCause::Panic => "panic",
            FailureCause::Transient => "transient",
            FailureCause::Fatal => "error",
        }
    }
}

/// A job-level error. `transient: true` requests a retry (within budget);
/// `transient: false` fails the job immediately.
#[derive(Clone, Debug)]
pub struct JobError {
    /// Human-readable description.
    pub message: String,
    /// May a retry succeed?
    pub transient: bool,
    /// Failure classification for diagnostics.
    pub cause: FailureCause,
}

impl JobError {
    /// A retryable error.
    pub fn transient(message: impl Into<String>) -> JobError {
        JobError {
            message: message.into(),
            transient: true,
            cause: FailureCause::Transient,
        }
    }

    /// A permanent error.
    pub fn fatal(message: impl Into<String>) -> JobError {
        JobError {
            message: message.into(),
            transient: false,
            cause: FailureCause::Fatal,
        }
    }

    /// A caught panic (constructed by the executor itself).
    fn panic(message: impl Into<String>) -> JobError {
        JobError {
            message: message.into(),
            transient: false,
            cause: FailureCause::Panic,
        }
    }
}

/// Final disposition of one job.
#[derive(Clone, Debug)]
pub enum Outcome<R> {
    /// The job succeeded.
    Done(R),
    /// The job failed (panic or returned error) after `attempts` attempts.
    Failed {
        /// Last error message.
        error: String,
        /// Attempts consumed.
        attempts: u32,
        /// What kind of failure ended the job.
        cause: FailureCause,
    },
    /// An attempt exceeded the wall-clock budget and was abandoned.
    TimedOut {
        /// The per-attempt budget that was exceeded.
        budget: Duration,
        /// Attempts consumed (including the one that hung).
        attempts: u32,
    },
}

/// Progress notifications, delivered from worker threads as they happen.
#[derive(Debug)]
pub enum ExecEvent<'a, R> {
    /// An attempt is starting.
    Started {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A transient failure; the job will be retried after `delay`.
    Retried {
        /// The attempt that failed.
        attempt: u32,
        /// The transient error.
        error: &'a str,
        /// Backoff before the next attempt.
        delay: Duration,
    },
    /// The job reached a final outcome.
    Finished {
        /// The outcome (also returned from `run_fleet`).
        outcome: &'a Outcome<R>,
        /// Wall-clock time the job occupied a worker, including retries.
        wall: Duration,
    },
}

enum Attempt<R> {
    Success(R),
    Error(JobError),
    Hung,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Run one attempt on a dedicated thread so a hang cannot block the worker.
fn run_attempt<J, R, W>(
    jobs: &Arc<Vec<J>>,
    work: &Arc<W>,
    index: usize,
    attempt: u32,
    budget: Duration,
) -> Attempt<R>
where
    J: Send + Sync + 'static,
    R: Send + 'static,
    W: Fn(&J, u32) -> Result<R, JobError> + Send + Sync + 'static,
{
    let (tx, rx) = mpsc::channel();
    let jobs = Arc::clone(jobs);
    let work = Arc::clone(work);
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| work(&jobs[index], attempt)));
        // The receiver is gone iff the watchdog already gave up on us.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(budget) {
        Ok(Ok(Ok(r))) => Attempt::Success(r),
        Ok(Ok(Err(e))) => Attempt::Error(e),
        Ok(Err(payload)) => Attempt::Error(JobError::panic(panic_message(payload))),
        Err(_) => Attempt::Hung,
    }
}

/// Execute `jobs` with `work` on a worker pool, reporting progress through
/// `observe` (called from worker threads; index identifies the job). The
/// returned outcomes are index-aligned with `jobs`.
pub fn run_fleet<J, R, W, O>(
    jobs: Vec<J>,
    opts: &FleetOptions,
    work: W,
    observe: O,
) -> Vec<Outcome<R>>
where
    J: Send + Sync + 'static,
    R: Send + 'static,
    W: Fn(&J, u32) -> Result<R, JobError> + Send + Sync + 'static,
    O: Fn(usize, ExecEvent<'_, R>) + Send + Sync,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let jobs = Arc::new(jobs);
    let work = Arc::new(work);
    let observe = &observe;
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Outcome<R>>>> = (0..total).map(|_| Mutex::new(None)).collect();

    let workers = opts.workers.clamp(1, total);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    return;
                }
                let job_start = Instant::now();
                let mut attempt = 1u32;
                let outcome = loop {
                    observe(index, ExecEvent::Started { attempt });
                    match run_attempt(&jobs, &work, index, attempt, opts.timeout) {
                        Attempt::Success(r) => break Outcome::Done(r),
                        Attempt::Hung => {
                            break Outcome::TimedOut {
                                budget: opts.timeout,
                                attempts: attempt,
                            }
                        }
                        Attempt::Error(e) if e.transient && attempt <= opts.retries => {
                            let exp = opts.backoff.saturating_mul(1u32 << (attempt - 1).min(16));
                            let delay = exp.min(opts.backoff_cap);
                            observe(
                                index,
                                ExecEvent::Retried {
                                    attempt,
                                    error: &e.message,
                                    delay,
                                },
                            );
                            std::thread::sleep(delay);
                            attempt += 1;
                        }
                        Attempt::Error(e) => {
                            break Outcome::Failed {
                                error: e.message,
                                attempts: attempt,
                                cause: e.cause,
                            }
                        }
                    }
                };
                observe(
                    index,
                    ExecEvent::Finished {
                        outcome: &outcome,
                        wall: job_start.elapsed(),
                    },
                );
                *results[index].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without recording an outcome")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn opts() -> FleetOptions {
        FleetOptions {
            workers: 3,
            timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    #[test]
    fn runs_all_jobs_and_aligns_results() {
        let jobs: Vec<u32> = (0..20).collect();
        let out = run_fleet(jobs, &opts(), |&j, _| Ok::<_, JobError>(j * 2), |_, _| {});
        assert_eq!(out.len(), 20);
        for (i, o) in out.iter().enumerate() {
            match o {
                Outcome::Done(v) => assert_eq!(*v as usize, i * 2),
                other => panic!("job {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn a_panicking_job_does_not_sink_the_fleet() {
        let jobs = vec!["ok", "boom", "ok"];
        let out = run_fleet(
            jobs,
            &opts(),
            |&j, _| {
                if j == "boom" {
                    panic!("injected failure");
                }
                Ok::<_, JobError>(j.len())
            },
            |_, _| {},
        );
        assert!(matches!(out[0], Outcome::Done(2)));
        match &out[1] {
            Outcome::Failed {
                error,
                attempts,
                cause,
            } => {
                assert!(error.contains("injected failure"), "{error}");
                assert_eq!(*attempts, 1, "panics are not retried");
                assert_eq!(*cause, FailureCause::Panic);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(out[2], Outcome::Done(2)));
    }

    #[test]
    fn transient_errors_retry_with_backoff_then_succeed() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let events = Mutex::new(Vec::new());
        let out = run_fleet(
            vec![()],
            &opts(),
            |_, attempt| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                if attempt < 3 {
                    Err(JobError::transient(format!("flaky on attempt {attempt}")))
                } else {
                    Ok(attempt)
                }
            },
            |_, ev| {
                if let ExecEvent::Retried { attempt, delay, .. } = ev {
                    events.lock().unwrap().push((attempt, delay));
                }
            },
        );
        assert!(matches!(out[0], Outcome::Done(3)));
        assert_eq!(CALLS.load(Ordering::Relaxed), 3);
        let retries = events.into_inner().unwrap();
        assert_eq!(retries.len(), 2);
        assert!(retries[1].1 >= retries[0].1, "backoff grows");
    }

    #[test]
    fn transient_errors_exhaust_the_retry_budget() {
        let out = run_fleet(
            vec![()],
            &opts(),
            |_, _| Err::<(), _>(JobError::transient("always flaky")),
            |_, _| {},
        );
        match &out[0] {
            Outcome::Failed {
                error,
                attempts,
                cause,
            } => {
                assert!(error.contains("always flaky"));
                assert_eq!(*attempts, 3, "initial attempt + 2 retries");
                assert_eq!(*cause, FailureCause::Transient);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fatal_errors_do_not_retry() {
        let out = run_fleet(
            vec![()],
            &opts(),
            |_, _| Err::<(), _>(JobError::fatal("no point")),
            |_, _| {},
        );
        match &out[0] {
            Outcome::Failed {
                attempts, cause, ..
            } => {
                assert_eq!(*attempts, 1);
                assert_eq!(*cause, FailureCause::Fatal);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hung_jobs_time_out_and_the_fleet_finishes() {
        let o = FleetOptions {
            timeout: Duration::from_millis(50),
            ..opts()
        };
        let out = run_fleet(
            vec![0u32, 1, 2],
            &o,
            |&j, _| {
                if j == 1 {
                    // Sleep far beyond the budget; the watchdog abandons us.
                    std::thread::sleep(Duration::from_secs(30));
                }
                Ok::<_, JobError>(j)
            },
            |_, _| {},
        );
        assert!(matches!(out[0], Outcome::Done(0)));
        assert!(matches!(out[1], Outcome::TimedOut { .. }));
        assert!(matches!(out[2], Outcome::Done(2)));
    }

    #[test]
    fn finished_events_fire_for_every_job() {
        let finished = AtomicU32::new(0);
        let out = run_fleet(
            (0..10u32).collect(),
            &opts(),
            |&j, _| {
                if j % 3 == 0 {
                    panic!("boom {j}");
                }
                Ok(j)
            },
            |_, ev| {
                if matches!(ev, ExecEvent::Finished { .. }) {
                    finished.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(out.len(), 10);
        assert_eq!(finished.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn empty_fleet_is_a_noop() {
        let out = run_fleet(
            Vec::<()>::new(),
            &opts(),
            |_, _| Ok::<_, JobError>(()),
            |_, _| {},
        );
        assert!(out.is_empty());
    }
}
