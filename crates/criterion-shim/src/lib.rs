//! # criterion-shim — a dependency-free subset of [criterion](https://docs.rs/criterion)
//!
//! The workspace builds with no network access, so the real criterion crate
//! cannot be resolved. This shim implements the API surface the `bench-suite`
//! benches use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-measure wall-clock loop and a plain-text report (mean and
//! min per iteration). No statistical analysis, HTML reports, or plotting.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Warmup duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Criterion {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Criterion {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size(n);
        self
    }

    /// Warmup duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.c.warm_up_time(d);
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement_time(d);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.c, &label, f);
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.c, &label, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Benchmark identifier (`name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(c: &Criterion, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup: run single iterations until the warmup budget is spent, and
    // estimate the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < c.warm_up_time {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

    // Measurement: `sample_size` samples, each sized so the whole phase
    // roughly fits the measurement budget.
    let budget = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
    let mut samples = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "bench {label:<50} mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_time(mean),
        fmt_time(min),
        samples.len(),
        iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declare a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
