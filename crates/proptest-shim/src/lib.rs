//! # proptest-shim — a dependency-free subset of [proptest](https://docs.rs/proptest)
//!
//! This workspace builds with **no network access**, so the real proptest
//! crate cannot be resolved from the registry. This shim implements the
//! exact API surface the workspace's property tests use — `proptest!`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, `Just`, range and tuple
//! strategies, `prop_map`/`prop_recursive`, `collection::{vec, btree_set}`,
//! `option::of`, `any::<T>()`, and a tiny `[class]{m,n}` string-pattern
//! strategy — on top of a deterministic splitmix64 generator.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** A failing case reports its per-case seed; re-running
//!   the test reproduces it exactly (generation is fully deterministic, the
//!   seed is derived from the test name).
//! * Failure is reported by panicking immediately (`prop_assert!` is
//!   `assert!`), not by collecting a minimal counterexample.
//! * `ProptestConfig` carries only `cases` (default 64).
//!
//! Determinism is a feature here, not a limitation: CI behaves identically
//! on every platform and every run.

use std::fmt::Write as _;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator seeding each test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// RNG for a named test: the seed is the FNV-1a hash of the name, so
    /// every test gets an independent, stable stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        self.next_u64() % n
    }

    /// An independent seed for a child generator.
    pub fn fork_seed(&mut self) -> u64 {
        self.next_u64()
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (needed by recursive strategies).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Build a depth-bounded recursive strategy: `self` is the leaf, and
    /// `f` wraps a strategy for depth `k` into one for depth `k+1`. The
    /// `_desired_size`/`_expected_branch` hints of real proptest are
    /// accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        strat
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given alternatives (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// Integer range strategies.
macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuple strategies (generated left to right).
macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategy from a pattern: either `[class]{m,n}` (a character class
/// with `a-z` ranges and literal characters, repeated `m..=n` times) or a
/// plain literal. This covers the subset of proptest's regex strategies the
/// workspace uses.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                let mut out = String::with_capacity(len);
                for _ in 0..len {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
                out
            }
            None => (*self).to_string(),
        }
    }
}

/// Parse `[class]{m,n}` into (alphabet, m, n); `None` means literal.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let quant = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_string();
    let (lo, hi) = quant.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() || hi < lo {
        return None;
    }
    Some((chars, lo, hi))
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait ArbitraryValue: Sized {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

/// Size specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Collection strategies (`collection::vec`, `collection::btree_set`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy over `element` with the given size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates collapse, so the
    /// resulting set may be smaller than the drawn length.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy over `element` with the given size range.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`option::of`).
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>` (3:1 biased towards `Some`).
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------------------
// Failure reporting
// ---------------------------------------------------------------------------

/// Prints the failing case's seed when a test body panics, so the exact
/// inputs can be regenerated (generation is deterministic in the seed).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for one case.
    pub fn new(name: &'static str, case: u32, seed: u64) -> CaseGuard {
        CaseGuard {
            name,
            case,
            seed,
            armed: true,
        }
    }

    /// The case completed: disarm.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            let mut msg = String::new();
            let _ = write!(
                msg,
                "proptest-shim: {} failed at case {} (case seed {:#018x})",
                self.name, self.case, self.seed
            );
            eprintln!("{msg}");
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __seed = __rng.fork_seed();
                let __guard = $crate::CaseGuard::new(stringify!($name), __case, __seed);
                let mut __case_rng = $crate::TestRng::from_seed(__seed);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __case_rng); )+
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($arm:expr),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, ArbitraryValue, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-8i64..8), &mut rng);
            assert!((-8..8).contains(&w));
        }
    }

    #[test]
    fn class_pattern_generates_from_alphabet() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c ]{0,5}", &mut rng);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let gen = |seed| {
            let mut rng = TestRng::from_seed(seed);
            super::collection::vec(0u64..100, 0..10).generate(&mut rng)
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(1), gen(2), "different seeds should differ");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(mut v in super::collection::vec(0usize..10, 1..5), b in any::<bool>()) {
            v.push(usize::from(b));
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.last().copied(), Some(usize::from(b)));
        }
    }
}
